"""Terminal plotting helpers."""

import pytest

from repro.utils.ascii_plot import bar_chart, sparkline


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart(["a", "b"], [0.5, 1.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_all_zero_renders_empty_bars(self):
        out = bar_chart(["a"], [0.0], width=10)
        assert "#" not in out

    def test_title(self):
        out = bar_chart(["a"], [1.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_label_alignment(self):
        out = bar_chart(["a", "bbb"], [1.0, 1.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_custom_format(self):
        out = bar_chart(["a"], [0.5], fmt="{:.1f}")
        assert "0.5" in out


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3, 4])
        assert out[0] < out[-1]
        assert len(out) == 5

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        out = sparkline([2.0, 2.0, 2.0])
        assert len(set(out)) == 1

    def test_fixed_bounds_clip(self):
        out = sparkline([-5, 0.5, 10], lo=0.0, hi=1.0)
        assert out[0] == " " and out[-1] == "█"
