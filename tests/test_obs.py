"""Observability: deterministic metrics, spans, manifests, repro-obs CLI.

The load-bearing property mirrors the campaign runner's own: the
deterministic sections of a metrics snapshot (counters, gauges,
histograms) must be byte-identical across serial, parallel and
kill/resume executions of the same spec — only the ``timing`` section
may differ.  Everything here either asserts that property directly or
exercises the machinery (ring-buffered events, run manifests, JSONL run
logs, the CLI) that reports it.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.campaign import (
    CampaignAbortedError,
    CampaignResult,
    CampaignSpec,
    record_trial_metrics,
    run_campaign,
)
from repro.core.checkpoint import load_checkpoint
from repro.core.serialize import campaign_summary
from repro.core.tracing import CampaignEvent, EventRecorder
from repro.obs import cli as obs_cli
from repro.obs.manifest import RunObserver, default_obs_paths, load_run
from repro.obs.metrics import (
    DEFAULT_MAGNITUDE_BUCKETS,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
)
from repro.obs.progress import ProgressReporter, rss_mb
from repro.obs.spans import (
    disable_spans,
    enable_spans,
    span,
    spans_enabled,
    timing_snapshot,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

SPEC = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=16, n_inputs=2, seed=11)


@pytest.fixture(autouse=True)
def _reset_span_state():
    """Spans are process-global; leave every test with a clean slate."""
    disable_spans()
    timing_snapshot(reset=True)
    yield
    disable_spans()
    timing_snapshot(reset=True)


def _deterministic(snapshot: dict) -> str:
    """Canonical JSON of a snapshot's deterministic sections."""
    data = {k: v for k, v in snapshot.items() if k != "timing"}
    return json.dumps(data, sort_keys=True)


class TestMetricsRegistry:
    def test_counters_and_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("trials")
        reg.inc("trials", 2)
        reg.inc("outcome/masked")
        snap = reg.snapshot()
        assert snap["counters"] == {"outcome/masked": 1, "trials": 3}
        assert list(snap) == ["counters", "gauges", "histograms", "timing"]

    def test_histogram_overflow_bucket(self):
        reg = MetricsRegistry()
        reg.observe("mag", 0.5, buckets=(1.0, 10.0))
        reg.observe("mag", 5.0, buckets=(1.0, 10.0))
        reg.observe("mag", 1e9, buckets=(1.0, 10.0))
        hist = reg.snapshot()["histograms"]["mag"]
        assert hist["edges"] == [1.0, 10.0]
        assert hist["counts"] == [1, 1, 1]

    def test_histogram_rebucketing_raises(self):
        reg = MetricsRegistry()
        reg.observe("mag", 1.0, buckets=(1.0, 10.0))
        with pytest.raises(ValueError, match="re-bucket"):
            reg.observe("mag", 1.0, buckets=(2.0, 20.0))

    def test_histogram_unsorted_edges_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            reg.observe("mag", 1.0, buckets=(10.0, 1.0))

    def test_snapshot_reset_produces_deltas(self):
        reg = MetricsRegistry()
        reg.inc("trials", 5)
        first = reg.snapshot(reset=True)
        reg.inc("trials", 7)
        second = reg.snapshot(reset=True)
        assert first["counters"]["trials"] == 5
        assert second["counters"]["trials"] == 7
        merged = merge_snapshots(first, second)
        assert merged["counters"]["trials"] == 12

    def test_merge_is_commutative(self):
        parts = []
        for base in (1, 2, 3):
            reg = MetricsRegistry()
            reg.inc("trials", base)
            reg.inc(f"site/s{base}")
            reg.set_gauge("peak", float(base))
            reg.observe("mag", float(base))
            reg.time_span("trial", 0.1 * base)
            parts.append(reg.snapshot())
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for snap in parts:
            forward.merge_snapshot(snap)
        for snap in reversed(parts):
            backward.merge_snapshot(snap)
        f, b = forward.snapshot(), backward.snapshot()
        # Integer sections are byte-identical regardless of merge order;
        # timing sums floats, so order only changes the last ulp.
        assert _deterministic(f) == _deterministic(b)
        assert f["gauges"]["peak"] == 3.0
        assert f["timing"]["trial"]["count"] == b["timing"]["trial"]["count"]
        assert f["timing"]["trial"]["total_s"] == pytest.approx(b["timing"]["trial"]["total_s"])

    def test_merge_edge_mismatch_raises(self):
        a = MetricsRegistry()
        a.observe("mag", 1.0, buckets=(1.0,))
        b = MetricsRegistry()
        b.observe("mag", 1.0, buckets=(2.0,))
        with pytest.raises(ValueError, match="edges differ"):
            a.merge_snapshot(b.snapshot())

    def test_merge_snapshots_pure(self):
        a, b = empty_snapshot(), empty_snapshot()
        a["counters"]["x"] = 1
        b["counters"]["x"] = 2
        merged = merge_snapshots(a, b)
        assert merged["counters"]["x"] == 3
        assert a["counters"]["x"] == 1 and b["counters"]["x"] == 2

    def test_default_buckets_cover_magnitudes(self):
        assert DEFAULT_MAGNITUDE_BUCKETS[0] < 1e-7
        assert DEFAULT_MAGNITUDE_BUCKETS[-1] > 1e35


class TestSpans:
    def test_disabled_spans_record_nothing(self):
        assert not spans_enabled()
        with span("outer"):
            with span("inner"):
                pass
        assert timing_snapshot() == {}

    def test_enabled_spans_build_nested_paths(self):
        enable_spans()
        with span("trial"):
            with span("golden_infer"):
                pass
            with span("golden_infer"):
                pass
        snap = timing_snapshot(reset=True)
        assert set(snap) == {"trial", "trial/golden_infer"}
        assert snap["trial"]["count"] == 1
        assert snap["trial/golden_infer"]["count"] == 2
        assert snap["trial/golden_infer"]["total_s"] >= snap["trial/golden_infer"]["max_s"]

    def test_disable_keeps_collected_timings(self):
        enable_spans()
        with span("a"):
            pass
        disable_spans()
        with span("a"):
            pass
        snap = timing_snapshot()
        assert snap["a"]["count"] == 1


class TestEventRecorderRetention:
    def test_ring_buffer_keeps_most_recent(self):
        recorder = EventRecorder(max_events=10)
        for i in range(25):
            recorder.emit("tick", index=i)
        assert len(recorder.events) == 10
        kept = [e.detail["index"] for e in recorder.events]
        assert kept == list(range(15, 25))
        # Counts are exact regardless of retention.
        assert recorder.count("tick") == 25

    def test_tail_returns_oldest_first(self):
        recorder = EventRecorder(max_events=5)
        for i in range(8):
            recorder.emit("tick", index=i)
        tail = recorder.tail(3)
        assert [e.detail["index"] for e in tail] == [5, 6, 7]
        assert recorder.tail(0) == []

    def test_all_sinks_see_all_events(self):
        seen_a, seen_b = [], []
        recorder = EventRecorder(sink=seen_a.append)
        recorder.add_sink(seen_b.append)
        recorder.emit("retry", chunk=1)
        assert len(seen_a) == 1 and len(seen_b) == 1
        assert seen_a[0] is seen_b[0]


class TestCampaignMetrics:
    def test_serial_and_parallel_snapshots_byte_identical(self):
        serial = run_campaign(SPEC, jobs=1)
        parallel = run_campaign(SPEC, jobs=2, chunk=3)
        assert _deterministic(serial.metrics) == _deterministic(parallel.metrics)
        assert serial.metrics["counters"]["trials"] == SPEC.n_trials

    def test_metrics_match_records(self):
        result = run_campaign(SPEC, jobs=1)
        counters = result.metrics["counters"]
        assert counters["trials"] == len(result.records)
        masked = sum(1 for r in result.records if r.outcome.masked)
        assert counters.get("outcome/masked", 0) == masked
        hist = result.metrics["histograms"]["abs_value_after"]
        nonfinite = counters.get("value_after/nonfinite", 0)
        assert sum(hist["counts"]) + nonfinite == len(result.records)

    def test_resume_replay_reaches_identical_totals(self, tmp_path):
        path = tmp_path / "half.jsonl"
        reference = run_campaign(SPEC, jobs=1, checkpoint=path)
        # Rewrite the checkpoint keeping only the first half: a simulated
        # mid-flight kill.
        lines = path.read_text().splitlines()
        keep = 1 + SPEC.n_trials // 2  # header + half the records
        path.write_text("\n".join(lines[:keep]) + "\n")
        state = load_checkpoint(path, spec=SPEC)
        assert state is not None and 0 < state.n_completed < SPEC.n_trials
        resumed = run_campaign(SPEC, jobs=1, checkpoint=path, resume=True)
        assert resumed.stats.resumed == state.n_completed
        assert _deterministic(resumed.metrics) == _deterministic(reference.metrics)

    def test_result_merge_merges_metrics(self):
        a = run_campaign(SPEC, jobs=1)
        merged = a.merge(a)
        assert merged.metrics["counters"]["trials"] == 2 * SPEC.n_trials

    def test_campaign_summary_has_metrics_without_timing(self):
        result = run_campaign(SPEC, jobs=1, spans=True)
        summary = campaign_summary(result)
        assert summary["metrics"]["counters"]["trials"] == SPEC.n_trials
        assert "timing" not in summary["metrics"]

    def test_spans_off_by_default_and_collected_when_on(self):
        plain = run_campaign(SPEC, jobs=1)
        assert plain.metrics["timing"] == {}
        disable_spans()
        timed = run_campaign(SPEC, jobs=1, spans=True)
        paths = set(timed.metrics["timing"])
        assert any(p.endswith("trial") for p in paths)
        assert any("golden_infer" in p for p in paths)
        assert any("layer:" in p for p in paths)

    def test_record_trial_metrics_is_deterministic_per_record(self):
        result = run_campaign(SPEC, jobs=1)
        replay = MetricsRegistry()
        for record in result.records:
            record_trial_metrics(replay, record)
        assert _deterministic(replay.snapshot()) == _deterministic(result.metrics)


class TestRunManifest:
    def test_default_obs_paths(self):
        manifest, log = default_obs_paths("/tmp/run/ck.jsonl")
        assert manifest.name == "ck.jsonl.manifest.json"
        assert log.name == "ck.jsonl.runlog.jsonl"

    def test_campaign_writes_manifest_and_runlog(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        result = run_campaign(SPEC, jobs=1, checkpoint=path)
        manifest_path, log_path = default_obs_paths(path)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["status"] == "completed"
        assert manifest["run"]["network"] == SPEC.network
        assert manifest["run"]["resumed"] is False
        assert manifest["metrics"]["counters"]["trials"] == SPEC.n_trials
        assert manifest["summary"]["n_records"] == len(result.records)
        assert manifest["execution"]["quarantined"] == 0
        lines = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert lines[0]["kind"] == "begin"
        assert lines[-1]["kind"] == "manifest"
        assert lines[-1]["manifest"]["status"] == "completed"

    def test_explicit_paths_override_defaults(self, tmp_path):
        manifest_path = tmp_path / "custom.json"
        run_campaign(SPEC, jobs=1, manifest=manifest_path)
        assert json.loads(manifest_path.read_text())["status"] == "completed"

    def test_aborted_campaign_manifest(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "raise:5")
        path = tmp_path / "ck.jsonl"
        with pytest.raises(CampaignAbortedError):
            run_campaign(SPEC, jobs=1, checkpoint=path, max_error_frac=0.0)
        manifest = json.loads(default_obs_paths(path)[0].read_text())
        assert manifest["status"] == "aborted"
        assert manifest["execution"]["quarantined"] == 1

    def test_load_run_accepts_manifest_and_runlog(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        run_campaign(SPEC, jobs=1, checkpoint=path)
        manifest_path, log_path = default_obs_paths(path)
        from_manifest = load_run(manifest_path)
        from_log = load_run(log_path)
        assert from_manifest["manifest"]["status"] == "completed"
        assert from_log["manifest"]["status"] == "completed"
        assert from_log["begin"]["fingerprint"] == from_log["manifest"]["run"]["fingerprint"]

    def test_load_run_skips_torn_tail(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        run_campaign(SPEC, jobs=1, checkpoint=path)
        log_path = default_obs_paths(path)[1]
        with open(log_path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "event", "seq": 99, "trunc')
        run = load_run(log_path)
        assert run["manifest"]["status"] == "completed"

    def test_observer_inert_without_paths(self):
        observer = RunObserver()
        assert not observer.active
        observer.begin()
        observer.event_sink(CampaignEvent(seq=0, kind="retry"))
        manifest = observer.finish()
        assert manifest["status"] == "completed"

    def test_kill_midflight_then_resume_marks_manifest(self, tmp_path):
        """SIGKILL a live campaign; the resumed run's manifest says so."""
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=30, seed=5)
        path = tmp_path / "killed.jsonl"
        env = dict(os.environ)
        env["REPRO_CAMPAIGN_FAULT"] = "slow:*:0.05"
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.core.cli",
             "--network", "ConvNet", "--trials", "30", "--seed", "5",
             "--checkpoint", str(path), "--checkpoint-every", "4"],
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline and not path.exists():
                time.sleep(0.05)
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it could be killed")
            assert path.exists(), "no checkpoint appeared before the deadline"
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        manifest_path = default_obs_paths(path)[0]
        # The killed run left a manifest that says it never finished.
        killed = json.loads(manifest_path.read_text())
        assert killed["status"] == "running"

        state = load_checkpoint(path, spec=spec)
        assert state is not None and 0 < state.n_completed < spec.n_trials
        resumed = run_campaign(spec, jobs=1, checkpoint=path, resume=True)
        reference = run_campaign(spec, jobs=1)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["status"] == "completed"
        assert manifest["run"]["resumed"] is True
        assert manifest["run"]["resumed_trials"] == state.n_completed
        assert manifest["metrics"]["counters"]["trials"] == spec.n_trials
        assert _deterministic(resumed.metrics) == _deterministic(reference.metrics)


class TestProgressReporter:
    def _event(self, kind, seq=0, **detail):
        return CampaignEvent(seq=seq, kind=kind, detail=detail)

    def test_renders_progress_line(self):
        out = io.StringIO()
        reporter = ProgressReporter(stream=out, min_interval=0.0)
        reporter(self._event("progress", completed=10, total=40,
                             completed_here=10, final=True))
        text = out.getvalue()
        assert "10/40" in text and "trials/s" in text

    def test_noteworthy_events_echo_immediately(self):
        out = io.StringIO()
        reporter = ProgressReporter(stream=out, min_interval=3600.0)
        reporter(self._event("quarantine", index=3, reason="error"))
        assert "quarantine" in out.getvalue()

    def test_coalesces_fast_progress_events(self):
        out = io.StringIO()
        reporter = ProgressReporter(stream=out, min_interval=3600.0)
        reporter(self._event("progress", completed=1, total=10))
        reporter(self._event("progress", completed=2, total=10))
        # min_interval of an hour: only the reporter's very first render
        # could have fired; fast followers coalesce away.
        assert out.getvalue().count("[progress]") <= 1

    def test_campaign_emits_progress_events(self):
        recorder = EventRecorder()
        run_campaign(SPEC, jobs=1, events=recorder, progress_every=0.0001)
        assert recorder.count("progress") >= 1
        final = [e for e in recorder.events
                 if e.kind == "progress" and e.detail.get("final")]
        assert final and final[-1].detail["completed"] == SPEC.n_trials

    def test_rss_is_positive_on_posix(self):
        rss = rss_mb()
        if rss is not None:
            assert rss > 0

    def test_skipped_column_rendered(self):
        out = io.StringIO()
        reporter = ProgressReporter(stream=out, min_interval=0.0)
        reporter(self._event("progress", completed=20, total=40,
                             completed_here=20, skipped=4, skipped_here=4,
                             final=True))
        text = out.getvalue()
        assert "skipped 4" in text
        assert "eta" in text

    def test_skips_count_toward_eta_not_throughput(self):
        # 20 indices resolved in 10s, 4 of them early-stop skips: the
        # ETA must use the completion rate (2/s over all resolved
        # indices -> 10s left), while trials/s reports only the 16 that
        # actually propagated.
        out = io.StringIO()
        reporter = ProgressReporter(stream=out, min_interval=0.0)
        reporter._t0 -= 10.0  # pretend 10s elapsed
        reporter(self._event("progress", completed=20, total=40,
                             completed_here=20, skipped=4, skipped_here=4,
                             final=True))
        text = out.getvalue()
        assert "1.6 trials/s" in text
        assert "eta 10s" in text

    def test_campaign_emits_skip_counts(self):
        spec = CampaignSpec(
            network="ConvNet", dtype="FLOAT16", n_trials=200, seed=3,
            target_halfwidth=0.18, stop_stratify="site", stop_check_every=16,
        )
        recorder = EventRecorder()
        result = run_campaign(spec, events=recorder, progress_every=0.0001)
        assert result.skips, "stopping spec produced no skips; weaken the target"
        final = [e for e in recorder.events
                 if e.kind == "progress" and e.detail.get("final")][-1]
        assert final.detail["skipped"] == len(result.skips)
        # The run stops at the decision boundary: completion covers every
        # resolved index (propagated or skipped), not the nominal budget.
        assert final.detail["completed"] == len(result.records) + len(result.skips)


class TestObsCli:
    @pytest.fixture()
    def run_paths(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        run_campaign(SPEC, jobs=1, checkpoint=path, spans=True,
                     progress_every=0.0001)
        return default_obs_paths(path)

    def test_summarize_manifest(self, run_paths, capsys):
        manifest_path, _ = run_paths
        assert obs_cli.main(["summarize", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "network" in out and "ConvNet" in out
        assert "trials" in out and str(SPEC.n_trials) in out
        assert "time split" in out  # spans were enabled

    def test_summarize_runlog(self, run_paths, capsys):
        _, log_path = run_paths
        assert obs_cli.main(["summarize", str(log_path)]) == 0
        assert "ConvNet" in capsys.readouterr().out

    def test_tail(self, run_paths, capsys):
        _, log_path = run_paths
        assert obs_cli.main(["tail", str(log_path), "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "event" in out

    def test_tail_filters_kind(self, run_paths, capsys):
        _, log_path = run_paths
        assert obs_cli.main(["tail", str(log_path), "--kind", "progress"]) == 0
        out = capsys.readouterr().out
        assert "progress" in out

    def test_diff(self, run_paths, tmp_path, capsys):
        manifest_path, _ = run_paths
        other_ck = tmp_path / "other.jsonl"
        run_campaign(SPEC, jobs=1, checkpoint=other_ck)
        other_manifest = default_obs_paths(other_ck)[0]
        assert obs_cli.main(["diff", str(manifest_path), str(other_manifest)]) == 0
        out = capsys.readouterr().out
        assert "run diff" in out and "trials" in out

    def test_diff_exit_nonzero_on_divergence(self, run_paths, tmp_path, capsys):
        # A different seed produces genuinely different deterministic
        # facts; `repro-obs diff` is the verdict, so it must exit 1.
        manifest_path, _ = run_paths
        other_ck = tmp_path / "diverged.jsonl"
        run_campaign(
            CampaignSpec(network=SPEC.network, dtype=SPEC.dtype,
                         n_trials=SPEC.n_trials, n_inputs=SPEC.n_inputs, seed=99),
            jobs=1, checkpoint=other_ck,
        )
        other_manifest = default_obs_paths(other_ck)[0]
        assert obs_cli.main(["diff", str(manifest_path), str(other_manifest)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out

    def test_compare_runs_ignores_timing_but_not_counters(self, run_paths, tmp_path):
        manifest_path, _ = run_paths
        run = load_run(manifest_path)
        # Same run compared to itself: no divergence, by construction.
        assert obs_cli.compare_runs(run, run) == []
        tampered = json.loads(json.dumps(run))
        tampered["manifest"]["metrics"]["counters"]["trials"] += 1
        diverged = obs_cli.compare_runs(run, tampered)
        assert any("counters.trials" in line for line in diverged)
        # Timing is wall-clock noise and must never count as divergence.
        slow = json.loads(json.dumps(run))
        slow["manifest"]["timing"] = {"duration_s": 1e9}
        slow["manifest"]["metrics"]["timing"] = {"made_up": {"total_s": 1e9}}
        assert obs_cli.compare_runs(run, slow) == []

    def test_missing_file_exit_code(self, tmp_path, capsys):
        assert obs_cli.main(["summarize", str(tmp_path / "nope.json")]) == 2
        assert "repro-obs" in capsys.readouterr().err

    def test_summarize_inflight_runlog(self, tmp_path, capsys):
        log = tmp_path / "live.runlog.jsonl"
        observer = RunObserver(run_log_path=log, meta={"network": "ConvNet"})
        observer.begin()
        observer.event_sink(CampaignEvent(seq=0, kind="checkpoint", detail={"completed": 4}))
        assert obs_cli.main(["summarize", str(log)]) == 0
        out = capsys.readouterr().out
        assert "no manifest" in out


class TestEarlyStoppedRunObservability:
    """Early-stop skip counters are deterministic facts, not wall-clock.

    ``early_stop/skipped`` and its per-stratum children are pure
    functions of (spec, trial prefix), so `repro-obs summarize/diff`
    must treat them exactly like outcome counters: identical between
    serial and parallel runs of the same spec, and a genuine divergence
    when they differ.
    """

    STOP_SPEC = CampaignSpec(
        network="ConvNet", dtype="FLOAT16", n_trials=200, seed=3,
        target_halfwidth=0.18, stop_stratify="site", stop_check_every=16,
    )

    @pytest.fixture()
    def stopped_manifests(self, tmp_path):
        ck_a, ck_b = tmp_path / "serial.jsonl", tmp_path / "jobs2.jsonl"
        serial = run_campaign(self.STOP_SPEC, checkpoint=ck_a)
        assert serial.skips, "stopping spec produced no skips; weaken the target"
        run_campaign(self.STOP_SPEC, jobs=2, checkpoint=ck_b)
        return (default_obs_paths(ck_a)[0], default_obs_paths(ck_b)[0])

    def test_skip_counters_identical_serial_vs_jobs2(self, stopped_manifests):
        run_a, run_b = (load_run(p) for p in stopped_manifests)
        counters = run_a["manifest"]["metrics"]["counters"]
        assert counters["early_stop/skipped"] > 0
        assert any(key.startswith("early_stop/skipped/") for key in counters)
        assert obs_cli.compare_runs(run_a, run_b) == []

    def test_diff_exit_zero_and_summarize_render(self, stopped_manifests, capsys):
        manifest_a, manifest_b = stopped_manifests
        assert obs_cli.main(["diff", str(manifest_a), str(manifest_b)]) == 0
        capsys.readouterr()
        assert obs_cli.main(["summarize", str(manifest_a)]) == 0
        out = capsys.readouterr().out
        assert "early_stop" in out or "skipped" in out

    def test_tampered_skip_counter_is_fact_divergence(self, stopped_manifests):
        run_a, _ = (load_run(p) for p in stopped_manifests)
        tampered = json.loads(json.dumps(run_a))
        tampered["manifest"]["metrics"]["counters"]["early_stop/skipped"] += 1
        diverged = obs_cli.compare_runs(run_a, tampered)
        assert any("early_stop/skipped" in line for line in diverged)
