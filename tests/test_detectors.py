"""Symptom-based error detector (SED): learning, checking, scanning."""

import numpy as np
import pytest

from repro.core.detectors import DetectorQuality, SymptomDetector, learn_detector
from repro.core.fault import DatapathFault
from repro.core.injector import inject_datapath
from repro.dtypes import FLOAT16
from repro.nn.profiling import BlockRange, RangeProfile


def make_detector(bounds: dict[int, tuple[float, float]], cushion=0.0) -> SymptomDetector:
    profile = RangeProfile("t", {b: BlockRange(b, lo, hi) for b, (lo, hi) in bounds.items()})
    return SymptomDetector(profile, cushion=cushion)


class TestSymptomDetector:
    def test_check_flags_out_of_range(self):
        det = make_detector({1: (-1.0, 1.0)})
        assert not det.check(1, np.array([0.0, 0.5]))
        assert det.check(1, np.array([0.0, 2.0]))
        assert det.check(1, np.array([np.nan]))
        assert det.check(1, np.array([np.inf]))

    def test_unknown_block_never_fires(self):
        det = make_detector({1: (-1.0, 1.0)})
        assert not det.check(9, np.array([1e9]))

    def test_cushion_suppresses_borderline(self):
        tight = make_detector({1: (-1.0, 1.0)}, cushion=0.0)
        cushioned = make_detector({1: (-1.0, 1.0)}, cushion=0.10)
        v = np.array([1.05])
        assert tight.check(1, v)
        assert not cushioned.check(1, v)

    def test_negative_cushion_rejected(self):
        with pytest.raises(ValueError):
            make_detector({1: (-1, 1)}, cushion=-0.1)

    def test_checkpoints_at_block_outputs(self, tiny_network):
        det = make_detector({1: (-1, 1)})
        points = det.checkpoints(tiny_network)
        # block outputs: pool1 (idx 2), flatten (idx 6, same values as
        # pool2), fc (idx 7; the softmax is excluded)
        assert points == {2: 1, 6: 2, 7: 3}


class TestLearnAndScan:
    def test_learned_detector_quiet_on_clean_runs(self, tiny_network, rng):
        inputs = rng.normal(0, 1, (6, 3, 8, 8))
        det = learn_detector(tiny_network, inputs, dtype=FLOAT16)
        res = tiny_network.forward(inputs[0], dtype=FLOAT16, record=True)
        assert not det.scan(tiny_network, res.activations, 0)

    def test_detects_injected_out_of_range(self, tiny_network, rng):
        inputs = rng.normal(0, 1, (6, 3, 8, 8))
        det = learn_detector(tiny_network, inputs, dtype=FLOAT16)
        golden = tiny_network.forward(inputs[0], dtype=FLOAT16, record=True)
        # Pick a conv1 output in [0.5, 2): its top exponent bit is 0, so
        # flipping bit 14 at the last MAC step lands far out of range.
        conv_out = golden.activations[1]
        victim = tuple(int(v) for v in np.argwhere((conv_out > 0.5) & (conv_out < 2.0))[0])
        last_step = tiny_network.layers[0].chain_length((3, 8, 8)) - 1
        fault = DatapathFault(0, victim, last_step, "accumulator", 14)
        inj = inject_datapath(tiny_network, FLOAT16, fault, golden, record=True)
        assert not inj.masked
        assert abs(inj.value_after) > 1e4 or not np.isfinite(inj.value_after)
        assert det.scan(tiny_network, inj.faulty_activations, inj.resume_index)

    def test_scan_ignores_upstream_checkpoints(self, tiny_network, rng):
        inputs = rng.normal(0, 1, (4, 3, 8, 8))
        det = learn_detector(tiny_network, inputs, dtype=FLOAT16)
        golden = tiny_network.forward(inputs[0], dtype=FLOAT16, record=True)
        # fault at the FC layer: only the block-3 checkpoint can fire
        fc_idx = tiny_network.mac_layer_indices()[-1]
        fault = DatapathFault(fc_idx, (2,), 3, "accumulator", 14)
        inj = inject_datapath(tiny_network, FLOAT16, fault, golden, record=True)
        fired = det.scan(tiny_network, inj.faulty_activations, inj.resume_index)
        assert isinstance(fired, bool)


class TestDetectorQuality:
    def test_paper_precision_definition(self):
        q = DetectorQuality(true_positives=9, false_positives=2, total_sdc=10, total_injected=100)
        assert q.precision == pytest.approx(0.98)  # 1 - 2/100
        assert q.recall == pytest.approx(0.9)
        assert q.standard_precision == pytest.approx(9 / 11)

    def test_degenerate_counts(self):
        q = DetectorQuality(0, 0, 0, 0)
        assert q.precision == 1.0 and q.recall == 1.0 and q.standard_precision == 1.0
