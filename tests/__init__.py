"""Test package marker (kept importable for the repo self-check)."""

__all__ = []
