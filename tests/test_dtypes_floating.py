"""Unit tests for the IEEE-754 codecs (DOUBLE / FLOAT / FLOAT16)."""

import numpy as np
import pytest

from repro.dtypes import DOUBLE, FLOAT, FLOAT16


class TestLayout:
    def test_widths(self):
        assert DOUBLE.width == 64
        assert FLOAT.width == 32
        assert FLOAT16.width == 16

    def test_field_partition_covers_all_bits(self):
        for dt in (DOUBLE, FLOAT, FLOAT16):
            covered = sorted(
                bit for f in dt.fields for bit in range(f.lo, f.hi + 1)
            )
            assert covered == list(range(dt.width))

    def test_field_of(self):
        assert FLOAT16.field_of(0) == "mantissa"
        assert FLOAT16.field_of(9) == "mantissa"
        assert FLOAT16.field_of(10) == "exponent"
        assert FLOAT16.field_of(14) == "exponent"
        assert FLOAT16.field_of(15) == "sign"
        assert FLOAT.field_of(23) == "exponent"
        assert DOUBLE.field_of(63) == "sign"

    def test_field_of_out_of_range(self):
        with pytest.raises(ValueError):
            FLOAT16.field_of(16)


class TestQuantize:
    def test_double_is_identity(self, rng):
        x = rng.normal(0, 100, 50)
        assert np.array_equal(DOUBLE.quantize(x), x)

    def test_float16_rounds(self):
        # 1 + 2^-11 is exactly between fp16 neighbours; rounds to even (1.0)
        assert FLOAT16.quantize(np.array([1.0 + 2.0**-11]))[0] == 1.0

    def test_float16_overflow_to_inf(self):
        assert np.isinf(FLOAT16.quantize(np.array([1e6]))[0])

    def test_quantize_idempotent(self, rng):
        x = rng.normal(0, 10, 100)
        q1 = FLOAT16.quantize(x)
        assert np.array_equal(FLOAT16.quantize(q1), q1)

    def test_preserves_shape(self, rng):
        x = rng.normal(0, 1, (3, 4, 5))
        assert FLOAT.quantize(x).shape == (3, 4, 5)


class TestEncodeDecode:
    def test_known_patterns(self):
        assert FLOAT.encode(np.array([1.0]))[0] == 0x3F800000
        assert FLOAT.encode(np.array([-1.0]))[0] == 0xBF800000
        assert FLOAT16.encode(np.array([1.0]))[0] == 0x3C00
        assert DOUBLE.encode(np.array([1.0]))[0] == 0x3FF0000000000000

    def test_roundtrip(self, rng):
        for dt in (DOUBLE, FLOAT, FLOAT16):
            x = dt.quantize(rng.normal(0, 5, 200))
            assert np.array_equal(dt.decode(dt.encode(x)), x)

    def test_decode_inf_nan(self):
        assert np.isinf(FLOAT16.decode(np.array([0x7C00]))[0])
        assert np.isnan(FLOAT16.decode(np.array([0x7C01]))[0])


class TestFlipBit:
    def test_sign_flip(self):
        assert FLOAT.flip_bit(np.array([2.5]), 31)[0] == -2.5

    def test_mantissa_flip_small_change(self):
        v = FLOAT16.flip_bit(np.array([1.0]), 0)[0]
        assert v != 1.0 and abs(v - 1.0) < 0.01

    def test_exponent_flip_large_change(self):
        v = FLOAT16.flip_bit(np.array([1.0]), 14)[0]
        assert not np.isfinite(v) or abs(v) > 1e4

    def test_double_flip_is_identity(self, rng):
        x = FLOAT.quantize(rng.normal(0, 3, 50))
        for bit in (0, 15, 23, 30, 31):
            once = FLOAT.flip_bit(x, bit)
            twice = FLOAT.flip_bit(once, bit)
            # NaN intermediates lose their payload through the float64
            # carrier (documented codec limitation); exclude them.
            ok = ~np.isnan(once)
            assert np.array_equal(twice[ok], x[ok])
            assert ok.sum() > 25  # the exclusion is the minority case

    def test_flip_out_of_range_raises(self):
        with pytest.raises(ValueError):
            FLOAT16.flip_bit(np.array([1.0]), 16)


class TestArithmetic:
    def test_multiply_rounds_in_format(self):
        # fp16: 1.0009765625 * 1.0009765625 = 1.00195... rounds to 1.001953125
        a = np.array([1.0 + 2.0**-10])
        prod = FLOAT16.multiply(a, a)
        assert prod[0] == FLOAT16.quantize(np.array([(1 + 2.0**-10) ** 2]))[0]

    def test_partials_per_step_rounding(self):
        # Adding 2^-12 to 1.0 in fp16 is absorbed at every step.
        p = np.array([1.0] + [2.0**-12] * 100)
        chain = FLOAT16.partials(p)
        assert chain[-1] == 1.0
        assert np.sum(p) > 1.0  # float64 reference differs

    def test_accumulate_matches_partials_tail(self, rng):
        p = rng.normal(0, 1, 64)
        assert FLOAT16.accumulate(p) == FLOAT16.partials(p)[-1]

    def test_accumulate_empty(self):
        assert FLOAT16.accumulate(np.array([])) == 0.0

    def test_add_overflow_to_inf(self):
        assert np.isinf(FLOAT16.add(np.array([6e4]), np.array([6e4]))[0])


class TestRange:
    def test_max_values(self):
        assert FLOAT16.max_value == pytest.approx(65504.0)
        assert FLOAT.min_value == -FLOAT.max_value
        assert DOUBLE.dynamic_range > FLOAT.dynamic_range > FLOAT16.dynamic_range


class TestIdentity:
    def test_equality_and_hash(self):
        assert FLOAT16 == FLOAT16
        assert FLOAT16 != FLOAT
        assert len({DOUBLE, FLOAT, FLOAT16}) == 3
