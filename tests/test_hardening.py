"""Selective latch hardening: coverage curve, beta fit, optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hardening import (
    HARDENING_TECHNIQUES,
    coverage_curve,
    fit_beta,
    optimize_hardening,
    single_technique_overhead,
)

RCC, SEUT, TMR = HARDENING_TECHNIQUES


class TestTechniqueLibrary:
    def test_table9_values(self):
        assert (RCC.name, RCC.area, RCC.fit_reduction) == ("RCC", 1.15, 6.3)
        assert (SEUT.name, SEUT.area, SEUT.fit_reduction) == ("SEUT", 2.0, 37.0)
        assert (TMR.name, TMR.area, TMR.fit_reduction) == ("TMR", 3.5, 1_000_000.0)

    def test_overhead(self):
        assert RCC.overhead == pytest.approx(0.15)
        assert TMR.overhead == pytest.approx(2.5)


class TestCoverageCurve:
    def test_most_sensitive_first(self):
        fit = np.array([0.0, 10.0, 1.0, 0.0])
        fraction, reduction = coverage_curve(fit)
        assert fraction[0] == 0.0 and reduction[0] == 0.0
        # protecting 1/4 of latches removes 10/11 of the FIT
        assert reduction[1] == pytest.approx(10 / 11)
        assert reduction[-1] == pytest.approx(1.0)

    def test_uniform_fit_is_linear(self):
        fraction, reduction = coverage_curve(np.ones(10))
        assert np.allclose(reduction, fraction)

    def test_all_zero(self):
        _, reduction = coverage_curve(np.zeros(4))
        assert (reduction == 0).all()

    def test_invalid(self):
        with pytest.raises(ValueError):
            coverage_curve(np.array([]))
        with pytest.raises(ValueError):
            coverage_curve(np.array([-1.0]))


class TestBetaFit:
    def test_uniform_has_low_beta(self):
        f, r = coverage_curve(np.ones(64))
        beta_uniform = fit_beta(f, r)
        f2, r2 = coverage_curve(np.array([100.0] * 4 + [0.1] * 60))
        beta_skewed = fit_beta(f2, r2)
        assert beta_skewed > beta_uniform

    def test_exact_exponential_recovered(self):
        beta_true = 6.0
        f = np.linspace(0, 1, 50)
        r = 1.0 - np.exp(-beta_true * f)
        assert fit_beta(f, r) == pytest.approx(beta_true, rel=1e-6)


class TestSingleTechnique:
    FIT = np.array([8.0, 4.0, 2.0, 1.0, 0.5, 0.25, 0.125, 0.125])

    def test_trivial_target(self):
        assert single_technique_overhead(self.FIT, RCC, 1.0) == 0.0

    def test_unreachable_target(self):
        assert single_technique_overhead(self.FIT, RCC, 100.0) is None

    def test_overhead_monotone_in_target(self):
        targets = [1.5, 2.0, 3.0, 5.0]
        ohs = [single_technique_overhead(self.FIT, SEUT, t) for t in targets]
        assert all(a <= b for a, b in zip(ohs, ohs[1:]))

    def test_achieves_target(self):
        target = 5.0
        oh = single_technique_overhead(self.FIT, SEUT, target)
        k = round(oh / SEUT.overhead * self.FIT.size)
        order = np.argsort(self.FIT)[::-1]
        protected = self.FIT[order][:k].sum()
        residual = self.FIT.sum() - protected + protected / SEUT.fit_reduction
        assert self.FIT.sum() / residual >= target - 1e-9

    def test_stronger_technique_protects_fewer_latches(self):
        oh_seut = single_technique_overhead(self.FIT, SEUT, 4.0)
        oh_tmr = single_technique_overhead(self.FIT, TMR, 4.0)
        k_seut = oh_seut / SEUT.overhead
        k_tmr = oh_tmr / TMR.overhead
        assert k_tmr <= k_seut


class TestOptimizer:
    FIT = np.array([8.0, 4.0, 2.0, 1.0, 0.5, 0.25, 0.125, 0.125])

    def test_achieves_target(self):
        plan = optimize_hardening(self.FIT, 37.0)
        assert plan.achieved_reduction >= 37.0

    def test_multi_no_worse_than_best_single(self):
        for target in (2.0, 6.3, 20.0, 100.0):
            plan = optimize_hardening(self.FIT, target)
            singles = [
                single_technique_overhead(self.FIT, t, target) for t in HARDENING_TECHNIQUES
            ]
            best_single = min(s for s in singles if s is not None)
            assert plan.area_overhead <= best_single + 1e-9

    def test_trivial_target_costs_nothing(self):
        plan = optimize_hardening(self.FIT, 1.0)
        assert plan.area_overhead == 0.0
        assert all(a == "Baseline" for a in plan.assignment)

    def test_assignment_length(self):
        plan = optimize_hardening(self.FIT, 10.0)
        assert len(plan.assignment) == self.FIT.size
        assert set(plan.assignment) <= {"Baseline", "RCC", "SEUT", "TMR"}

    def test_zero_fit_no_hardening_needed(self):
        plan = optimize_hardening(np.zeros(4), 100.0)
        assert plan.area_overhead == 0.0

    @given(
        fits=st.lists(
            st.one_of(st.just(0.0), st.floats(1e-3, 100.0)), min_size=2, max_size=12
        ),
        target=st.floats(1.5, 50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_target_met_or_all_tmr(self, fits, target):
        fit = np.array(fits)
        plan = optimize_hardening(fit, target)
        if fit.sum() == 0:
            return
        # Greedy either meets the target or has hardened everything to TMR.
        assert plan.achieved_reduction >= target or all(a == "TMR" for a in plan.assignment)

    @given(
        fits=st.lists(st.floats(0.01, 100.0), min_size=2, max_size=10),
        target=st.floats(1.5, 30.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_overhead_consistent_with_assignment(self, fits, target):
        fit = np.array(fits)
        plan = optimize_hardening(fit, target)
        by_name = {t.name: t for t in HARDENING_TECHNIQUES}
        expected = sum(by_name[a].overhead for a in plan.assignment if a != "Baseline")
        assert plan.area_overhead == pytest.approx(expected / fit.size)
