"""Training engine: loss/gradient correctness and actual learning."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, Network, ReLU, Softmax
from repro.nn.training import SGDTrainer, accuracy, softmax_cross_entropy


class TestLoss:
    def test_uniform_logits_loss(self):
        logits = np.zeros((4, 10))
        labels = np.array([0, 3, 5, 9])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(10))
        assert grad.shape == (4, 10)

    def test_gradient_numeric(self, rng):
        logits = rng.normal(0, 1, (3, 5))
        labels = np.array([1, 4, 0])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        num = np.zeros_like(logits)
        for idx in np.ndindex(*logits.shape):
            lp, lm = logits.copy(), logits.copy()
            lp[idx] += eps
            lm[idx] -= eps
            num[idx] = (
                softmax_cross_entropy(lp, labels)[0] - softmax_cross_entropy(lm, labels)[0]
            ) / (2 * eps)
        assert np.allclose(grad, num, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(0, 2, (6, 8))
        labels = rng.integers(0, 8, 6)
        _, grad = softmax_cross_entropy(logits, labels)
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_accuracy(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0]])
        assert accuracy(logits, np.array([1, 0])) == 1.0
        assert accuracy(logits, np.array([0, 0])) == 0.5

    def test_numerical_stability_large_logits(self):
        logits = np.array([[1000.0, 0.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss) and np.isfinite(grad).all()


def tiny_trainable(seed=0):
    net = Network(
        "t",
        [
            Conv2D("c1", 1, 4, 3, pad=1),
            ReLU("r1"),
            MaxPool2D("p1", 2),
            Flatten("fl"),
            Dense("fc", 4 * 3 * 3, 3),
            Softmax("sm"),
        ],
        input_shape=(1, 6, 6),
    )
    g = np.random.default_rng(seed)
    for i in net.mac_layer_indices():
        w = net.layers[i].params()["weight"]
        w[:] = g.normal(0, 0.5, w.shape)
    return net


def toy_task(n, rng):
    """3-class task: which horizontal band holds the bright blob."""
    x = rng.normal(0, 0.3, (n, 1, 6, 6))
    labels = rng.integers(0, 3, n)
    for i, lab in enumerate(labels):
        x[i, 0, 2 * lab : 2 * lab + 2, :] += 2.0
    return x, labels


class TestSGDTrainer:
    def test_loss_decreases(self, rng):
        net = tiny_trainable()
        x, y = toy_task(120, rng)
        trainer = SGDTrainer(net, lr=0.05, momentum=0.9, weight_decay=0.0)
        report = trainer.fit(x, y, epochs=5, batch_size=16, rng=np.random.default_rng(0))
        assert report.losses[-1] < report.losses[0]
        assert report.train_acc[-1] > 0.8

    def test_learns_to_classify(self, rng):
        net = tiny_trainable()
        x, y = toy_task(150, rng)
        SGDTrainer(net, lr=0.05).fit(x, y, epochs=6, batch_size=16, rng=np.random.default_rng(0))
        xt, yt = toy_task(60, np.random.default_rng(7))
        correct = sum(net.forward(xt[i], record=False).top1() == yt[i] for i in range(60))
        assert correct / 60 > 0.8

    def test_softmax_excluded_from_trainable_stack(self):
        net = tiny_trainable()
        trainer = SGDTrainer(net)
        assert trainer._trainable[-1].kind != "softmax"

    def test_logits_match_forward(self, rng):
        net = tiny_trainable()
        trainer = SGDTrainer(net)
        x = rng.normal(0, 1, (2, 1, 6, 6))
        logits = trainer.logits(x)
        res = net.forward(x[0], record=True)
        assert np.allclose(logits[0], res.activations[-2])

    def test_lr_decay_applied(self, rng):
        net = tiny_trainable()
        trainer = SGDTrainer(net, lr=0.1)
        x, y = toy_task(32, rng)
        trainer.fit(x, y, epochs=3, batch_size=16, rng=np.random.default_rng(0), lr_decay=0.5)
        assert trainer.lr == pytest.approx(0.1 * 0.5**3)

    def test_weight_decay_shrinks_weights(self, rng):
        net = tiny_trainable()
        x = np.zeros((16, 1, 6, 6))
        y = np.zeros(16, dtype=np.int64)
        w0 = np.abs(net.layers[0].weight).mean()
        trainer = SGDTrainer(net, lr=0.01, momentum=0.0, weight_decay=0.5)
        trainer.fit(x, y, epochs=3, batch_size=16, rng=np.random.default_rng(0))
        assert np.abs(net.layers[0].weight).mean() < w0

    def test_invalidates_quantized_caches(self, rng):
        from repro.dtypes import FLOAT16

        net = tiny_trainable()
        net.prepare(FLOAT16)
        x, y = toy_task(32, rng)
        xin = rng.normal(0, 1, (1, 6, 6))
        before = net.forward(xin, dtype=FLOAT16).scores
        SGDTrainer(net, lr=0.05).fit(x, y, epochs=1, batch_size=16, rng=np.random.default_rng(0))
        after = net.forward(xin, dtype=FLOAT16).scores
        assert not np.array_equal(before, after)
