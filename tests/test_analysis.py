"""repro.analysis (repro-lint): rule fixtures, suppressions, config, CLI.

Each RPnnn rule gets a minimal triggering snippet plus a negative case;
path-scoped rules are exercised through fixture trees that mimic the
package layout (``repro/dtypes/...``).  The suite ends with the repo
self-check: ``repro-lint src/`` must report zero findings.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    all_rules,
    get_rule,
    lint_paths,
    load_config,
    render_json,
    render_text,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.config import find_pyproject, path_matches
from repro.analysis.findings import PARSE_ERROR_ID
from repro.analysis.registry import expand_ids

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(
    tmp_path: Path,
    code: str,
    relpath: str = "mod.py",
    config: LintConfig | None = None,
) -> list[Finding]:
    """Write ``code`` at ``tmp_path/relpath`` and lint just that file."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return lint_paths([target], config=config)


def ids(findings: list[Finding]) -> set[str]:
    return {f.rule_id for f in findings}


def lint_tree(
    tmp_path: Path,
    files: dict[str, str],
    config: LintConfig | None = None,
) -> list[Finding]:
    """Write a fixture tree (relpath -> code) and lint the whole of it."""
    for relpath, code in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code))
    return lint_paths([tmp_path], config=config)


def by_rule(findings: list[Finding], rule_id: str) -> list[Finding]:
    return [f for f in findings if f.rule_id == rule_id]


class TestRegistry:
    def test_all_rule_families_present(self):
        families = {rule.id[:3] for rule in all_rules()}
        assert families == {"RP1", "RP2", "RP3", "RP4", "RP5", "RP6"}

    def test_ids_are_stable_and_unique(self):
        rule_ids = [rule.id for rule in all_rules()]
        assert len(rule_ids) == len(set(rule_ids))
        assert {"RP101", "RP102", "RP103", "RP104", "RP105", "RP106", "RP108",
                "RP201", "RP202", "RP203",
                "RP301", "RP302", "RP401", "RP402", "RP501", "RP502", "RP503",
                "RP601", "RP611", "RP612", "RP621", "RP622"} <= set(rule_ids)

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("RP999")

    def test_expand_family_selector(self):
        assert expand_ids(["RP1"]) == {
            "RP101", "RP102", "RP103", "RP104", "RP105", "RP106", "RP108",
        }
        assert expand_ids(["RP3xx"]) == {"RP301", "RP302"}
        with pytest.raises(KeyError):
            expand_ids(["RP9"])


class TestDeterminismRules:
    def test_rp101_legacy_numpy_random(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = []
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(4)
            """,
        )
        assert [f.rule_id for f in findings if f.rule_id == "RP101"] == ["RP101", "RP101"]

    def test_rp101_from_import(self, tmp_path):
        findings = lint_snippet(tmp_path, "__all__ = []\nfrom numpy.random import randn\n")
        assert "RP101" in ids(findings)

    def test_rp101_new_generator_api_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = []
            import numpy as np
            rng = np.random.default_rng(np.random.SeedSequence(entropy=7))
            """,
        )
        assert "RP101" not in ids(findings)

    def test_rp102_stdlib_random(self, tmp_path):
        assert "RP102" in ids(lint_snippet(tmp_path, "__all__ = []\nimport random\n"))
        assert "RP102" in ids(lint_snippet(tmp_path, "__all__ = []\nfrom random import choice\n"))

    def test_rp103_wall_clock_scoped_to_campaign_paths(self, tmp_path):
        code = """
        __all__ = []
        import time
        t = time.time()
        """
        inside = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        outside = lint_snippet(tmp_path, code, relpath="repro/zoo/mod.py")
        assert "RP103" in ids(inside)
        assert "RP103" not in ids(outside)

    def test_rp103_monotonic_timer_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "__all__ = []\nimport time\nt = time.perf_counter()\n",
            relpath="repro/core/mod.py",
        )
        assert "RP103" not in ids(findings)

    def test_rp104_sleep_scoped_to_campaign_paths(self, tmp_path):
        code = """
        __all__ = []
        import time

        def backoff():
            time.sleep(0.5)
        """
        inside = lint_snippet(tmp_path, code, relpath="repro/utils/parallel.py")
        outside = lint_snippet(tmp_path, code, relpath="repro/zoo/mod.py")
        assert "RP104" in ids(inside)
        assert "RP104" not in ids(outside)

    def test_rp104_noqa_exemption(self, tmp_path):
        code = """
        __all__ = []
        import time

        def backoff(delay):
            time.sleep(delay)  # repro: noqa[RP104]
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP104" not in ids(findings)

    def test_rp106_golden_subscript_write(self, tmp_path):
        code = """
        __all__ = []

        def corrupt(golden, i, v):
            golden.scores[i] = v
        """
        inside = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        outside = lint_snippet(tmp_path, code, relpath="repro/zoo/mod.py")
        assert "RP106" in ids(inside)
        assert "RP106" not in ids(outside)

    def test_rp106_augmented_write_and_nested_chain(self, tmp_path):
        code = """
        __all__ = []

        def corrupt(task, i):
            task.goldens[i].scores += 1.0
            task.goldens[i].activations[0][3] = 0.0
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert [f.rule_id for f in findings if f.rule_id == "RP106"] == ["RP106", "RP106"]

    def test_rp106_copy_then_corrupt_clean(self, tmp_path):
        code = """
        __all__ = []
        import numpy as np

        def inject(golden, i, v):
            faulty = golden.scores.copy()
            faulty[i] = v
            golden_copy = np.ascontiguousarray(golden.scores)
            golden_copy[i] = v
            return faulty, golden_copy
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP106" not in ids(findings)

    def test_rp106_rebind_clean(self, tmp_path):
        code = """
        __all__ = []

        def swap(new):
            golden = new
            return golden
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP106" not in ids(findings)


class TestObservabilityRules:
    def test_rp105_bare_print_in_library(self, tmp_path):
        code = """
        __all__ = []

        def helper(x):
            print("debug", x)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP105" in ids(findings)

    def test_rp105_exempt_paths_skip_cli_and_reporter(self, tmp_path):
        code = """
        __all__ = []

        def main():
            print("usage: ...")
        """
        for relpath in ("repro/core/cli.py", "repro/obs/progress.py"):
            findings = lint_snippet(tmp_path, code, relpath=relpath)
            assert "RP105" not in ids(findings), relpath

    def test_rp105_outside_library_scope_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "__all__ = []\nprint('hi')\n", relpath="scripts/tool.py"
        )
        assert "RP105" not in ids(findings)

    def test_rp105_shadowed_print_method_clean(self, tmp_path):
        code = """
        __all__ = []

        def render(doc):
            doc.print()
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP105" not in ids(findings)

    def test_rp105_noqa_exemption(self, tmp_path):
        code = """
        __all__ = []

        def helper(x):
            print(x)  # repro: noqa[RP105]
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP105" not in ids(findings)

    def test_rp105_custom_exempt_config(self, tmp_path):
        from repro.analysis.config import LintConfig

        code = """
        __all__ = []
        print("banner")
        """
        cfg = LintConfig(print_exempt_paths=("repro/custom/banner.py",))
        findings = lint_snippet(tmp_path, code, relpath="repro/custom/banner.py", config=cfg)
        assert "RP105" not in ids(findings)

    def test_repo_source_tree_is_rp105_clean(self):
        src = Path(__file__).resolve().parents[1] / "src"
        findings = [f for f in lint_paths([src]) if f.rule_id == "RP105"]
        assert findings == []

    def test_rp108_append_open_in_campaign_code(self, tmp_path):
        code = """
        __all__ = []

        def persist(path, row):
            with open(path, "a") as fh:
                fh.write(row)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP108" in ids(findings)

    def test_rp108_path_open_append_and_mode_kwarg(self, tmp_path):
        code = """
        __all__ = []

        def persist(path, row):
            with path.open("ab") as fh:
                fh.write(row)
            with open(path, mode="a") as fh:
                fh.write(row)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/experiments/mod.py")
        assert len(by_rule(findings, "RP108")) == 2

    def test_rp108_json_dump_in_campaign_code(self, tmp_path):
        code = """
        __all__ = []
        import json

        def persist(path, payload):
            with open(path, "w") as fh:
                json.dump(payload, fh)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP108" in ids(findings)

    def test_rp108_read_and_write_modes_clean(self, tmp_path):
        code = """
        __all__ = []
        import json

        def load(path):
            with open(path, "r") as fh:
                return json.load(fh)

        def save(path, payload):
            path.write_text(json.dumps(payload))
            path.open()  # default read mode
            open(path, "w").close()
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP108" not in ids(findings)

    def test_rp108_mode_like_string_required(self, tmp_path):
        # An arbitrary first argument containing "a" is not a mode string.
        code = """
        __all__ = []

        def show(browser):
            browser.open("page.html")
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP108" not in ids(findings)

    def test_rp108_outside_campaign_scope_clean(self, tmp_path):
        code = """
        __all__ = []

        def persist(path, row):
            with open(path, "a") as fh:
                fh.write(row)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/zoo/mod.py")
        assert "RP108" not in ids(findings)

    def test_rp108_writer_modules_exempt(self, tmp_path):
        from repro.analysis.config import LintConfig

        code = """
        __all__ = []
        import json

        def snapshot(path, payload):
            with open(path, "a") as fh:
                json.dump(payload, fh)
        """
        cfg = LintConfig(
            campaign_paths=("repro/core",),
            obs_writer_exempt_paths=("repro/core/checkpoint.py",),
        )
        findings = lint_snippet(
            tmp_path, code, relpath="repro/core/checkpoint.py", config=cfg
        )
        assert "RP108" not in ids(findings)

    def test_rp108_noqa_exemption(self, tmp_path):
        code = """
        __all__ = []

        def persist(path, row):
            fh = open(path, "a")  # repro: noqa[RP108]
            fh.write(row)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP108" not in ids(findings)

    def test_repo_source_tree_is_rp108_clean(self):
        src = Path(__file__).resolve().parents[1] / "src"
        findings = [f for f in lint_paths([src]) if f.rule_id == "RP108"]
        assert findings == []


class TestDtypeRules:
    def test_rp201_float_literal_equality(self, tmp_path):
        findings = lint_snippet(tmp_path, "__all__ = []\nok = (x == 0.5)\n")
        assert "RP201" in ids(findings)

    def test_rp201_nonfinite_and_negative(self, tmp_path):
        code = """
        __all__ = []
        import numpy as np
        a = x != np.inf
        b = y == -1.0
        """
        findings = [f for f in lint_snippet(tmp_path, code) if f.rule_id == "RP201"]
        assert len(findings) == 2

    def test_rp201_int_equality_clean(self, tmp_path):
        assert "RP201" not in ids(lint_snippet(tmp_path, "__all__ = []\nok = (x == 3)\n"))

    def test_rp202_missing_dtype_in_scope(self, tmp_path):
        code = """
        __all__ = []
        import numpy as np
        a = np.zeros((3, 3))
        b = np.array([1.0, 2.0])
        """
        inside = lint_snippet(tmp_path, code, relpath="repro/dtypes/mod.py")
        outside = lint_snippet(tmp_path, code, relpath="repro/zoo/mod.py")
        assert len([f for f in inside if f.rule_id == "RP202"]) == 2
        assert "RP202" not in ids(outside)

    def test_rp202_explicit_dtype_and_copy_clean(self, tmp_path):
        code = """
        __all__ = []
        import numpy as np
        a = np.zeros((3, 3), dtype=np.int64)
        b = np.array(a)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/nn/mod.py")
        assert "RP202" not in ids(findings)

    def test_rp203_bare_float_in_kernel(self, tmp_path):
        code = """
        __all__ = []
        def quantize(x, scale):
            y = x * 0.5
            y += 1.0
            return y
        """
        config = LintConfig(kernel_paths=("repro/dtypes/fixedpoint.py",))
        inside = lint_snippet(tmp_path, code, relpath="repro/dtypes/fixedpoint.py", config=config)
        outside = lint_snippet(tmp_path, code, relpath="repro/dtypes/base.py", config=config)
        assert len([f for f in inside if f.rule_id == "RP203"]) == 2
        assert "RP203" not in ids(outside)


class TestAtomicityRule:
    SHARED_TMP = """
    __all__ = []
    import os

    def save(path):
        tmp = path.with_suffix(".tmp.npz")
        write(tmp)
        tmp.replace(path)
    """

    def test_rp301_shared_temp_flagged(self, tmp_path):
        assert "RP301" in ids(lint_snippet(tmp_path, self.SHARED_TMP))

    def test_rp301_os_replace_form_flagged(self, tmp_path):
        code = """
        __all__ = []
        import os

        def save(path):
            tmp = str(path) + ".tmp"
            write(tmp)
            os.replace(tmp, path)
        """
        assert "RP301" in ids(lint_snippet(tmp_path, code))

    def test_rp301_pid_unique_temp_clean(self, tmp_path):
        code = (  # repro: noqa[RP302] — fixture string mentions tmp/getpid
            """
        __all__ = []
        import os

        def save(path):
            tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp.npz")
            write(tmp)
            tmp.replace(path)
        """
        )
        assert "RP301" not in ids(lint_snippet(tmp_path, code))

    def test_rp302_unique_temp_without_publish(self, tmp_path):
        code = (  # repro: noqa[RP302] — fixture string mentions tmp/getpid
            """
        __all__ = []
        import os

        def save(path, data):
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(data)
        """
        )
        assert "RP302" in ids(lint_snippet(tmp_path, code))

    def test_rp302_published_temp_clean(self, tmp_path):
        code = (  # repro: noqa[RP302] — fixture string mentions tmp/getpid
            """
        __all__ = []
        import os

        def save(path, data):
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(data)
            os.replace(tmp, path)
        """
        )
        assert "RP302" not in ids(lint_snippet(tmp_path, code))


class TestRegistrySyncRules:
    def _experiment_tree(self, tmp_path: Path, register_orphan: bool) -> Path:
        pkg = tmp_path / "repro" / "experiments"
        pkg.mkdir(parents=True)
        registered = "'orphan': orphan," if register_orphan else ""
        (pkg / "runner.py").write_text(
            textwrap.dedent(
                f"""
                __all__ = ["EXPERIMENTS"]
                from repro.experiments import fig1, orphan
                EXPERIMENTS = {{"fig1": fig1, {registered}}}
                """
            )
        )
        (pkg / "fig1.py").write_text("__all__ = []\n")
        (pkg / "orphan.py").write_text("__all__ = []\n")
        (pkg / "common.py").write_text("__all__ = []\n")
        return tmp_path

    def test_rp401_orphan_experiment(self, tmp_path):
        findings = lint_paths([self._experiment_tree(tmp_path, register_orphan=False)])
        orphans = [f for f in findings if f.rule_id == "RP401"]
        assert len(orphans) == 1 and "orphan" in orphans[0].message

    def test_rp401_registered_clean(self, tmp_path):
        findings = lint_paths([self._experiment_tree(tmp_path, register_orphan=True)])
        assert "RP401" not in ids(findings)

    def test_rp402_orphan_zoo_builder(self, tmp_path):
        pkg = tmp_path / "repro" / "zoo"
        pkg.mkdir(parents=True)
        (pkg / "registry.py").write_text(
            textwrap.dedent(
                """
                __all__ = ["NETWORKS"]
                from repro.zoo.lenet import build_lenet
                NETWORKS = {"LeNet": build_lenet}
                """
            )
        )
        (pkg / "lenet.py").write_text("__all__ = ['build_lenet']\ndef build_lenet():\n    pass\n")
        (pkg / "mystery.py").write_text("__all__ = ['build_mystery']\ndef build_mystery():\n    pass\n")
        findings = lint_paths([tmp_path])
        orphans = [f for f in findings if f.rule_id == "RP402"]
        assert len(orphans) == 1 and "build_mystery" in orphans[0].message


class TestApiHygieneRules:
    def test_rp501_missing_dunder_all(self, tmp_path):
        assert "RP501" in ids(lint_snippet(tmp_path, "def f():\n    pass\n"))

    def test_rp501_exemptions(self, tmp_path):
        assert "RP501" not in ids(lint_snippet(tmp_path, "x = 1\n", relpath="__main__.py"))
        assert "RP501" not in ids(lint_snippet(tmp_path, "x = 1\n", relpath="_private.py"))

    def test_rp502_stale_entry(self, tmp_path):
        findings = lint_snippet(tmp_path, "__all__ = ['ghost']\n")
        stale = [f for f in findings if f.rule_id == "RP502"]
        assert len(stale) == 1 and "ghost" in stale[0].message

    def test_rp502_conditional_import_counts(self, tmp_path):
        code = """
        __all__ = ["tomllib"]
        try:
            import tomllib
        except ImportError:
            import tomli as tomllib
        """
        assert "RP502" not in ids(lint_snippet(tmp_path, code))

    def test_rp503_unexported_public_def(self, tmp_path):
        code = """
        __all__ = ["listed"]
        def listed():
            pass
        def hidden():
            pass
        class Orphan:
            pass
        """
        findings = [f for f in lint_snippet(tmp_path, code) if f.rule_id == "RP503"]
        assert {("hidden" in f.message or "Orphan" in f.message) for f in findings} == {True}
        assert len(findings) == 2


class TestEngine:
    def test_parse_error_reported_not_fatal(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "fine.py").write_text("__all__ = []\nimport random\n")
        findings = lint_paths([tmp_path])
        assert PARSE_ERROR_ID in ids(findings)
        assert "RP102" in ids(findings)  # the broken file did not mask the good one

    def test_blanket_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(tmp_path, "__all__ = []\nimport random  # repro: noqa\n")
        assert "RP102" not in ids(findings)

    def test_targeted_noqa_suppresses_only_listed(self, tmp_path):
        code = """
        __all__ = []
        import random  # repro: noqa[RP102]
        ok = (x == 0.5)  # repro: noqa[RP101, RP201]
        bad = (y == 0.5)  # repro: noqa[RP102]
        """
        findings = lint_snippet(tmp_path, code)
        assert "RP102" not in ids(findings)
        assert len([f for f in findings if f.rule_id == "RP201"]) == 1

    def test_config_exclude(self, tmp_path):
        config = LintConfig(exclude=("skipme",))
        findings = lint_snippet(tmp_path, "import random\n", relpath="skipme/mod.py", config=config)
        assert findings == []

    def test_config_select_and_ignore(self, tmp_path):
        code = "import random\n"  # RP102 + RP501
        only_det = lint_snippet(tmp_path, code, config=LintConfig(select=("RP1",)))
        assert ids(only_det) == {"RP102"}
        no_det = lint_snippet(tmp_path, code, config=LintConfig(ignore=("RP102",)))
        assert ids(no_det) == {"RP501"}

    def test_path_matches_fragments(self):
        assert path_matches("src/repro/core/campaign.py", "repro/core")
        assert path_matches("src/repro/dtypes/fixedpoint.py", "repro/dtypes/fixedpoint.py")
        assert not path_matches("src/repro/core_utils.py", "repro/core")


class TestConfigLoading:
    def test_load_config_reads_repro_lint_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                exclude = ["vendored"]
                ignore = ["RP503"]
                campaign-paths = ["mypkg/campaigns"]
                """
            )
        )
        config = load_config(pyproject)
        assert config.exclude == ("vendored",)
        assert config.ignore == ("RP503",)
        assert config.campaign_paths == ("mypkg/campaigns",)
        # Unset keys keep library defaults.
        assert config.dtype_paths == ("repro/dtypes", "repro/nn")

    def test_load_config_unknown_key_raises(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\nbogus = []\n")
        with pytest.raises(KeyError):
            load_config(pyproject)

    def test_find_pyproject_walks_up(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == tmp_path / "pyproject.toml"


class TestReporters:
    def _findings(self):
        return [Finding(file="a.py", line=3, col=7, rule_id="RP101", message="msg")]

    def test_text_format(self):
        text = render_text(self._findings())
        assert "a.py:3:7: RP101 msg" in text
        assert text.endswith("1 finding")

    def test_json_round_trip_fields(self):
        doc = json.loads(render_json(self._findings()))
        assert doc["count"] == 1
        (entry,) = doc["findings"]
        assert entry["file"] == "a.py"
        assert entry["line"] == 3
        assert entry["rule_id"] == "RP101" == entry["rule-id"]
        assert entry["message"] == "msg"


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("__all__ = []\n")
        assert lint_main(["--no-config", str(clean)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_findings_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert lint_main(["--no-config", "--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] >= 1
        assert {"file", "line", "col", "rule_id", "rule-id", "message"} <= set(doc["findings"][0])

    def test_select_flag(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert lint_main(["--no-config", "--select", "RP5", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RP501" in out and "RP102" not in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["--no-config", "does-not-exist-anywhere"]) == 2
        assert "error" in capsys.readouterr().err


class TestFlowTaint:
    """RP601: flows a syntactic rule cannot see (see --explain RP601)."""

    def test_clock_through_helper_reaches_seed_sink(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/helpers.py": """
            __all__ = ["fresh_token"]
            import time

            def fresh_token():
                stamp = time.time()
                return stamp
            """,
            "pkg/run.py": """
            __all__ = ["main"]
            from pkg.helpers import fresh_token

            def main(rng):
                token = fresh_token()
                return rng.spawn_rngs(token)
            """,
        })
        flagged = by_rule(findings, "RP601")
        assert flagged, findings
        (finding,) = flagged
        assert finding.file.endswith("run.py")
        # The trace walks source -> assignment -> cross-file return -> sink,
        # with a concrete file/line for every hop.
        notes = [hop.note for hop in finding.trace]
        assert any("time.time()" in note for note in notes)
        assert any("returned" in note for note in notes)
        assert any("spawn_rngs" in note for note in notes)
        assert {hop.file.rsplit("/", 1)[-1] for hop in finding.trace} == {"helpers.py", "run.py"}
        assert all(hop.line >= 1 and hop.col >= 1 for hop in finding.trace)

    def test_seed_keyword_is_a_sink_anywhere(self, tmp_path):
        findings = lint_snippet(tmp_path, """
        __all__ = ["main"]
        import time

        def main(rig):
            t = time.time()
            return rig.configure(seed=t)
        """)
        assert "RP601" in ids(findings)

    def test_fs_order_sanitized_by_sorted(self, tmp_path):
        dirty = lint_snippet(tmp_path, """
        __all__ = ["fingerprint_inputs"]
        import os

        def fingerprint_inputs(h, root):
            names = os.listdir(root)
            return h.fingerprint(names)
        """)
        clean = lint_snippet(tmp_path, """
        __all__ = ["fingerprint_inputs"]
        import os

        def fingerprint_inputs(h, root):
            names = sorted(os.listdir(root))
            return h.fingerprint(names)
        """, relpath="clean.py")
        assert "RP601" in ids(dirty)
        assert "RP601" not in ids(clean)

    def test_rebinding_with_clean_value_clears_taint(self, tmp_path):
        findings = lint_snippet(tmp_path, """
        __all__ = ["main"]
        import time

        def main(rig):
            t = time.time()
            t = 0
            return rig.configure(seed=t)
        """)
        assert "RP601" not in ids(findings)

    def test_constant_seed_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, """
        __all__ = ["main"]

        def main(rig):
            return rig.configure(seed=1234)
        """)
        assert "RP601" not in ids(findings)

    def test_taint_through_callee_parameter_sink(self, tmp_path):
        # The sink is inside a helper; taint enters through its parameter.
        findings = lint_snippet(tmp_path, """
        __all__ = ["derive", "main"]
        import time

        def derive(rng, value):
            return rng.spawn_rngs(value)

        def main(rng):
            now = time.time()
            return derive(rng, now)
        """)
        flagged = by_rule(findings, "RP601")
        assert flagged
        # Reported at the call in main() that feeds the tainted argument.
        assert any("passed into derive()" in hop.note for f in flagged for hop in f.trace)


class TestFlowDtype:
    """RP611/RP612: dtype flows into the int-input codec boundary."""

    def test_rp611_default_float64_reaches_decode(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/bufs.py": """
            __all__ = ["make_bits"]
            import numpy as np

            def make_bits():
                bits = np.zeros(16)
                return bits
            """,
            "pkg/use.py": """
            __all__ = ["decode_all"]
            from pkg.bufs import make_bits

            def decode_all(codec):
                bits = make_bits()
                return codec.decode(bits)
            """,
        })
        flagged = by_rule(findings, "RP611")
        assert flagged, findings
        (finding,) = flagged
        assert finding.file.endswith("use.py")
        assert any("float64 default" in hop.note for hop in finding.trace)
        assert any("decode" in hop.note for hop in finding.trace)

    def test_rp611_astype_sanitizes(self, tmp_path):
        findings = lint_snippet(tmp_path, """
        __all__ = ["decode_all"]
        import numpy as np

        def decode_all(codec):
            bits = np.zeros(16).astype("uint16")
            return codec.decode(bits)
        """)
        assert "RP611" not in ids(findings)

    def test_rp611_int_literal_array_is_not_float64(self, tmp_path):
        findings = lint_snippet(tmp_path, """
        __all__ = ["decode_one"]
        import numpy as np

        def decode_one(codec):
            return codec.decode(np.array([0x8000]))
        """)
        assert "RP611" not in ids(findings)

    def test_rp612_bare_float_promotion_reaches_from_int(self, tmp_path):
        findings = lint_snippet(tmp_path, """
        __all__ = ["run"]
        import numpy as np

        def run(codec):
            acc = np.zeros(8, dtype=np.int32)
            acc = acc * 0.5
            return codec.from_int(acc)
        """)
        flagged = by_rule(findings, "RP612")
        assert flagged, findings
        assert any("bare Python float" in hop.note for f in flagged for hop in f.trace)

    def test_rp612_int_scalar_arith_is_clean(self, tmp_path):
        findings = lint_snippet(tmp_path, """
        __all__ = ["run"]
        import numpy as np

        def run(codec):
            acc = np.zeros(8, dtype=np.int32)
            acc = acc * 2
            return codec.from_int(acc)
        """)
        assert "RP612" not in ids(findings)


class TestFlowFork:
    """RP621/RP622: bugs that only exist across the process boundary."""

    def _pool_tree(self, mutate: str) -> dict[str, str]:
        return {
            "pkg/state.py": """
            __all__ = ["CACHE"]
            CACHE = {}
            """,
            "pkg/pool.py": f"""
            __all__ = ["helper"]
            from pkg.state import CACHE

            def _init_worker(task):
                helper(task)

            def helper(task):
                {mutate}
            """,
        }

    def test_rp621_cross_module_write_reachable_from_worker(self, tmp_path):
        findings = lint_tree(tmp_path, self._pool_tree('CACHE["t"] = task'))
        flagged = by_rule(findings, "RP621")
        assert flagged, findings
        (finding,) = flagged
        notes = [hop.note for hop in finding.trace]
        assert any("entry point _init_worker()" in note for note in notes)
        assert any("_init_worker() calls helper()" in note for note in notes)
        assert any("defined here" in note for note in notes)
        assert notes[-1] == "written here inside a forked worker"

    def test_rp621_mutator_method_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, self._pool_tree("CACHE.update(task)"))
        assert "RP621" in ids(findings)

    def test_rp621_local_shadow_clean(self, tmp_path):
        findings = lint_tree(tmp_path, self._pool_tree('CACHE = {}; CACHE["t"] = task'))
        assert "RP621" not in ids(findings)

    def test_rp621_unreachable_function_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/state.py": """
            __all__ = ["CACHE"]
            CACHE = {}
            """,
            "pkg/other.py": """
            __all__ = ["not_a_worker"]
            from pkg.state import CACHE

            def not_a_worker(task):
                CACHE["t"] = task
            """,
        })
        assert "RP621" not in ids(findings)

    def test_rp622_temp_from_factory_never_published(self, tmp_path):
        code = (  # repro: noqa[RP302] — fixture string mentions tmp/getpid
            """
        __all__ = ["make_temp", "save"]
        import os

        def make_temp(path):
            staging = str(path) + ".tmp." + str(os.getpid())
            return staging

        def save(path, data):
            out = make_temp(path)
            with open(out, "w") as fh:
                fh.write(data)
        """
        )
        findings = lint_snippet(tmp_path, code)
        flagged = by_rule(findings, "RP622")
        assert flagged, findings
        (finding,) = flagged
        notes = [hop.note for hop in finding.trace]
        assert notes[0] == "temp path created here"
        assert any("returned to caller" in note for note in notes)
        assert any("never published" in note for note in notes)

    def test_rp622_published_call_site_clean(self, tmp_path):
        code = (  # repro: noqa[RP302] — fixture string mentions tmp/getpid
            """
        __all__ = ["make_temp", "save"]
        import os

        def make_temp(path):
            staging = str(path) + ".tmp." + str(os.getpid())
            return staging

        def save(path, data):
            out = make_temp(path)
            with open(out, "w") as fh:
                fh.write(data)
            os.replace(out, path)
        """
        )
        findings = lint_snippet(tmp_path, code)
        assert "RP622" not in ids(findings)


class TestFlowReportingAndSuppression:
    """Traces in both reporters, family noqa, RP000 interplay."""

    _BUG = """
    __all__ = ["main"]
    import time

    def main(rig):
        t = time.time()
        return rig.configure(seed=t)
    """

    def test_trace_rendered_by_text_reporter(self, tmp_path):
        findings = lint_snippet(tmp_path, self._BUG)
        text = render_text(by_rule(findings, "RP601"))
        assert "flow:" in text
        assert "source: time.time()" in text

    def test_trace_in_json_reporter_with_stable_keys(self, tmp_path):
        findings = lint_snippet(tmp_path, self._BUG)
        raw = render_json(by_rule(findings, "RP601"))
        # Both spellings of the rule-id key survive alongside the trace.
        assert '"rule_id"' in raw and '"rule-id"' in raw
        doc = json.loads(raw)
        (entry,) = doc["findings"]
        assert entry["rule_id"] == "RP601" == entry["rule-id"]
        assert entry["trace"], "flow finding must carry a machine-readable trace"
        for hop in entry["trace"]:
            assert set(hop) == {"file", "line", "col", "note"}
        assert any(h["note"] == "source: time.time()" for h in entry["trace"])

    def test_trace_does_not_perturb_equality_or_order(self):
        from repro.analysis.findings import TraceHop

        bare = Finding(file="a.py", line=1, col=1, rule_id="RP601", message="m")
        traced = Finding(
            file="a.py", line=1, col=1, rule_id="RP601", message="m",
            trace=(TraceHop(file="a.py", line=1, col=1, note="source"),),
        )
        assert bare == traced
        assert sorted([traced, bare]) == [traced, bare]

    @pytest.mark.parametrize("token", ["RP601", "RP6", "RP60", "RP6xx"])
    def test_family_prefix_noqa_suppresses(self, tmp_path, token):
        code = self._BUG.replace(
            "return rig.configure(seed=t)",
            f"return rig.configure(seed=t)  # repro: noqa[{token}]",
        )
        assert "RP601" not in ids(lint_snippet(tmp_path, code))

    def test_other_family_noqa_does_not_suppress(self, tmp_path):
        code = self._BUG.replace(
            "return rig.configure(seed=t)",
            "return rig.configure(seed=t)  # repro: noqa[RP1]",
        )
        assert "RP601" in ids(lint_snippet(tmp_path, code))

    def test_parse_error_does_not_hide_flow_findings(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/broken.py": "def broken(:\n",
            "pkg/bug.py": self._BUG,
        })
        assert PARSE_ERROR_ID in ids(findings)
        assert "RP601" in ids(findings)


class TestExplainCli:
    def test_explain_flow_rule_documents_trace(self, capsys):
        assert lint_main(["--explain", "RP601"]) == 0
        out = capsys.readouterr().out
        assert "RP601 nondeterminism-taint" in out
        assert "flow:" in out  # the example source->sink trace
        assert "Sources" in out and "Sinks" in out

    def test_explain_syntactic_rule(self, capsys):
        assert lint_main(["--explain", "rp104"]) == 0
        out = capsys.readouterr().out
        assert "RP104" in out and "backoff" in out

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert lint_main(["--explain", "RP999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestRepoSelfCheck:
    def test_repo_is_lint_clean(self):
        """The acceptance gate: the whole checkout reports zero findings."""
        config = load_config(REPO_ROOT / "pyproject.toml")
        paths = [
            REPO_ROOT / sub
            for sub in ("src", "tests", "benchmarks", "examples")
            if (REPO_ROOT / sub).is_dir()
        ]
        findings = lint_paths(paths, config=config, root=REPO_ROOT)
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

    def test_cli_self_check_exit_zero(self, capsys):
        code = lint_main(["--config", str(REPO_ROOT / "pyproject.toml"), str(REPO_ROOT / "src")])
        capsys.readouterr()
        assert code == 0

    def test_seed_race_pattern_is_caught(self, tmp_path):
        """The exact store.py bug class this PR fixed must stay flagged."""
        snippet = """
        __all__ = ["save_params"]
        import numpy as np

        def save_params(path, arrays):
            tmp = path.with_suffix(".tmp.npz")
            np.savez_compressed(tmp, **arrays)
            tmp.replace(path)
        """
        findings = lint_snippet(tmp_path, snippet, relpath="repro/zoo/store.py")
        assert "RP301" in ids(findings)
