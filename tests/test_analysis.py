"""repro.analysis (repro-lint): rule fixtures, suppressions, config, CLI.

Each RPnnn rule gets a minimal triggering snippet plus a negative case;
path-scoped rules are exercised through fixture trees that mimic the
package layout (``repro/dtypes/...``).  The suite ends with the repo
self-check: ``repro-lint src/`` must report zero findings.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    all_rules,
    get_rule,
    lint_paths,
    load_config,
    render_json,
    render_text,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.config import find_pyproject, path_matches
from repro.analysis.findings import PARSE_ERROR_ID
from repro.analysis.registry import expand_ids

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(
    tmp_path: Path,
    code: str,
    relpath: str = "mod.py",
    config: LintConfig | None = None,
) -> list[Finding]:
    """Write ``code`` at ``tmp_path/relpath`` and lint just that file."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return lint_paths([target], config=config)


def ids(findings: list[Finding]) -> set[str]:
    return {f.rule_id for f in findings}


class TestRegistry:
    def test_all_rule_families_present(self):
        families = {rule.id[:3] for rule in all_rules()}
        assert families == {"RP1", "RP2", "RP3", "RP4", "RP5"}

    def test_ids_are_stable_and_unique(self):
        rule_ids = [rule.id for rule in all_rules()]
        assert len(rule_ids) == len(set(rule_ids))
        assert {"RP101", "RP102", "RP103", "RP104", "RP105", "RP201", "RP202", "RP203",
                "RP301", "RP302", "RP401", "RP402", "RP501", "RP502", "RP503"} <= set(rule_ids)

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("RP999")

    def test_expand_family_selector(self):
        assert expand_ids(["RP1"]) == {"RP101", "RP102", "RP103", "RP104", "RP105"}
        assert expand_ids(["RP3xx"]) == {"RP301", "RP302"}
        with pytest.raises(KeyError):
            expand_ids(["RP9"])


class TestDeterminismRules:
    def test_rp101_legacy_numpy_random(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = []
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(4)
            """,
        )
        assert [f.rule_id for f in findings if f.rule_id == "RP101"] == ["RP101", "RP101"]

    def test_rp101_from_import(self, tmp_path):
        findings = lint_snippet(tmp_path, "__all__ = []\nfrom numpy.random import randn\n")
        assert "RP101" in ids(findings)

    def test_rp101_new_generator_api_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = []
            import numpy as np
            rng = np.random.default_rng(np.random.SeedSequence(entropy=7))
            """,
        )
        assert "RP101" not in ids(findings)

    def test_rp102_stdlib_random(self, tmp_path):
        assert "RP102" in ids(lint_snippet(tmp_path, "__all__ = []\nimport random\n"))
        assert "RP102" in ids(lint_snippet(tmp_path, "__all__ = []\nfrom random import choice\n"))

    def test_rp103_wall_clock_scoped_to_campaign_paths(self, tmp_path):
        code = """
        __all__ = []
        import time
        t = time.time()
        """
        inside = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        outside = lint_snippet(tmp_path, code, relpath="repro/zoo/mod.py")
        assert "RP103" in ids(inside)
        assert "RP103" not in ids(outside)

    def test_rp103_monotonic_timer_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "__all__ = []\nimport time\nt = time.perf_counter()\n",
            relpath="repro/core/mod.py",
        )
        assert "RP103" not in ids(findings)

    def test_rp104_sleep_scoped_to_campaign_paths(self, tmp_path):
        code = """
        __all__ = []
        import time

        def backoff():
            time.sleep(0.5)
        """
        inside = lint_snippet(tmp_path, code, relpath="repro/utils/parallel.py")
        outside = lint_snippet(tmp_path, code, relpath="repro/zoo/mod.py")
        assert "RP104" in ids(inside)
        assert "RP104" not in ids(outside)

    def test_rp104_noqa_exemption(self, tmp_path):
        code = """
        __all__ = []
        import time

        def backoff(delay):
            time.sleep(delay)  # repro: noqa[RP104]
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP104" not in ids(findings)


class TestObservabilityRules:
    def test_rp105_bare_print_in_library(self, tmp_path):
        code = """
        __all__ = []

        def helper(x):
            print("debug", x)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP105" in ids(findings)

    def test_rp105_exempt_paths_skip_cli_and_reporter(self, tmp_path):
        code = """
        __all__ = []

        def main():
            print("usage: ...")
        """
        for relpath in ("repro/core/cli.py", "repro/obs/progress.py"):
            findings = lint_snippet(tmp_path, code, relpath=relpath)
            assert "RP105" not in ids(findings), relpath

    def test_rp105_outside_library_scope_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "__all__ = []\nprint('hi')\n", relpath="scripts/tool.py"
        )
        assert "RP105" not in ids(findings)

    def test_rp105_shadowed_print_method_clean(self, tmp_path):
        code = """
        __all__ = []

        def render(doc):
            doc.print()
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP105" not in ids(findings)

    def test_rp105_noqa_exemption(self, tmp_path):
        code = """
        __all__ = []

        def helper(x):
            print(x)  # repro: noqa[RP105]
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/core/mod.py")
        assert "RP105" not in ids(findings)

    def test_rp105_custom_exempt_config(self, tmp_path):
        from repro.analysis.config import LintConfig

        code = """
        __all__ = []
        print("banner")
        """
        cfg = LintConfig(print_exempt_paths=("repro/custom/banner.py",))
        findings = lint_snippet(tmp_path, code, relpath="repro/custom/banner.py", config=cfg)
        assert "RP105" not in ids(findings)

    def test_repo_source_tree_is_rp105_clean(self):
        src = Path(__file__).resolve().parents[1] / "src"
        findings = [f for f in lint_paths([src]) if f.rule_id == "RP105"]
        assert findings == []


class TestDtypeRules:
    def test_rp201_float_literal_equality(self, tmp_path):
        findings = lint_snippet(tmp_path, "__all__ = []\nok = (x == 0.5)\n")
        assert "RP201" in ids(findings)

    def test_rp201_nonfinite_and_negative(self, tmp_path):
        code = """
        __all__ = []
        import numpy as np
        a = x != np.inf
        b = y == -1.0
        """
        findings = [f for f in lint_snippet(tmp_path, code) if f.rule_id == "RP201"]
        assert len(findings) == 2

    def test_rp201_int_equality_clean(self, tmp_path):
        assert "RP201" not in ids(lint_snippet(tmp_path, "__all__ = []\nok = (x == 3)\n"))

    def test_rp202_missing_dtype_in_scope(self, tmp_path):
        code = """
        __all__ = []
        import numpy as np
        a = np.zeros((3, 3))
        b = np.array([1.0, 2.0])
        """
        inside = lint_snippet(tmp_path, code, relpath="repro/dtypes/mod.py")
        outside = lint_snippet(tmp_path, code, relpath="repro/zoo/mod.py")
        assert len([f for f in inside if f.rule_id == "RP202"]) == 2
        assert "RP202" not in ids(outside)

    def test_rp202_explicit_dtype_and_copy_clean(self, tmp_path):
        code = """
        __all__ = []
        import numpy as np
        a = np.zeros((3, 3), dtype=np.int64)
        b = np.array(a)
        """
        findings = lint_snippet(tmp_path, code, relpath="repro/nn/mod.py")
        assert "RP202" not in ids(findings)

    def test_rp203_bare_float_in_kernel(self, tmp_path):
        code = """
        __all__ = []
        def quantize(x, scale):
            y = x * 0.5
            y += 1.0
            return y
        """
        config = LintConfig(kernel_paths=("repro/dtypes/fixedpoint.py",))
        inside = lint_snippet(tmp_path, code, relpath="repro/dtypes/fixedpoint.py", config=config)
        outside = lint_snippet(tmp_path, code, relpath="repro/dtypes/base.py", config=config)
        assert len([f for f in inside if f.rule_id == "RP203"]) == 2
        assert "RP203" not in ids(outside)


class TestAtomicityRule:
    SHARED_TMP = """
    __all__ = []
    import os

    def save(path):
        tmp = path.with_suffix(".tmp.npz")
        write(tmp)
        tmp.replace(path)
    """

    def test_rp301_shared_temp_flagged(self, tmp_path):
        assert "RP301" in ids(lint_snippet(tmp_path, self.SHARED_TMP))

    def test_rp301_os_replace_form_flagged(self, tmp_path):
        code = """
        __all__ = []
        import os

        def save(path):
            tmp = str(path) + ".tmp"
            write(tmp)
            os.replace(tmp, path)
        """
        assert "RP301" in ids(lint_snippet(tmp_path, code))

    def test_rp301_pid_unique_temp_clean(self, tmp_path):
        code = """
        __all__ = []
        import os

        def save(path):
            tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp.npz")
            write(tmp)
            tmp.replace(path)
        """
        assert "RP301" not in ids(lint_snippet(tmp_path, code))

    def test_rp302_unique_temp_without_publish(self, tmp_path):
        code = """
        __all__ = []
        import os

        def save(path, data):
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(data)
        """
        assert "RP302" in ids(lint_snippet(tmp_path, code))

    def test_rp302_published_temp_clean(self, tmp_path):
        code = """
        __all__ = []
        import os

        def save(path, data):
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(data)
            os.replace(tmp, path)
        """
        assert "RP302" not in ids(lint_snippet(tmp_path, code))


class TestRegistrySyncRules:
    def _experiment_tree(self, tmp_path: Path, register_orphan: bool) -> Path:
        pkg = tmp_path / "repro" / "experiments"
        pkg.mkdir(parents=True)
        registered = "'orphan': orphan," if register_orphan else ""
        (pkg / "runner.py").write_text(
            textwrap.dedent(
                f"""
                __all__ = ["EXPERIMENTS"]
                from repro.experiments import fig1, orphan
                EXPERIMENTS = {{"fig1": fig1, {registered}}}
                """
            )
        )
        (pkg / "fig1.py").write_text("__all__ = []\n")
        (pkg / "orphan.py").write_text("__all__ = []\n")
        (pkg / "common.py").write_text("__all__ = []\n")
        return tmp_path

    def test_rp401_orphan_experiment(self, tmp_path):
        findings = lint_paths([self._experiment_tree(tmp_path, register_orphan=False)])
        orphans = [f for f in findings if f.rule_id == "RP401"]
        assert len(orphans) == 1 and "orphan" in orphans[0].message

    def test_rp401_registered_clean(self, tmp_path):
        findings = lint_paths([self._experiment_tree(tmp_path, register_orphan=True)])
        assert "RP401" not in ids(findings)

    def test_rp402_orphan_zoo_builder(self, tmp_path):
        pkg = tmp_path / "repro" / "zoo"
        pkg.mkdir(parents=True)
        (pkg / "registry.py").write_text(
            textwrap.dedent(
                """
                __all__ = ["NETWORKS"]
                from repro.zoo.lenet import build_lenet
                NETWORKS = {"LeNet": build_lenet}
                """
            )
        )
        (pkg / "lenet.py").write_text("__all__ = ['build_lenet']\ndef build_lenet():\n    pass\n")
        (pkg / "mystery.py").write_text("__all__ = ['build_mystery']\ndef build_mystery():\n    pass\n")
        findings = lint_paths([tmp_path])
        orphans = [f for f in findings if f.rule_id == "RP402"]
        assert len(orphans) == 1 and "build_mystery" in orphans[0].message


class TestApiHygieneRules:
    def test_rp501_missing_dunder_all(self, tmp_path):
        assert "RP501" in ids(lint_snippet(tmp_path, "def f():\n    pass\n"))

    def test_rp501_exemptions(self, tmp_path):
        assert "RP501" not in ids(lint_snippet(tmp_path, "x = 1\n", relpath="__main__.py"))
        assert "RP501" not in ids(lint_snippet(tmp_path, "x = 1\n", relpath="_private.py"))

    def test_rp502_stale_entry(self, tmp_path):
        findings = lint_snippet(tmp_path, "__all__ = ['ghost']\n")
        stale = [f for f in findings if f.rule_id == "RP502"]
        assert len(stale) == 1 and "ghost" in stale[0].message

    def test_rp502_conditional_import_counts(self, tmp_path):
        code = """
        __all__ = ["tomllib"]
        try:
            import tomllib
        except ImportError:
            import tomli as tomllib
        """
        assert "RP502" not in ids(lint_snippet(tmp_path, code))

    def test_rp503_unexported_public_def(self, tmp_path):
        code = """
        __all__ = ["listed"]
        def listed():
            pass
        def hidden():
            pass
        class Orphan:
            pass
        """
        findings = [f for f in lint_snippet(tmp_path, code) if f.rule_id == "RP503"]
        assert {("hidden" in f.message or "Orphan" in f.message) for f in findings} == {True}
        assert len(findings) == 2


class TestEngine:
    def test_parse_error_reported_not_fatal(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "fine.py").write_text("__all__ = []\nimport random\n")
        findings = lint_paths([tmp_path])
        assert PARSE_ERROR_ID in ids(findings)
        assert "RP102" in ids(findings)  # the broken file did not mask the good one

    def test_blanket_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(tmp_path, "__all__ = []\nimport random  # repro: noqa\n")
        assert "RP102" not in ids(findings)

    def test_targeted_noqa_suppresses_only_listed(self, tmp_path):
        code = """
        __all__ = []
        import random  # repro: noqa[RP102]
        ok = (x == 0.5)  # repro: noqa[RP101, RP201]
        bad = (y == 0.5)  # repro: noqa[RP102]
        """
        findings = lint_snippet(tmp_path, code)
        assert "RP102" not in ids(findings)
        assert len([f for f in findings if f.rule_id == "RP201"]) == 1

    def test_config_exclude(self, tmp_path):
        config = LintConfig(exclude=("skipme",))
        findings = lint_snippet(tmp_path, "import random\n", relpath="skipme/mod.py", config=config)
        assert findings == []

    def test_config_select_and_ignore(self, tmp_path):
        code = "import random\n"  # RP102 + RP501
        only_det = lint_snippet(tmp_path, code, config=LintConfig(select=("RP1",)))
        assert ids(only_det) == {"RP102"}
        no_det = lint_snippet(tmp_path, code, config=LintConfig(ignore=("RP102",)))
        assert ids(no_det) == {"RP501"}

    def test_path_matches_fragments(self):
        assert path_matches("src/repro/core/campaign.py", "repro/core")
        assert path_matches("src/repro/dtypes/fixedpoint.py", "repro/dtypes/fixedpoint.py")
        assert not path_matches("src/repro/core_utils.py", "repro/core")


class TestConfigLoading:
    def test_load_config_reads_repro_lint_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                exclude = ["vendored"]
                ignore = ["RP503"]
                campaign-paths = ["mypkg/campaigns"]
                """
            )
        )
        config = load_config(pyproject)
        assert config.exclude == ("vendored",)
        assert config.ignore == ("RP503",)
        assert config.campaign_paths == ("mypkg/campaigns",)
        # Unset keys keep library defaults.
        assert config.dtype_paths == ("repro/dtypes", "repro/nn")

    def test_load_config_unknown_key_raises(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\nbogus = []\n")
        with pytest.raises(KeyError):
            load_config(pyproject)

    def test_find_pyproject_walks_up(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == tmp_path / "pyproject.toml"


class TestReporters:
    def _findings(self):
        return [Finding(file="a.py", line=3, col=7, rule_id="RP101", message="msg")]

    def test_text_format(self):
        text = render_text(self._findings())
        assert "a.py:3:7: RP101 msg" in text
        assert text.endswith("1 finding")

    def test_json_round_trip_fields(self):
        doc = json.loads(render_json(self._findings()))
        assert doc["count"] == 1
        (entry,) = doc["findings"]
        assert entry["file"] == "a.py"
        assert entry["line"] == 3
        assert entry["rule_id"] == "RP101" == entry["rule-id"]
        assert entry["message"] == "msg"


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("__all__ = []\n")
        assert lint_main(["--no-config", str(clean)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_findings_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert lint_main(["--no-config", "--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] >= 1
        assert {"file", "line", "col", "rule_id", "rule-id", "message"} <= set(doc["findings"][0])

    def test_select_flag(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert lint_main(["--no-config", "--select", "RP5", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RP501" in out and "RP102" not in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["--no-config", "does-not-exist-anywhere"]) == 2
        assert "error" in capsys.readouterr().err


class TestRepoSelfCheck:
    def test_repo_is_lint_clean(self):
        """The acceptance gate: repro-lint src/ reports zero findings."""
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config=config, root=REPO_ROOT)
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

    def test_cli_self_check_exit_zero(self, capsys):
        code = lint_main(["--config", str(REPO_ROOT / "pyproject.toml"), str(REPO_ROOT / "src")])
        capsys.readouterr()
        assert code == 0

    def test_seed_race_pattern_is_caught(self, tmp_path):
        """The exact store.py bug class this PR fixed must stay flagged."""
        snippet = """
        __all__ = ["save_params"]
        import numpy as np

        def save_params(path, arrays):
            tmp = path.with_suffix(".tmp.npz")
            np.savez_compressed(tmp, **arrays)
            tmp.replace(path)
        """
        findings = lint_snippet(tmp_path, snippet, relpath="repro/zoo/store.py")
        assert "RP301" in ids(findings)
