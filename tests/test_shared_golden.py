"""Shared-memory golden state + Wilson-CI early stopping.

Two campaign-identity extensions ride the same contract: trial outcomes
(and skip decisions) are a pure function of ``(spec, trial index)``.
These tests pin the byte-identity of campaign summaries across the
shared-golden execution paths (worker pools attaching read-only views,
inline attach, batched propagation, kill/resume), the immutability of
the published golden buffers, the segment lifecycle (creators never
attach, releases are idempotent, nothing leaks into ``/dev/shm``), and
the determinism of the early-stopping rule at fixed trial-index
boundaries.
"""

from __future__ import annotations

import glob
import json

import numpy as np
import pytest

from repro.core.campaign import CampaignSpec, _CampaignTask, run_campaign
from repro.core.serialize import campaign_summary
from repro.core.sharedgolden import (
    _create_segment,
    attach_golden_state,
    publish_golden_state,
    release_segment,
)
from repro.zoo.registry import get_network

SPEC = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=24, seed=9)
DETECT_SPEC = CampaignSpec(
    network="ConvNet", dtype="FLOAT16", n_trials=24, seed=9,
    with_detection=True, detector_kind="sed",
)
STOP_SPEC = CampaignSpec(
    network="ConvNet", dtype="FLOAT16", n_trials=200, seed=3,
    target_halfwidth=0.18, stop_stratify="site", stop_check_every=16,
)


def _summary(result) -> dict:
    summary = campaign_summary(result)
    summary.pop("execution")  # harness counters, not physics
    return json.loads(json.dumps(summary, sort_keys=True))


def _segments() -> set[str]:
    return set(glob.glob("/dev/shm/repro-golden-*"))


class TestSharedGoldenParity:
    def test_byte_identity_across_execution_modes(self):
        before = _segments()
        baseline = _summary(run_campaign(SPEC))
        assert _summary(run_campaign(SPEC, jobs=2)) == baseline  # shm auto-on
        assert _summary(run_campaign(SPEC, jobs=1, shared_golden=True)) == baseline
        assert _summary(run_campaign(SPEC, jobs=2, batch=16, shared_golden=True)) == baseline
        assert _segments() == before, "campaign leaked a shared segment"

    def test_detector_travels_in_descriptor(self):
        baseline = _summary(run_campaign(DETECT_SPEC))
        shared = _summary(run_campaign(DETECT_SPEC, jobs=2, shared_golden=True))
        assert shared == baseline
        assert "detection" in baseline

    def test_manifest_records_shared_golden_mode(self, tmp_path):
        manifest = tmp_path / "run.manifest.json"
        run_campaign(SPEC, jobs=2, shared_golden=True, manifest=manifest)
        assert json.loads(manifest.read_text())["run"]["shared_golden"] is True
        run_campaign(SPEC, manifest=manifest)
        assert json.loads(manifest.read_text())["run"]["shared_golden"] is False


class TestGoldenImmutability:
    def test_attached_views_are_read_only(self):
        proto = _CampaignTask(SPEC)
        descriptor, shm = publish_golden_state(proto)
        try:
            view = attach_golden_state(descriptor)
            golden = view.goldens[0]
            with pytest.raises(ValueError):
                golden.scores[0] = 0.0
            with pytest.raises(ValueError):
                golden.activations[0][...] = 0.0
            for _li, _dtype, wspec, _bspec in descriptor.weights[:1]:
                from repro.core.sharedgolden import _view

                with pytest.raises(ValueError):
                    _view(view.shm, wspec, writeable=False)[...] = 0.0
            view.close()
        finally:
            release_segment(shm)

    def test_golden_bits_survive_a_shared_campaign(self):
        proto = _CampaignTask(SPEC)
        golden_bits = [g.scores.copy() for g in proto.goldens]
        run_campaign(SPEC, jobs=2, shared_golden=True)
        after = _CampaignTask(SPEC)
        for before, golden in zip(golden_bits, after.goldens):
            np.testing.assert_array_equal(before, golden.scores)

    def test_install_weights_keeps_warm_private_cache(self):
        """Forked workers inherit warm quantized weights; segment views
        must not shadow them — purging views at close would otherwise
        throw away quantization work the process already paid for."""
        proto = _CampaignTask(SPEC)  # warms the memoized network's cache
        network = get_network(SPEC.network, SPEC.scale)
        li = network.mac_layer_indices()[0]
        warm = network.layers[li].cached_quantized_weights()
        assert warm, "expected a warmed weight cache"
        descriptor, shm = publish_golden_state(proto)
        try:
            view = attach_golden_state(descriptor)
            view.install_weights(network)
            assert view.installed == []  # every format was already cached
            view.close()
            still = network.layers[li].cached_quantized_weights()
            for dtype_name, (w, _b) in warm.items():
                assert still[dtype_name][0] is w
        finally:
            release_segment(shm)


class TestSegmentLifecycle:
    def test_creator_retries_instead_of_attaching(self):
        """A name collision must never adopt a stale segment's bytes."""
        stale = _create_segment(64)
        try:
            stale.buf[:4] = b"\xde\xad\xbe\xef"
            fresh = _create_segment(64)
            try:
                assert fresh.name != stale.name
                assert bytes(fresh.buf[:4]) == b"\x00\x00\x00\x00"
                assert bytes(stale.buf[:4]) == b"\xde\xad\xbe\xef"
            finally:
                release_segment(fresh)
        finally:
            release_segment(stale)

    def test_release_segment_is_idempotent(self):
        shm = _create_segment(64)
        release_segment(shm)
        release_segment(shm)  # double release: absorbed
        release_segment(None)  # no segment at all: absorbed

    def test_aborted_campaign_unlinks_its_segment(self, monkeypatch):
        from repro.core.campaign import CampaignAbortedError

        before = _segments()
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "raise:*:1.0")
        with pytest.raises(CampaignAbortedError):
            run_campaign(SPEC, jobs=2, shared_golden=True, max_error_frac=0.0)
        assert _segments() == before


class TestEarlyStopping:
    def test_overall_stop_at_fixed_boundary(self):
        spec = CampaignSpec(
            network="ConvNet", dtype="FLOAT16", n_trials=120, seed=3,
            target_halfwidth=0.2, stop_check_every=16,
        )
        result = run_campaign(spec)
        assert result.stopped_at is not None
        assert result.stopped_at % spec.stop_check_every == 0
        assert len(result.records) == result.stopped_at
        summary = campaign_summary(result)
        assert summary["early_stop"]["stopped_at"] == result.stopped_at
        assert summary["early_stop"]["sampled"] == len(result.records)

    def test_stratified_skips_and_counters(self):
        result = run_campaign(STOP_SPEC)
        assert result.skips, "site stratification should close strata at different times"
        counters = result.metrics["counters"]
        assert counters["early_stop/skipped"] == len(result.skips)
        by_site = {}
        for skip in result.skips:
            by_site[skip.site] = by_site.get(skip.site, 0) + 1
        for site, n in by_site.items():
            assert counters[f"early_stop/skipped/{site}"] == n

    def test_parity_across_jobs_shm_and_batch(self):
        baseline = _summary(run_campaign(STOP_SPEC))
        shared = run_campaign(STOP_SPEC, jobs=2, batch=8, shared_golden=True)
        assert _summary(shared) == baseline

    def test_halfwidth_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=8,
                         target_halfwidth=0.7)
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=8,
                         target_halfwidth=0.1, stop_stratify="latch")

    def test_resume_replays_stop_decisions(self, tmp_path):
        """Kill at ~50% (truncated checkpoint), resume under jobs+shm:
        skip decisions and the stop boundary replay bit-identically."""
        ref_ck = tmp_path / "ref.jsonl"
        reference = run_campaign(STOP_SPEC, checkpoint=ref_ck)
        lines = ref_ck.read_text().splitlines()
        header, entries = lines[0], lines[1:]
        half_ck = tmp_path / "half.jsonl"
        half_ck.write_text("\n".join([header] + entries[: len(entries) // 2]) + "\n")

        resumed = run_campaign(
            STOP_SPEC, checkpoint=half_ck, resume=True, jobs=2, shared_golden=True
        )
        assert _summary(resumed) == _summary(reference)
        assert resumed.stopped_at == reference.stopped_at
        assert [(s.index, s.site) for s in resumed.skips] == \
            [(s.index, s.site) for s in reference.skips]
        assert resumed.stats.resumed > 0

    def test_fully_resumed_campaign_replays_early_stop(self, tmp_path):
        """Resuming a *complete* checkpoint must still replay the stop
        metrics instead of re-sampling or crashing."""
        ck = tmp_path / "full.jsonl"
        reference = run_campaign(STOP_SPEC, checkpoint=ck)
        resumed = run_campaign(STOP_SPEC, checkpoint=ck, resume=True)
        assert _summary(resumed) == _summary(reference)
        assert resumed.stats.resumed == len(reference.records) + len(reference.skips)
