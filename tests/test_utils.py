"""Utilities: RNG streams, table rendering, parallel fan-out, validation."""

import numpy as np
import pytest

from repro.utils.parallel import effective_jobs, map_trials
from repro.utils.rng import child_rng, make_rng, spawn_rngs
from repro.utils.tables import fmt_num, fmt_pct, format_mapping, format_table
from repro.utils.validation import as_f64, check_in, check_positive, check_prob, require


class TestRng:
    def test_child_streams_deterministic(self):
        a = child_rng(5, 1).normal(size=4)
        b = child_rng(5, 1).normal(size=4)
        assert np.array_equal(a, b)

    def test_child_streams_independent(self):
        a = child_rng(5, 1).normal(size=4)
        b = child_rng(5, 2).normal(size=4)
        assert not np.array_equal(a, b)

    def test_spawn_count(self):
        rngs = spawn_rngs(0, 5)
        assert len(rngs) == 5

    def test_make_rng_default_seed(self):
        assert np.array_equal(make_rng().normal(size=3), make_rng(None).normal(size=3))


class TestTables:
    def test_fmt_pct(self):
        assert fmt_pct(0.0719) == "7.19%"

    def test_fmt_num_zero(self):
        assert fmt_num(0) == "0"

    def test_format_table_alignment(self):
        out = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_table_cell_count_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_mapping(self):
        out = format_mapping({"k": 1})
        assert "k" in out and "1" in out


class TestParallel:
    def test_effective_jobs(self):
        assert effective_jobs(4) == 4
        assert effective_jobs(None) >= 1
        assert effective_jobs(0) >= 1

    def test_effective_jobs_negative_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            effective_jobs(-3)

    def test_chunk_validated(self):
        with pytest.raises(ValueError, match="chunk"):
            map_trials(_square_factory, 5, jobs=1, chunk=0)

    def test_inline_path(self):
        results = map_trials(lambda: (lambda i: i * i), 5, jobs=1)
        assert results == [0, 1, 4, 9, 16]

    def test_factory_called_once_inline(self):
        calls = []

        def factory():
            calls.append(1)
            return lambda i: i

        map_trials(factory, 10, jobs=1)
        assert len(calls) == 1

    def test_parallel_preserves_order(self):
        results = map_trials(_square_factory, 37, jobs=2, chunk=5)
        assert results == [i * i for i in range(37)]

    def test_single_trial_runs_inline(self):
        assert map_trials(_square_factory, 1, jobs=8) == [0]


def _square_factory():
    return lambda i: i * i


class TestValidation:
    def test_require(self):
        require(True, "ok")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_in(self):
        check_in("x", "a", ["a", "b"])
        with pytest.raises(ValueError):
            check_in("x", "c", ["a", "b"])

    def test_check_prob(self):
        check_prob("p", 0.5)
        with pytest.raises(ValueError):
            check_prob("p", 1.5)

    def test_as_f64(self):
        out = as_f64([1, 2])
        assert out.dtype == np.float64
