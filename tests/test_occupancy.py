"""Occupancy model: exposures, live fractions, weighted sampling."""

import pytest

from repro.accel import EYERISS_16NM
from repro.accel.occupancy import build_occupancy
from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.fault import SCOPE_COMPONENT, sample_buffer_fault
from repro.dtypes import FXP_16B_RB10
from repro.utils.rng import child_rng
from repro.zoo import get_network


@pytest.fixture(scope="module")
def occupancy():
    return build_occupancy(get_network("AlexNet"), EYERISS_16NM)


class TestModel:
    def test_covers_all_mac_layers(self, occupancy):
        net = get_network("AlexNet")
        assert [l.layer_index for l in occupancy.layers] == net.mac_layer_indices()

    def test_cycles_positive(self, occupancy):
        assert all(l.cycles >= 1 for l in occupancy.layers)
        assert occupancy.total_cycles == sum(l.cycles for l in occupancy.layers)

    def test_live_fractions_bounded(self, occupancy):
        for comp in SCOPE_COMPONENT.values():
            assert 0.0 <= occupancy.live_fraction(comp) <= 1.0

    def test_layer_weights_normalized(self, occupancy):
        for comp in SCOPE_COMPONENT.values():
            weights = occupancy.layer_weights(comp)
            if weights:
                assert sum(weights.values()) == pytest.approx(1.0)
                assert all(w > 0 for w in weights.values())

    def test_fc_layers_have_no_img_reg_exposure(self, occupancy):
        net = get_network("AlexNet")
        fc_indices = {
            i for i in net.mac_layer_indices() if net.layers[i].kind == "fc"
        }
        for l in occupancy.layers:
            if l.layer_index in fc_indices:
                assert l.exposure["Img REG"] == 0.0

    def test_derated_sdc(self, occupancy):
        raw = 0.5
        derated = occupancy.derated_sdc("Filter SRAM", raw)
        assert derated == pytest.approx(raw * occupancy.live_fraction("Filter SRAM"))
        with pytest.raises(ValueError):
            occupancy.derated_sdc("Filter SRAM", 1.5)

    def test_unknown_component(self, occupancy):
        with pytest.raises(KeyError):
            occupancy.live_fraction("L3 cache")


class TestWeightedSampling:
    def test_sampling_tracks_exposure(self, occupancy):
        net = get_network("AlexNet")
        rng = child_rng(0, 0)
        counts: dict[int, int] = {}
        for _ in range(400):
            f = sample_buffer_fault(
                net, "layer_weight", FXP_16B_RB10, rng, occupancy=occupancy
            )
            counts[f.layer_index] = counts.get(f.layer_index, 0) + 1
        weights = occupancy.layer_weights("Filter SRAM")
        heaviest = max(weights, key=weights.get)
        lightest = min(weights, key=weights.get)
        assert counts.get(heaviest, 0) > counts.get(lightest, 0)

    def test_campaign_flag_runs_and_is_deterministic(self):
        spec = CampaignSpec(
            network="AlexNet", dtype="16b_rb10", target="next_layer",
            n_trials=30, seed=12, occupancy_weighted=True,
        )
        a = run_campaign(spec)
        b = run_campaign(spec)
        assert [r.block for r in a.records] == [r.block for r in b.records]

    def test_weighted_vs_static_sampling_differ(self):
        base = dict(network="AlexNet", dtype="16b_rb10", target="layer_weight",
                    n_trials=120, seed=13)
        static = run_campaign(CampaignSpec(**base))
        weighted = run_campaign(CampaignSpec(**base, occupancy_weighted=True))
        assert [r.block for r in static.records] != [r.block for r in weighted.records]
