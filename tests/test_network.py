"""Network container: structure, execution, partial re-execution."""

import numpy as np
import pytest

from repro.dtypes import FLOAT16
from repro.nn import Network
from tests.conftest import build_tiny_network


class TestStructure:
    def test_blocks_assigned(self, tiny_network):
        assert tiny_network.n_blocks == 3
        assert tiny_network.block_kinds() == {1: "CONV", 2: "CONV", 3: "FC"}
        # ReLU after conv1 belongs to block 1
        assert tiny_network.layer_named("r1").block == 1
        assert tiny_network.layer_named("sm").block == 3

    def test_shapes_chain(self, tiny_network):
        assert tiny_network.shapes[0] == (3, 8, 8)
        assert tiny_network.shapes[-1] == (5,)

    def test_mac_counts_weighting(self, tiny_network):
        counts = tiny_network.mac_counts()
        assert set(counts) == set(tiny_network.mac_layer_indices())
        assert tiny_network.total_macs() == sum(counts.values())
        assert all(v > 0 for v in counts.values())

    def test_out_candidates(self, tiny_network):
        assert tiny_network.out_candidates == 5

    def test_layer_named_missing(self, tiny_network):
        with pytest.raises(KeyError):
            tiny_network.layer_named("nope")

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network("empty", [], (3, 8, 8))

    def test_describe(self, tiny_network):
        d = tiny_network.describe()
        assert d["topology"] == "2 CONV + 1 FC"
        assert d["output_candidates"] == 5

    def test_param_count(self, tiny_network):
        expected = 4 * 3 * 9 + 4 + 6 * 4 * 9 + 6 + 5 * 24 + 5
        assert tiny_network.param_count() == expected


class TestExecution:
    def test_forward_records_activations(self, tiny_network, tiny_input):
        res = tiny_network.forward(tiny_input, record=True)
        assert len(res.activations) == len(tiny_network.layers) + 1
        for act, shape in zip(res.activations, tiny_network.shapes):
            assert act.shape == tuple(shape)

    def test_forward_no_record(self, tiny_network, tiny_input):
        res = tiny_network.forward(tiny_input, record=False)
        assert res.activations == []
        assert res.scores.shape == (5,)

    def test_forward_wrong_shape_raises(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.forward(np.zeros((3, 4, 4)))

    def test_softmax_scores_normalized(self, tiny_network, tiny_input):
        res = tiny_network.forward(tiny_input)
        assert np.isclose(res.scores.sum(), 1.0)

    def test_typed_forward_quantizes_everything(self, tiny_network, tiny_input):
        res = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        # Every pre-softmax activation must be representable in FLOAT16.
        for act in res.activations[:-1]:
            assert np.array_equal(act, FLOAT16.quantize(act))

    def test_topk_ordering(self, tiny_network, tiny_input):
        res = tiny_network.forward(tiny_input)
        top = res.topk(3)
        assert res.scores[top[0]] >= res.scores[top[1]] >= res.scores[top[2]]
        assert res.top1() == top[0]

    def test_forward_deterministic(self, tiny_network, tiny_input):
        a = tiny_network.forward(tiny_input, dtype=FLOAT16)
        b = tiny_network.forward(tiny_input, dtype=FLOAT16)
        assert np.array_equal(a.scores, b.scores)


class TestTopkTieBreak:
    """``topk(1)[0] == top1()`` must hold for *every* score vector.

    ``top1`` is ``np.argmax`` (first maximal index, NaN wins); the old
    reversed-stable-argsort ``topk`` broke ties toward the highest index
    and disagreed with it, which flipped outcome classifications on tied
    scores.
    """

    from repro.nn import InferenceResult

    VECTORS = [
        np.array([0.2, 0.5, 0.5, 0.1]),          # interior tie
        np.array([0.5, 0.5, 0.5, 0.5]),          # all tied
        np.array([1.0, 0.0, 1.0]),               # tie with leading max
        np.array([0.1, np.nan, 0.3]),            # NaN ranks first (argmax)
        np.array([np.nan, np.nan, 0.3]),         # tied NaNs: lowest index
        np.array([-np.inf, -np.inf, -1.0]),      # ties at -inf
        np.zeros(6),                             # degenerate all-zero
    ]

    @pytest.mark.parametrize("scores", VECTORS)
    def test_topk_agrees_with_top1(self, scores):
        res = self.InferenceResult(scores=scores)
        assert res.topk(1)[0] == res.top1()

    @pytest.mark.parametrize("scores", VECTORS)
    def test_topk_ties_break_by_lowest_index(self, scores):
        res = self.InferenceResult(scores=scores)
        order = res.topk(len(scores))
        assert sorted(order) == list(range(len(scores)))  # a permutation
        # Equal scores (and NaN runs) must appear in ascending index order.
        s = res.scores
        for a, b in zip(order, order[1:]):
            both_nan = np.isnan(s[a]) and np.isnan(s[b])
            if s[a] == s[b] or both_nan:
                assert a < b


class TestResume:
    def test_resume_matches_full_run(self, tiny_network, tiny_input):
        full = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        for idx in range(len(tiny_network.layers) + 1):
            resumed = tiny_network.forward_from(idx, full.activations[idx], dtype=FLOAT16)
            assert np.array_equal(resumed.scores, full.scores), f"layer {idx}"

    def test_resume_shape_checked(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.forward_from(0, np.zeros((1, 2, 3)))

    def test_resume_index_checked(self, tiny_network, tiny_input):
        with pytest.raises(IndexError):
            tiny_network.forward_from(99, tiny_input)

    def test_resume_at_len_echoes_scores(self, tiny_network, tiny_input):
        """``len(layers)`` is in range: zero layers run, input echoed.

        That is the natural resume point for a fault landing in the final
        output buffer; the old bound rejected it as out of range.
        """
        full = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        end = len(tiny_network.layers)
        echoed = tiny_network.forward_from(end, full.activations[end], dtype=FLOAT16)
        assert np.array_equal(echoed.scores, full.scores)
        with pytest.raises(IndexError):
            tiny_network.forward_from(end + 1, full.activations[end], dtype=FLOAT16)
        with pytest.raises(IndexError):
            tiny_network.forward_from(-1, full.activations[0], dtype=FLOAT16)

    def test_resume_records_segment(self, tiny_network, tiny_input):
        full = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        seg = tiny_network.forward_from(3, full.activations[3], dtype=FLOAT16, record=True)
        assert len(seg.activations) == len(tiny_network.layers) - 3 + 1


class TestWeightCaches:
    def test_prepare_then_mutate_requires_invalidation(self, tiny_input):
        net = build_tiny_network()
        net.prepare(FLOAT16)
        before = net.forward(tiny_input, dtype=FLOAT16).scores
        for i in net.mac_layer_indices():
            net.layers[i].params()["weight"] *= 1.5
        stale = net.forward(tiny_input, dtype=FLOAT16).scores
        assert np.array_equal(stale, before)  # caches still serve old weights
        net.invalidate_weight_caches()
        fresh = net.forward(tiny_input, dtype=FLOAT16).scores
        assert not np.array_equal(fresh, before)
