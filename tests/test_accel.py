"""Accelerator models: datapath latches, buffers, Eyeriss, reuse analysis."""

import pytest

from repro.accel import (
    ACCELERATOR_PROFILES,
    EYERISS_16NM,
    EYERISS_65NM,
    LATCH_CLASSES,
    BufferSpec,
    DatapathModel,
    analyze_conv_reuse,
    network_reuse_report,
    scale_config,
    table1_rows,
    table7_rows,
)
from repro.nn import Conv2D
from tests.conftest import build_tiny_network


class TestDatapathModel:
    def test_latch_inventory(self):
        assert len(LATCH_CLASSES) == 5
        names = {lc.name for lc in LATCH_CLASSES}
        assert names == {"weight_operand", "input_operand", "product", "psum", "accumulator"}

    def test_bits_scale_with_width_and_pes(self):
        dp16 = DatapathModel(n_pes=100, data_width=16)
        dp32 = DatapathModel(n_pes=100, data_width=32)
        assert dp16.latch_bits_per_pe == 5 * 16
        assert dp32.total_latch_bits == 2 * dp16.total_latch_bits
        assert dp16.total_latch_bits == 100 * 80

    def test_bits_of_class(self):
        dp = DatapathModel(n_pes=10, data_width=16)
        assert dp.bits_of("product") == 160
        with pytest.raises(KeyError):
            dp.bits_of("bogus")

    def test_invalid(self):
        with pytest.raises(ValueError):
            DatapathModel(n_pes=0, data_width=16)

    def test_size_mbit(self):
        dp = DatapathModel(n_pes=1_000_000, data_width=20)
        assert dp.size_mbit == pytest.approx(100.0)


class TestBufferSpec:
    def test_totals(self):
        spec = BufferSpec("b", 2.0, 4, "layer_weight")
        assert spec.total_kbytes == 8.0
        assert spec.total_bits == 8 * 1024 * 8

    def test_invalid_scope(self):
        with pytest.raises(ValueError):
            BufferSpec("b", 1.0, 1, "bogus")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BufferSpec("b", 0.0, 1, "layer_weight")

    def test_scaled(self):
        spec = BufferSpec("b", 1.0, 2, "single_read")
        s = spec.scaled(8, 1)
        assert s.kbytes_per_instance == 8.0 and s.instances == 2
        assert s.fault_scope == "single_read"


class TestEyeriss:
    def test_table7_65nm(self):
        assert EYERISS_65NM.n_pes == 168
        assert EYERISS_65NM.global_buffer.kbytes_per_instance == 98.0
        assert EYERISS_65NM.data_width == 16

    def test_table7_16nm_projection(self):
        assert EYERISS_16NM.n_pes == 1344
        assert EYERISS_16NM.global_buffer.kbytes_per_instance == 784.0
        assert EYERISS_16NM.filter_sram.kbytes_per_instance == pytest.approx(3.52)
        assert EYERISS_16NM.img_reg.kbytes_per_instance == pytest.approx(0.1875)
        assert EYERISS_16NM.psum_reg.kbytes_per_instance == pytest.approx(0.375)

    def test_buffer_capacity_scales_8x(self):
        for b65, b16 in zip(EYERISS_65NM.buffers(), EYERISS_16NM.buffers()):
            assert b16.total_kbytes == pytest.approx(8 * b65.total_kbytes)

    def test_fit_backsolve_matches_paper_table8(self):
        """The paper's Table 8 FIT values imply these component sizes."""
        from repro.core.fit import fit_rate

        assert fit_rate(EYERISS_16NM.filter_sram.size_mbit, 0.0317) == pytest.approx(3.00, rel=0.10)
        assert fit_rate(EYERISS_16NM.global_buffer.size_mbit, 0.697) == pytest.approx(87.47, rel=0.10)
        assert fit_rate(EYERISS_16NM.psum_reg.size_mbit, 0.2798) == pytest.approx(2.82, rel=0.10)

    def test_buffer_named(self):
        assert EYERISS_16NM.buffer_named("Img REG").fault_scope == "row_activation"
        with pytest.raises(KeyError):
            EYERISS_16NM.buffer_named("L2")

    def test_datapath_property(self):
        dp = EYERISS_16NM.datapath
        assert dp.n_pes == 1344 and dp.data_width == 16

    def test_scale_config_identity(self):
        same = scale_config(EYERISS_65NM, 65, 0)
        assert same.n_pes == EYERISS_65NM.n_pes
        assert same.global_buffer.kbytes_per_instance == 98.0

    def test_table7_rows(self):
        rows = table7_rows()
        assert [r["feature_size"] for r in rows] == ["65nm", "16nm"]


class TestReuseTaxonomy:
    def test_eyeriss_exploits_all_three(self):
        eyeriss = next(p for p in ACCELERATOR_PROFILES if p.name == "Eyeriss")
        assert eyeriss.reuse_kinds == ("weight", "image", "output")
        assert eyeriss.local_buffer_classes == ("Filter SRAM", "Img REG", "PSum REG")

    def test_table1_has_four_families(self):
        assert len(table1_rows()) == 4

    def test_no_reuse_family(self):
        diannao = ACCELERATOR_PROFILES[0]
        assert diannao.reuse_kinds == ()
        assert diannao.local_buffer_classes == ()


class TestDataflowAnalysis:
    def test_conv_reuse_counts(self):
        conv = Conv2D("c", 3, 8, 3, stride=1, pad=1)
        stats = analyze_conv_reuse(conv, (3, 8, 8))
        assert stats.weight_uses == 64  # one per output pixel
        assert stats.psum_uses == 1
        assert stats.chain_length == 27
        assert stats.image_row_uses == 3 * 8  # 3-wide window cover x 8 filters
        assert stats.image_total_uses == 9 * 8

    def test_strided_cover(self):
        conv = Conv2D("c", 1, 4, 5, stride=2)
        stats = analyze_conv_reuse(conv, (1, 16, 16))
        assert stats.image_row_uses == 3 * 4  # ceil(5/2)=3 positions x 4 filters

    def test_network_report_covers_convs(self):
        net = build_tiny_network()
        report = network_reuse_report(net)
        assert [s.layer for s in report] == ["c1", "c2"]
