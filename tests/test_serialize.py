"""Serialization: JSON sanitization, campaign summaries, artifacts."""

import json

import numpy as np
from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.serialize import campaign_summary, from_jsonable, load_json, save_json, to_jsonable
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import run_experiment


class TestToJsonable:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float32(0.5)) == 0.5

    def test_nonfinite_floats(self):
        assert to_jsonable(float("nan")) == "nan"
        assert to_jsonable(float("inf")) == "inf"
        assert to_jsonable(float("-inf")) == "-inf"

    def test_arrays_and_tuples(self):
        out = to_jsonable({"a": np.arange(3), "b": (1, 2)})
        assert out == {"a": [0, 1, 2], "b": [1, 2]}

    def test_tuple_keys_flattened(self):
        out = to_jsonable({("AlexNet", "FLOAT16"): 1.0})
        assert out == {"AlexNet|FLOAT16": 1.0}

    def test_dataclasses(self):
        cfg = ExperimentConfig(trials=10)
        out = to_jsonable(cfg)
        assert out["trials"] == 10

    def test_roundtrips_through_json(self):
        obj = {"x": np.float64(1.5), "y": [np.int32(2), float("nan")]}
        json.dumps(to_jsonable(obj))  # must not raise


class TestFromJsonable:
    def test_restores_nonfinite_strings(self):
        assert np.isnan(from_jsonable("nan"))
        assert from_jsonable("inf") == float("inf")
        assert from_jsonable("-inf") == float("-inf")

    def test_recurses_containers(self):
        out = from_jsonable({"a": ["inf", 1.5], "b": {"c": "-inf"}})
        assert out["a"] == [float("inf"), 1.5]
        assert out["b"]["c"] == float("-inf")

    def test_ordinary_values_untouched(self):
        obj = {"s": "nano", "n": 3, "f": 0.25, "none": None, "b": True}
        assert from_jsonable(obj) == obj

    def test_inverts_to_jsonable_floats(self):
        original = {"x": float("nan"), "y": [float("inf"), 2.0]}
        restored = from_jsonable(json.loads(json.dumps(to_jsonable(original))))
        assert np.isnan(restored["x"])
        assert restored["y"] == [float("inf"), 2.0]


class TestCampaignSummary:
    def test_summary_fields(self):
        res = run_campaign(
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=30, seed=3,
                         with_detection=True)
        )
        summary = campaign_summary(res)
        assert summary["n_trials"] == 30
        assert set(summary["sdc"]) == {"sdc1", "sdc5", "sdc10", "sdc20"}
        assert "detection" in summary
        json.dumps(summary)  # JSON-safe

    def test_no_detection_omitted(self):
        res = run_campaign(CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=10, seed=3))
        assert "detection" not in campaign_summary(res)


class TestArtifacts:
    def test_save_and_load(self, tmp_path):
        path = save_json({"k": np.float64(2.0)}, tmp_path / "sub" / "x.json")
        assert load_json(path) == {"k": 2.0}

    def test_runner_writes_artifacts(self, tmp_path):
        cfg = ExperimentConfig(trials=10)
        run_experiment("table2", cfg, out_dir=str(tmp_path))
        data = load_json(tmp_path / "table2.json")
        assert data["networks"][0]["network"] == "ConvNet"
        assert (tmp_path / "table2.txt").read_text().startswith("Table 2")
