"""Extension features: Proteus reduced-precision storage and the DMR
detection baseline."""

import numpy as np
import pytest

from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.fault import BufferFault
from repro.core.injector import inject_buffer
from repro.dtypes import FXP_16B_RB10, FXP_32B_RB10
from repro.experiments.common import ExperimentConfig


class TestStorageDtypeForward:
    def test_block_outputs_narrowed(self, tiny_network, tiny_input):
        wide, narrow = FXP_32B_RB10, FXP_16B_RB10
        res = tiny_network.forward(tiny_input, dtype=wide, storage_dtype=narrow, record=True)
        for li in tiny_network.block_output_indices():
            act = res.activations[li + 1]
            assert np.array_equal(act, narrow.quantize(act)), li

    def test_intermediate_layers_stay_wide(self, tiny_network, tiny_input):
        wide, narrow = FXP_32B_RB10, FXP_16B_RB10
        res = tiny_network.forward(tiny_input, dtype=wide, storage_dtype=narrow, record=True)
        conv_out = res.activations[1]  # conv1 output: mid-block, not stored
        # conv outputs carry full 32b_rb10 precision (values beyond 16b
        # resolution or range survive until the block output)
        assert conv_out.shape == (4, 8, 8)

    def test_no_storage_means_unchanged(self, tiny_network, tiny_input):
        a = tiny_network.forward(tiny_input, dtype=FXP_32B_RB10)
        b = tiny_network.forward(tiny_input, dtype=FXP_32B_RB10, storage_dtype=None)
        assert np.array_equal(a.scores, b.scores)

    def test_block_output_indices(self, tiny_network):
        assert tiny_network.block_output_indices() == frozenset({2, 6, 7})

    def test_resume_respects_storage(self, tiny_network, tiny_input):
        wide, narrow = FXP_32B_RB10, FXP_16B_RB10
        full = tiny_network.forward(tiny_input, dtype=wide, storage_dtype=narrow, record=True)
        resumed = tiny_network.forward_from(
            3, full.activations[3], dtype=wide, storage_dtype=narrow
        )
        assert np.array_equal(resumed.scores, full.scores)


class TestProteusInjection:
    def test_buffer_flip_lands_in_storage_word(self, tiny_network, tiny_input):
        wide, narrow = FXP_32B_RB10, FXP_16B_RB10
        golden = tiny_network.forward(
            tiny_input, dtype=wide, storage_dtype=narrow, record=True
        )
        li = tiny_network.mac_layer_indices()[1]
        victim = (0, 2, 2)
        fault = BufferFault("next_layer", li, victim, 14)  # top 16b integer bit
        res = inject_buffer(
            tiny_network, wide, fault, golden, storage_dtype=narrow
        )
        if not res.masked:
            # A 16b_rb10 bit-14 flip moves the value by +/-16; a 32b_rb10
            # bit-14 flip would move it by only 16 as well, but bit 30
            # style escapes to ~2^20 are impossible in the narrow word.
            assert abs(res.value_after) <= narrow.max_value + 1e-9

    def test_proteus_not_worse_than_wide(self):
        wide = run_campaign(
            CampaignSpec(network="ConvNet", dtype="32b_rb10", target="layer_weight",
                         n_trials=150, seed=9)
        ).sdc_rate().p
        proteus = run_campaign(
            CampaignSpec(network="ConvNet", dtype="32b_rb10", target="layer_weight",
                         n_trials=150, seed=9, storage_dtype="16b_rb10")
        ).sdc_rate().p
        assert proteus <= wide + 0.02

    def test_spec_rejects_unknown_storage_dtype(self):
        spec = CampaignSpec(
            network="ConvNet", dtype="32b_rb10", n_trials=1, storage_dtype="8b_rb4"
        )
        with pytest.raises(KeyError):
            run_campaign(spec)


class TestDMRBaseline:
    def test_dmr_recall_is_total(self):
        res = run_campaign(
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=120, seed=9,
                         with_detection=True, detector_kind="dmr")
        )
        q = res.detection_quality()
        if q.total_sdc:
            assert q.recall == 1.0

    def test_dmr_flags_all_activated(self):
        res = run_campaign(
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=120, seed=9,
                         with_detection=True, detector_kind="dmr")
        )
        for r in res.records:
            assert r.detected is not None

    def test_dmr_precision_below_sed(self):
        kwargs = dict(network="ConvNet", dtype="FLOAT16", n_trials=200, seed=10,
                      with_detection=True)
        sed = run_campaign(CampaignSpec(**kwargs, detector_kind="sed")).detection_quality()
        dmr = run_campaign(CampaignSpec(**kwargs, detector_kind="dmr")).detection_quality()
        assert dmr.precision < sed.precision

    def test_invalid_detector_kind(self):
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", detector_kind="tmr")


class TestExtensionExperiments:
    CFG = ExperimentConfig(trials=30, seed=2)

    def test_proteus_experiment(self):
        from repro.experiments import ext_proteus

        result = ext_proteus.run(self.CFG)
        assert result["proteus_total"] <= result["wide_total"] + 1e-9
        assert "Proteus" in ext_proteus.render(result)

    def test_dmr_experiment(self):
        from repro.experiments import ext_dmr_baseline

        result = ext_dmr_baseline.run(self.CFG)
        for row in result["networks"].values():
            assert row["dmr"]["recall"] == 1.0 or row["dmr"]["total_sdc"] == 0
        assert "DMR" in ext_dmr_baseline.render(result)
