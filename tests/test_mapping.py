"""Row-stationary mapper: array shapes, set tiling, residency ordering."""

import pytest

from repro.accel import EYERISS_16NM, EYERISS_65NM
from repro.accel.eyeriss import scale_config
from repro.accel.mapping import ArrayShape, array_shape_for, map_conv_layer, map_network
from repro.nn import Conv2D
from repro.zoo import get_network


class TestArrayShape:
    def test_base_array(self):
        shape = array_shape_for(EYERISS_65NM)
        assert (shape.height, shape.width) == (12, 14)
        assert shape.pes == 168

    def test_16nm_projection(self):
        shape = array_shape_for(EYERISS_16NM)
        assert shape.pes == 1344
        assert (shape.height, shape.width) == (48, 28)

    def test_non_multiple_rejected(self):
        odd = scale_config(EYERISS_65NM, 65, 0)
        bad = type(odd)(
            feature_nm=65, n_pes=100, data_width=16,
            global_buffer=odd.global_buffer, filter_sram=odd.filter_sram,
            img_reg=odd.img_reg, psum_reg=odd.psum_reg,
        )
        with pytest.raises(ValueError):
            array_shape_for(bad)


class TestMapConvLayer:
    ARRAY = ArrayShape(12, 14)

    def test_small_conv_fits_many_sets(self):
        conv = Conv2D("c", 4, 8, 3, pad=1)
        report = map_conv_layer(conv, (4, 14, 14), self.ARRAY)
        assert report.pe_set == (3, 14)
        assert report.sets_per_pass == 4  # floor(12/3) x floor(14/14)
        assert report.passes == -(-4 * 8 // 4)

    def test_strip_mining_when_output_taller_than_array(self):
        conv = Conv2D("c", 1, 1, 3, pad=1)
        report = map_conv_layer(conv, (1, 30, 30), self.ARRAY)
        assert report.pe_set[1] == 14  # clipped to array width
        # ceil(30/14) = 3 strips run as concurrent sets in one pass:
        # 3 sets x (3 x 14) PEs = 126 of 168 PEs busy.
        assert report.passes == 1
        assert report.utilization == pytest.approx(126 / 168)

    def test_filter_taller_than_array_rejected(self):
        conv = Conv2D("c", 1, 1, 13)
        with pytest.raises(ValueError):
            map_conv_layer(conv, (1, 20, 20), self.ARRAY)

    def test_utilization_bounded(self):
        conv = Conv2D("c", 3, 16, 5, pad=2)
        report = map_conv_layer(conv, (3, 14, 14), self.ARRAY)
        assert 0.0 < report.utilization <= 1.0

    def test_residency_ordering(self):
        conv = Conv2D("c", 8, 16, 5, pad=2)
        report = map_conv_layer(conv, (8, 14, 14), self.ARRAY)
        # Table 8's mechanism: weights outlive img rows outlive psums.
        assert (
            report.weight_residency_cycles
            >= report.img_residency_cycles
            >= report.psum_residency_cycles
        )
        assert report.psum_residency_cycles == conv.kernel

    def test_cycles_scale_with_work(self):
        small = map_conv_layer(Conv2D("a", 4, 8, 3, pad=1), (4, 14, 14), self.ARRAY)
        big = map_conv_layer(Conv2D("b", 16, 32, 3, pad=1), (16, 14, 14), self.ARRAY)
        assert big.cycles > small.cycles


class TestMapNetwork:
    def test_alexnet_mapping(self):
        reports = map_network(get_network("AlexNet"), EYERISS_16NM)
        assert [r.layer for r in reports] == ["conv1", "conv2", "conv3", "conv4", "conv5"]
        for r in reports:
            assert r.passes >= 1
            assert 0 < r.utilization <= 1.0
            assert r.weight_residency_cycles == r.cycles

    def test_fc_layers_excluded(self):
        reports = map_network(get_network("ConvNet"), EYERISS_16NM)
        assert [r.layer for r in reports] == ["conv1", "conv2", "conv3"]
