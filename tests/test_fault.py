"""Fault-site descriptors and sampling distributions."""

import numpy as np
import pytest

from repro.core.fault import (
    DATAPATH_LATCHES,
    BufferFault,
    DatapathFault,
    sample_buffer_fault,
    sample_datapath_fault,
)
from repro.dtypes import FLOAT16, FXP_16B_RB10


class TestDescriptors:
    def test_datapath_fault_validation(self):
        with pytest.raises(ValueError):
            DatapathFault(0, (0, 0, 0), 0, "bogus", 0)
        with pytest.raises(ValueError):
            DatapathFault(0, (0, 0, 0), -1, "psum", 0)

    def test_buffer_fault_validation(self):
        with pytest.raises(ValueError):
            BufferFault("bogus", 0, (0,), 0)
        with pytest.raises(ValueError):
            BufferFault("layer_weight", 0, (0,), -1)


class TestDatapathSampling:
    def test_fields_in_range(self, tiny_network, rng):
        for _ in range(50):
            f = sample_datapath_fault(tiny_network, FLOAT16, rng)
            layer = tiny_network.layers[f.layer_index]
            in_shape = tiny_network.shapes[f.layer_index]
            assert f.layer_index in tiny_network.mac_layer_indices()
            assert 0 <= f.step < layer.chain_length(in_shape)
            assert 0 <= f.bit < FLOAT16.width
            assert f.latch in DATAPATH_LATCHES
            assert len(f.out_index) == len(layer.out_shape(in_shape))

    def test_mac_weighted_layer_choice(self, tiny_network, rng):
        counts = {}
        for _ in range(400):
            f = sample_datapath_fault(tiny_network, FLOAT16, rng)
            counts[f.layer_index] = counts.get(f.layer_index, 0) + 1
        macs = tiny_network.mac_counts()
        heaviest = max(macs, key=macs.get)
        lightest = min(macs, key=macs.get)
        assert counts.get(heaviest, 0) > counts.get(lightest, 0)

    def test_pinning(self, tiny_network, rng):
        li = tiny_network.mac_layer_indices()[1]
        f = sample_datapath_fault(tiny_network, FLOAT16, rng, latch="psum", bit=3, layer_index=li)
        assert f.latch == "psum" and f.bit == 3 and f.layer_index == li

    def test_pin_non_mac_layer_rejected(self, tiny_network, rng):
        with pytest.raises(ValueError):
            sample_datapath_fault(tiny_network, FLOAT16, rng, layer_index=1)  # ReLU

    def test_deterministic_per_stream(self, tiny_network):
        a = sample_datapath_fault(tiny_network, FLOAT16, np.random.default_rng(7))
        b = sample_datapath_fault(tiny_network, FLOAT16, np.random.default_rng(7))
        assert a == b


class TestBufferSampling:
    def test_layer_weight_victim_within_tensor(self, tiny_network, rng):
        for _ in range(30):
            f = sample_buffer_fault(tiny_network, "layer_weight", FXP_16B_RB10, rng)
            w = tiny_network.layers[f.layer_index].params()["weight"]
            assert len(f.victim) == w.ndim
            w[f.victim]  # indexable

    def test_next_layer_victim_is_input_element(self, tiny_network, rng):
        for _ in range(30):
            f = sample_buffer_fault(tiny_network, "next_layer", FXP_16B_RB10, rng)
            shape = tiny_network.shapes[f.layer_index]
            assert len(f.victim) == len(shape)
            assert all(0 <= v < s for v, s in zip(f.victim, shape))

    def test_row_activation_targets_convs_with_valid_row(self, tiny_network, rng):
        for _ in range(30):
            f = sample_buffer_fault(tiny_network, "row_activation", FXP_16B_RB10, rng)
            layer = tiny_network.layers[f.layer_index]
            assert layer.kind == "conv"
            _, oh, _ = layer.out_shape(tiny_network.shapes[f.layer_index])
            assert 0 <= f.residency_row < oh
            # the residency row actually reads the victim pixel
            y = f.victim[1]
            oy = f.residency_row
            assert oy * layer.stride - layer.pad <= y <= oy * layer.stride - layer.pad + layer.kernel - 1

    def test_single_read_victim_has_step(self, tiny_network, rng):
        f = sample_buffer_fault(tiny_network, "single_read", FXP_16B_RB10, rng)
        layer = tiny_network.layers[f.layer_index]
        in_shape = tiny_network.shapes[f.layer_index]
        *out_index, step = f.victim
        assert 0 <= step < layer.chain_length(in_shape)

    def test_unknown_scope_rejected(self, tiny_network, rng):
        with pytest.raises(ValueError):
            sample_buffer_fault(tiny_network, "bogus", FXP_16B_RB10, rng)

    def test_bit_pinning(self, tiny_network, rng):
        f = sample_buffer_fault(tiny_network, "layer_weight", FXP_16B_RB10, rng, bit=14)
        assert f.bit == 14
