"""Smoke-run every example application (they are deliverables too)."""

import os
import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    env = dict(os.environ)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--trials", "40")
        assert "SDC-1" in out
        assert "FIT rate" in out

    def test_misclassification_scenario(self):
        out = run_example("self_driving_misclassification.py")
        assert "misclassified" in out or "no SDC found" in out

    def test_datatype_selection(self):
        out = run_example("datatype_selection.py", "--trials", "30", "--network", "ConvNet")
        assert "32b_rb10" in out and "fidelity" in out

    def test_protection_pipeline(self):
        out = run_example("protection_pipeline.py", "--trials", "30", "--network", "ConvNet")
        assert "Eyeriss-16nm FIT" in out
        assert "PASS" in out or "FAIL" in out

    def test_protection_planner(self):
        out = run_example("protection_planner.py", "--trials", "30", "--network", "ConvNet")
        assert "cheapest stack" in out
