"""VGG-16 extension network and the depth-study experiment."""

import pytest

from repro.nn.profiling import profile_ranges
from repro.zoo import eval_inputs, get_network
from repro.zoo.vgg import build_vgg16, vgg_targets


class TestVggTopology:
    def test_vgg16_structure(self):
        net = build_vgg16()
        assert net.n_blocks == 16
        kinds = list(net.block_kinds().values())
        assert kinds == ["CONV"] * 13 + ["FC"] * 3
        assert net.out_candidates == 1000
        assert sum(1 for l in net.layers if l.kind == "pool") == 5
        assert not any(l.kind == "lrn" for l in net.layers)

    def test_all_convs_are_3x3_same(self):
        net = build_vgg16()
        for i in net.mac_layer_indices():
            layer = net.layers[i]
            if layer.kind == "conv":
                assert layer.kernel == 3 and layer.pad == 1 and layer.stride == 1

    def test_full_scale_geometry(self):
        net = build_vgg16("full")
        assert net.input_shape == (3, 224, 224)
        assert net.layers[0].out_channels == 64
        # 224 / 2^5 = 7 spatial extent into fc14
        fc14 = net.layer_named("fc14")
        assert fc14.in_features == 512 * 7 * 7

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            build_vgg16("tiny")

    def test_targets_profile(self):
        targets = vgg_targets(16)
        assert len(targets) == 16
        assert targets[0] == pytest.approx(700.0)
        assert all(a > b for a, b in zip(targets, targets[1:]))
        with pytest.raises(ValueError):
            vgg_targets(1)


class TestVggRegistry:
    def test_calibrated_to_decay_profile(self):
        net = get_network("VGG16")
        profile = profile_ranges(net, eval_inputs("VGG16", 2), scope="all")
        targets = vgg_targets(16)
        for block, want in enumerate(targets, start=1):
            got = max(abs(profile.ranges[block].lo), abs(profile.ranges[block].hi))
            assert 0.3 * want < got < 3.0 * want, (block, got, want)

    def test_eval_inputs_shape(self):
        x = eval_inputs("VGG16", 1)
        assert x.shape[1:] == get_network("VGG16").input_shape


class TestDepthExperiment:
    def test_structure(self):
        from repro.experiments import ext_depth
        from repro.experiments.common import ExperimentConfig

        result = ext_depth.run(ExperimentConfig(trials=25, seed=3))
        nets = result["networks"]
        assert list(nets) == ["ConvNet", "AlexNet", "NiN", "VGG16"]
        depths = [d["depth"] for d in nets.values()]
        assert depths == [5, 8, 12, 16]
        for d in nets.values():
            assert 0.0 <= d["masked"] <= 1.0
            assert d["range_headroom"] > 1.0
        assert "depth alone" in ext_depth.render(result)
