"""Activation-range profiling (Table 4 machinery / SED learning phase)."""

import numpy as np
import pytest

from repro.dtypes import FLOAT16
from repro.nn.profiling import BlockRange, RangeProfile, profile_ranges
from tests.conftest import build_tiny_network


class TestBlockRange:
    def test_cushion_expands_both_sides(self):
        r = BlockRange(1, -10.0, 20.0)
        c = r.with_cushion(0.10)
        assert c.lo == pytest.approx(-11.0)
        assert c.hi == pytest.approx(22.0)

    def test_cushion_on_positive_lo(self):
        # A positive lower bound must move DOWN (widen), not up.
        r = BlockRange(1, 5.0, 20.0)
        c = r.with_cushion(0.10)
        assert c.lo < 5.0
        assert c.hi > 20.0

    def test_contains(self):
        r = BlockRange(1, -1.0, 1.0)
        v = np.array([-1.0, 0.5, 1.0, 1.5, np.nan, np.inf])
        assert r.contains(v).tolist() == [True, True, True, False, False, False]


class TestRangeProfile:
    def test_merge_takes_union(self):
        a = RangeProfile("n", {1: BlockRange(1, -1, 1)})
        b = RangeProfile("n", {1: BlockRange(1, -2, 0.5), 2: BlockRange(2, 0, 1)})
        m = a.merge(b)
        assert m.ranges[1].lo == -2 and m.ranges[1].hi == 1
        assert 2 in m.ranges

    def test_merge_different_networks_rejected(self):
        a = RangeProfile("a", {})
        with pytest.raises(ValueError):
            a.merge(RangeProfile("b", {}))

    def test_as_rows_sorted(self):
        p = RangeProfile("n", {2: BlockRange(2, 0, 1), 1: BlockRange(1, -1, 0)})
        assert [r[0] for r in p.as_rows()] == [1, 2]


class TestProfileRanges:
    def test_one_range_per_block(self, rng):
        net = build_tiny_network()
        inputs = rng.normal(0, 1, (3, 3, 8, 8))
        profile = profile_ranges(net, inputs)
        assert set(profile.ranges) == {1, 2, 3}

    def test_all_scope_sees_negative_preact(self, rng):
        # ReLU-terminated blocks still show negative minima under
        # scope="all" (the raw MAC output), matching Table 4.
        net = build_tiny_network()
        inputs = rng.normal(0, 1, (3, 3, 8, 8))
        all_scope = profile_ranges(net, inputs, scope="all")
        out_scope = profile_ranges(net, inputs, scope="output")
        assert all_scope.ranges[1].lo < 0
        assert out_scope.ranges[1].lo >= 0  # post-ReLU/pool block output
        assert all_scope.ranges[1].hi >= out_scope.ranges[1].hi

    def test_invalid_scope_rejected(self, rng):
        net = build_tiny_network()
        with pytest.raises(ValueError):
            profile_ranges(net, rng.normal(0, 1, (1, 3, 8, 8)), scope="bogus")

    def test_softmax_excluded(self, rng):
        # Block 3's range must reflect logits, not softmax probabilities.
        net = build_tiny_network()
        inputs = rng.normal(0, 1, (2, 3, 8, 8))
        profile = profile_ranges(net, inputs, scope="output")
        assert profile.ranges[3].hi > 1.0 or profile.ranges[3].lo < 0.0

    def test_typed_profiling_quantizes(self, rng):
        net = build_tiny_network()
        inputs = rng.normal(0, 1, (2, 3, 8, 8))
        profile = profile_ranges(net, inputs, dtype=FLOAT16)
        for r in profile.ranges.values():
            assert r.lo == FLOAT16.quantize(np.array([r.lo]))[0]

    def test_golden_activations_within_profile(self, rng):
        net = build_tiny_network()
        inputs = rng.normal(0, 1, (4, 3, 8, 8))
        profile = profile_ranges(net, inputs, scope="output")
        detectorish = {b: r.with_cushion(0.0) for b, r in profile.ranges.items()}
        res = net.forward(inputs[0], record=True)
        # The block-3 output (logits) of a profiled input is inside bounds.
        assert detectorish[3].contains(res.activations[-2]).all()
