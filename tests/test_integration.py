"""End-to-end integration tests reproducing the paper's headline claims
at small sample sizes (shape assertions with generous margins)."""

import numpy as np

from repro.core import (
    CampaignSpec,
    eyeriss_total_fit,
    learn_detector,
    run_campaign,
)
from repro.accel import EYERISS_16NM
from repro.dtypes import get_dtype
from repro.zoo import eval_inputs, get_network


class TestHeadlineShapes:
    """Each test pins one qualitative claim from the paper."""

    def test_wide_fxp_far_worse_than_narrow_fxp(self):
        """Section 5.1.2: 32b_rb10's redundant dynamic range makes it
        dramatically more SDC-prone than 32b_rb26."""
        wide = run_campaign(
            CampaignSpec(network="AlexNet", dtype="32b_rb10", n_trials=250, seed=42)
        ).sdc_rate().p
        narrow = run_campaign(
            CampaignSpec(network="AlexNet", dtype="32b_rb26", n_trials=250, seed=42)
        ).sdc_rate().p
        assert wide > 3 * narrow
        assert wide > 0.02

    def test_only_high_order_bits_vulnerable(self):
        """Figure 4: mantissa/fraction bits have zero SDC probability."""
        res = run_campaign(
            CampaignSpec(network="CaffeNet", dtype="FLOAT16", n_trials=300, seed=43)
        )
        by_bit = res.rate_by_bit()
        mantissa_sdc = sum(by_bit.get(b, None).p for b in range(10) if b in by_bit)
        high_sdc = sum(by_bit[b].p for b in range(10, 16) if b in by_bit)
        assert mantissa_sdc == 0.0
        assert high_sdc >= mantissa_sdc

    def test_most_faults_masked(self):
        """Table 5: the large majority of datapath faults never reach the
        output (POOL/ReLU masking)."""
        res = run_campaign(
            CampaignSpec(network="AlexNet", dtype="FLOAT16", n_trials=250, seed=44)
        )
        assert res.masked_fraction > 0.5

    def test_large_deviations_cause_sdc(self):
        """Section 5.1.3 / Figure 5: SDC-causing corrupted values deviate
        far more than benign ones."""
        res = run_campaign(
            CampaignSpec(network="AlexNet", dtype="FLOAT16", n_trials=600, seed=45)
        )
        sdc_vals, benign_vals = [], []
        for r in res.records:
            if r.outcome.masked:
                continue
            v = abs(r.value_after)
            if not np.isfinite(v):
                v = 1e9
            (sdc_vals if r.outcome.sdc1 else benign_vals).append(v)
        if sdc_vals and benign_vals:
            assert np.median(sdc_vals) > np.median(benign_vals)

    def test_sed_high_precision_and_recall(self):
        """Section 6.2: the symptom detector catches most SDCs with few
        false alarms (paper: 90.21% precision / 92.5% recall)."""
        res = run_campaign(
            CampaignSpec(
                network="AlexNet", dtype="32b_rb10", n_trials=500, seed=46, with_detection=True
            )
        )
        q = res.detection_quality()
        assert q.precision > 0.9
        if q.total_sdc >= 5:
            assert q.recall > 0.6

    def test_buffer_fit_dwarfs_datapath_fit(self):
        """Section 5.2.1: buffer FIT is orders of magnitude above the
        datapath FIT for the same workload."""
        dp = run_campaign(
            CampaignSpec(network="ConvNet", dtype="16b_rb10", n_trials=300, seed=47)
        ).sdc_rate().p
        buf = run_campaign(
            CampaignSpec(
                network="ConvNet", dtype="16b_rb10", target="layer_weight",
                n_trials=300, seed=47,
            )
        ).sdc_rate().p
        fit = eyeriss_total_fit(
            EYERISS_16NM,
            {"datapath": dp},
            {"Global Buffer": buf, "Filter SRAM": buf, "Img REG": buf, "PSum REG": buf},
        )
        if buf > 0:
            assert fit["Filter SRAM"] + fit["Global Buffer"] > 10 * fit["datapath"]

    def test_psum_buffer_less_sensitive_than_weight_buffer(self):
        """Table 8: single-read PSum REG faults cause fewer SDCs than
        whole-layer Filter SRAM faults."""
        psum = run_campaign(
            CampaignSpec(
                network="ConvNet", dtype="16b_rb10", target="single_read",
                n_trials=400, seed=48,
            )
        ).sdc_rate().p
        weight = run_campaign(
            CampaignSpec(
                network="ConvNet", dtype="16b_rb10", target="layer_weight",
                n_trials=400, seed=48,
            )
        ).sdc_rate().p
        assert weight >= psum


class TestGoldenRunsStable:
    def test_detector_quiet_on_unseen_clean_inputs(self):
        net = get_network("ConvNet")
        det = learn_detector(net, eval_inputs("ConvNet", 16, seed=200), dtype=get_dtype("FLOAT16"))
        fires = 0
        for x in eval_inputs("ConvNet", 8, seed=300):
            res = net.forward(x, dtype=get_dtype("FLOAT16"), record=True)
            fires += det.scan(net, res.activations, 0)
        assert fires <= 1  # near-zero false alarms on clean data

    def test_golden_classification_deterministic_across_dtypes(self):
        net = get_network("ConvNet")
        x = eval_inputs("ConvNet", 1)[0]
        for name in ("DOUBLE", "FLOAT", "FLOAT16", "32b_rb10"):
            res1 = net.forward(x, dtype=get_dtype(name))
            res2 = net.forward(x, dtype=get_dtype(name))
            assert np.array_equal(res1.scores, res2.scores)


class TestBruteForceCrossCheck:
    """Validate the partial-re-execution injectors against full naive
    recomputation of the whole network."""

    def test_weight_fault_equals_full_recompute(self):
        from repro.core.fault import BufferFault
        from repro.core.injector import inject_buffer
        from tests.conftest import build_tiny_network

        dtype = get_dtype("16b_rb10")
        net = build_tiny_network()
        x = np.random.default_rng(5).normal(0, 1, (3, 8, 8))
        golden = net.forward(x, dtype=dtype, record=True)
        victim, bit = (2, 1, 1, 1), 13
        fault = BufferFault("layer_weight", 0, victim, bit)
        fast = inject_buffer(net, dtype, fault, golden)

        # Brute force: clone the network, flip the quantized weight for
        # real, and run a complete fresh inference.
        clone = build_tiny_network()
        w_q = dtype.quantize(clone.layers[0].weight)
        w_q[victim] = dtype.flip_bit(np.array([w_q[victim]]), bit)[0]
        clone.layers[0].weight[:] = w_q
        clone.invalidate_weight_caches()
        slow = clone.forward(x, dtype=dtype, record=False)
        assert np.allclose(fast.scores, slow.scores, atol=1e-12, equal_nan=True)

    def test_global_buffer_fault_equals_full_recompute(self):
        from repro.core.fault import BufferFault
        from repro.core.injector import inject_buffer
        from tests.conftest import build_tiny_network

        dtype = get_dtype("FLOAT16")
        net = build_tiny_network()
        x = np.random.default_rng(6).normal(0, 1, (3, 8, 8))
        golden = net.forward(x, dtype=dtype, record=True)
        li = net.mac_layer_indices()[1]
        victim, bit = (1, 2, 2), 14
        fault = BufferFault("next_layer", li, victim, bit)
        fast = inject_buffer(net, dtype, fault, golden)
        if fast.masked:
            return
        # Brute force: corrupt the stored activation and re-run the tail.
        act = golden.activations[li].copy()
        act[victim] = dtype.flip_bit(np.array([act[victim]]), bit)[0]
        slow = net.forward_from(li, act, dtype=dtype)
        assert np.array_equal(fast.scores, slow.scores, equal_nan=True)

    def test_datapath_fault_value_in_resumed_run(self):
        from repro.core.fault import DatapathFault
        from repro.core.injector import inject_datapath, replay_chain
        from tests.conftest import build_tiny_network

        dtype = get_dtype("FLOAT16")
        net = build_tiny_network()
        x = np.random.default_rng(7).normal(0, 1, (3, 8, 8))
        golden = net.forward(x, dtype=dtype, record=True)
        fault = DatapathFault(0, (1, 4, 4), 3, "product", 14)
        res = inject_datapath(net, dtype, fault, golden, record=True)
        if res.masked:
            return
        chain = net.layers[0].mac_operands(golden.activations[0], (1, 4, 4), dtype)
        assert res.faulty_activations[0][1, 4, 4] == replay_chain(dtype, chain, fault)
