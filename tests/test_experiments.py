"""Experiment harness: every table/figure module runs and yields the
paper-shaped structure (tiny trial budgets; shape checks only)."""

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import EXPERIMENTS, main, run_experiment

CFG = ExperimentConfig(trials=30, scale="reduced", seed=1, jobs=1)


class TestStaticExperiments:
    def test_table1(self):
        from repro.experiments import table1_reuse

        result = table1_reuse.run(CFG)
        assert len(result["taxonomy"]) == 4
        assert "Eyeriss" in table1_reuse.render(result)

    def test_table2(self):
        from repro.experiments import table2_networks

        result = table2_networks.run(CFG)
        names = [d["network"] for d in result["networks"]]
        assert names == ["ConvNet", "AlexNet", "CaffeNet", "NiN"]

    def test_table3(self):
        from repro.experiments import table3_dtypes

        result = table3_dtypes.run(CFG)
        assert len(result["dtypes"]) == 6
        assert "32b_rb26" in table3_dtypes.render(result)

    def test_table7(self):
        from repro.experiments import table7_eyeriss_scaling

        result = table7_eyeriss_scaling.run(CFG)
        out = table7_eyeriss_scaling.render(result)
        assert "1344" in out and "784KB" in out


class TestCampaignExperiments:
    def test_fig3_structure(self):
        from repro.experiments import fig3_datatype_sdc

        result = fig3_datatype_sdc.run(CFG)
        assert set(result["rates"]) == {"ConvNet", "AlexNet", "CaffeNet", "NiN"}
        nin = result["rates"]["NiN"]["FLOAT16"]
        assert nin["sdc10"][2] == 0  # no confidence classes for NiN
        assert "n/a" in fig3_datatype_sdc.render(result)

    def test_fig4_only_high_bits_sensitive(self):
        from repro.experiments import fig4_bit_position

        rates = fig4_bit_position.per_bit_rates("CaffeNet", "32b_rb10", CFG, trials_per_bit=12)
        assert set(rates) == set(range(32))
        low_bits = sum(rates[b][0] for b in range(10))
        assert low_bits == 0.0  # fraction bits never cause SDC-1

    def test_fig5(self):
        from repro.experiments import fig5_value_deviation

        result = fig5_value_deviation.run(ExperimentConfig(trials=60, seed=1))
        assert 0.0 <= result["sdc_out_of_range"] <= 1.0
        assert "fault-free ACT range" in fig5_value_deviation.render(result)

    def test_table4_covers_all_blocks(self):
        from repro.experiments import table4_value_ranges

        result = table4_value_ranges.run(CFG)
        assert len(result["ranges"]["NiN"]) == 12
        assert len(result["ranges"]["ConvNet"]) == 5

    def test_fig6(self):
        from repro.experiments import fig6_layer_sdc

        cfg = ExperimentConfig(trials=40, seed=1)
        result = fig6_layer_sdc.run(cfg)
        assert set(result["layers"]["AlexNet"]) == set(range(1, 9))
        assert result["layers"]["AlexNet"][6][3] == "FC"

    def test_fig7_lrn_attenuation(self):
        from repro.experiments import fig7_euclidean

        result = fig7_euclidean.run(ExperimentConfig(trials=60, seed=1))
        alex = list(result["distances"]["AlexNet"].values())
        nin = list(result["distances"]["NiN"].values())
        # AlexNet: sharp drop after layer-1 LRN; NiN: flat (no LRN).
        assert alex[0] > 100 * alex[1]
        assert nin[1] > 0.5 * nin[0]

    def test_table5(self):
        from repro.experiments import table5_bitwise_sdc

        result = table5_bitwise_sdc.run(ExperimentConfig(trials=80, seed=1))
        assert set(result["propagation"]) == {1, 2, 3, 4, 5}
        assert 0.0 <= result["avg_masked"] <= 1.0

    def test_table6_fit_scales_with_sdc(self):
        from repro.experiments import table6_datapath_fit

        result = table6_datapath_fit.run(ExperimentConfig(trials=60, seed=1))
        for (_, _), (fit, sdc, _) in result["fit"].items():
            if sdc == 0:
                assert fit == 0.0
            else:
                assert fit > 0.0

    def test_table8(self):
        from repro.experiments import table8_buffer_fit

        result = table8_buffer_fit.run(ExperimentConfig(trials=25, seed=1))
        comps = result["buffers"]["ConvNet"]
        assert set(comps) == {"Global Buffer", "Filter SRAM", "Img REG", "PSum REG"}

    def test_fig8(self):
        from repro.experiments import fig8_sed

        result = fig8_sed.run(ExperimentConfig(trials=64, seed=1))
        for d in result["networks"].values():
            assert 0.0 <= d["precision"] <= 1.0
            assert 0.0 <= d["recall"] <= 1.0

    def test_fig9(self):
        from repro.experiments import fig9_slh

        result = fig9_slh.run(ExperimentConfig(trials=64, seed=1))
        for data in result["dtypes"].values():
            fraction, reduction = data["coverage"]
            assert reduction[0] == 0.0 and reduction[-1] in (0.0, 1.0)
            assert len(data["overhead_curves"]["Multi"]) == 5

    def test_e2e_protection_monotone(self):
        from repro.experiments import e2e_protected_fit

        result = e2e_protected_fit.run(ExperimentConfig(trials=40, seed=1))
        for d in result["networks"].values():
            assert d["sed"]["total"] <= d["unprotected"]["total"] + 1e-12
            assert d["sed_slh"]["total"] <= d["sed"]["total"] + 1e-12
            assert d["full"]["total"] <= d["sed_slh"]["total"] + 1e-12


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "e2e", "proteus", "dmr", "mapping", "lrn", "depth",
            "propagation",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99", CFG)

    def test_cli_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "e2e" in out

    def test_cli_runs_static_experiment(self, capsys):
        assert main(["table3", "--trials", "10"]) == 0
        assert "DOUBLE" in capsys.readouterr().out

    def test_cli_unknown(self, capsys):
        assert main(["nope"]) == 2
