"""Multi-cell upset (burst) extension: flip_bits and campaign support."""

import numpy as np
import pytest

from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.fault import BufferFault, DatapathFault
from repro.dtypes import FLOAT16, FXP_16B_RB10


class TestFlipBits:
    def test_burst_one_equals_flip_bit(self, rng):
        x = FLOAT16.quantize(rng.normal(0, 2, 20))
        for bit in (0, 7, 14):
            assert np.array_equal(
                FLOAT16.flip_bits(x, bit, 1), FLOAT16.flip_bit(x, bit), equal_nan=True
            )

    def test_burst_flips_adjacent_bits(self):
        # 16b_rb10: bits 10 and 11 are worth 1 and 2 -> flipping both of
        # a zero-bit region adds 3.
        out = FXP_16B_RB10.flip_bits(np.array([0.0]), 10, 2)
        assert out[0] == 3.0

    def test_burst_clipped_at_msb(self):
        a = FXP_16B_RB10.flip_bits(np.array([0.0]), 15, 4)
        b = FXP_16B_RB10.flip_bits(np.array([0.0]), 15, 1)
        assert np.array_equal(a, b)

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            FLOAT16.flip_bits(np.array([1.0]), 0, 0)

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            FLOAT16.flip_bits(np.array([1.0]), 16, 1)

    def test_burst_involution(self, rng):
        x = FXP_16B_RB10.quantize(rng.uniform(-20, 20, 30))
        twice = FXP_16B_RB10.flip_bits(FXP_16B_RB10.flip_bits(x, 4, 3), 4, 3)
        assert np.array_equal(twice, x)


class TestBurstFaults:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            DatapathFault(0, (0,), 0, "psum", 0, burst=0)
        with pytest.raises(ValueError):
            BufferFault("layer_weight", 0, (0,), 0, burst=0)

    def test_campaign_burst_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", burst=0)

    def test_burst_campaign_runs(self):
        res = run_campaign(
            CampaignSpec(network="ConvNet", dtype="16b_rb10", n_trials=40, seed=4, burst=2)
        )
        assert res.n_trials == 40

    def test_wider_burst_not_less_severe(self):
        # At matched seeds a 4-bit burst corrupts at least as often as a
        # single flip (same sites, strictly larger perturbations).
        single = run_campaign(
            CampaignSpec(network="ConvNet", dtype="32b_rb10", n_trials=250, seed=6, burst=1)
        ).sdc_rate().p
        burst4 = run_campaign(
            CampaignSpec(network="ConvNet", dtype="32b_rb10", n_trials=250, seed=6, burst=4)
        ).sdc_rate().p
        assert burst4 >= single - 0.02
