"""Property-based tests on engine/injector invariants (hypothesis).

These fuzz the structural guarantees the fault-injection methodology
rests on: typed closure of activations, bit-exact resume-from-layer,
chain/vectorized agreement, and masked-injection identity — across
randomly drawn layer geometries, formats and fault sites.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fault import DatapathFault, sample_datapath_fault
from repro.core.injector import inject_datapath, replay_chain
from repro.dtypes import DTYPES
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, Network, ReLU, Softmax
from repro.utils.rng import child_rng

DTYPE_NAMES = sorted(DTYPES)


def random_network(seed: int, channels: int, kernel: int, stride: int) -> Network:
    """A small conv+fc network with drawn geometry and seeded weights."""
    pad = kernel // 2
    conv = Conv2D("c1", 2, channels, kernel, stride=stride, pad=pad)
    size = conv.out_shape((2, 9, 9))
    flat = int(np.prod((channels, size[1] // 2 or 1, size[2] // 2 or 1)))
    layers = [
        conv,
        ReLU("r1"),
        MaxPool2D("p1", 2) if size[1] >= 2 else ReLU("r1b"),
        Flatten("fl"),
        Dense("fc", flat if size[1] >= 2 else int(np.prod(size)), 4),
        Softmax("sm"),
    ]
    net = Network("prop", layers, input_shape=(2, 9, 9))
    g = np.random.default_rng(seed)
    for i in net.mac_layer_indices():
        layer = net.layers[i]
        w = layer.params()["weight"]
        w[:] = g.normal(0, 0.4, w.shape)
        layer.params()["bias"][:] = g.normal(0, 0.05, layer.params()["bias"].shape)
    return net


net_geometry = st.tuples(
    st.integers(0, 10_000),  # seed
    st.integers(1, 5),  # channels
    st.sampled_from([1, 3, 5]),  # kernel
    st.integers(1, 2),  # stride
)


@given(geo=net_geometry, name=st.sampled_from(DTYPE_NAMES))
@settings(max_examples=25, deadline=None)
def test_typed_forward_closure(geo, name):
    """Every recorded activation is representable in the target format."""
    dt = DTYPES[name]
    net = random_network(*geo)
    x = np.random.default_rng(geo[0] + 1).normal(0, 1, (2, 9, 9))
    res = net.forward(x, dtype=dt, record=True)
    for act in res.activations[:-1]:  # softmax output is host-side float64
        assert np.array_equal(act, dt.quantize(act), equal_nan=True)


@given(geo=net_geometry, name=st.sampled_from(DTYPE_NAMES), split=st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_resume_bit_exact_at_any_split(geo, name, split):
    dt = DTYPES[name]
    net = random_network(*geo)
    x = np.random.default_rng(geo[0] + 2).normal(0, 1, (2, 9, 9))
    full = net.forward(x, dtype=dt, record=True)
    idx = min(split, len(net.layers))
    resumed = net.forward_from(idx, full.activations[idx], dtype=dt)
    assert np.array_equal(resumed.scores, full.scores, equal_nan=True)


@given(geo=net_geometry, trial=st.integers(0, 1000), name=st.sampled_from(DTYPE_NAMES))
@settings(max_examples=30, deadline=None)
def test_masked_injection_returns_golden(geo, trial, name):
    """Injection either changes the chain value or returns the golden
    scores verbatim — never a silent third state."""
    dt = DTYPES[name]
    net = random_network(*geo)
    x = np.random.default_rng(geo[0] + 3).normal(0, 1, (2, 9, 9))
    golden = net.forward(x, dtype=dt, record=True)
    fault = sample_datapath_fault(net, dt, child_rng(geo[0], trial))
    res = inject_datapath(net, dt, fault, golden)
    if res.masked:
        assert res.scores is golden.scores or np.array_equal(
            res.scores, golden.scores, equal_nan=True
        )
    else:
        assert res.value_after != res.value_before or (
            np.isnan(res.value_after) != np.isnan(res.value_before)
        )


@given(geo=net_geometry, out_j=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_chain_matches_vectorized_in_double(geo, out_j):
    """In DOUBLE (no rounding), the FC chain replay equals the GEMM."""
    net = random_network(*geo)
    x = np.random.default_rng(geo[0] + 4).normal(0, 1, (2, 9, 9))
    golden = net.forward(x, dtype=DTYPES["DOUBLE"], record=True)
    fc_idx = net.mac_layer_indices()[-1]
    layer = net.layers[fc_idx]
    chain = layer.mac_operands(golden.activations[fc_idx], (out_j,), DTYPES["DOUBLE"])
    replayed = replay_chain(DTYPES["DOUBLE"], chain)
    assert np.isclose(replayed, golden.activations[fc_idx + 1][out_j], rtol=1e-12)


@given(
    geo=net_geometry,
    name=st.sampled_from(DTYPE_NAMES),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_injection_changes_at_most_downstream(geo, name, data):
    """A datapath fault never touches activations upstream of its layer."""
    dt = DTYPES[name]
    net = random_network(*geo)
    x = np.random.default_rng(geo[0] + 5).normal(0, 1, (2, 9, 9))
    golden = net.forward(x, dtype=dt, record=True)
    fc_idx = net.mac_layer_indices()[-1]
    bit = data.draw(st.integers(0, dt.width - 1))
    step = data.draw(st.integers(0, net.layers[fc_idx].chain_length(net.shapes[fc_idx]) - 1))
    fault = DatapathFault(fc_idx, (0,), step, "accumulator", bit)
    res = inject_datapath(net, dt, fault, golden, record=True)
    assert res.resume_index == fc_idx + 1
    if not res.masked:
        diff = res.faulty_activations[0] != golden.activations[fc_idx + 1]
        both_nan = np.isnan(res.faulty_activations[0]) & np.isnan(golden.activations[fc_idx + 1])
        assert (diff & ~both_nan).sum() <= 1
