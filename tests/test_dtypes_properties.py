"""Property-based tests (hypothesis) on the numeric-format invariants the
fault injector depends on."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import DTYPES

DTYPE_NAMES = sorted(DTYPES)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(name=st.sampled_from(DTYPE_NAMES), x=st.lists(finite_floats, min_size=1, max_size=32))
@settings(max_examples=60, deadline=None)
def test_quantize_idempotent(name, x):
    dt = DTYPES[name]
    q = dt.quantize(np.array(x))
    assert np.array_equal(dt.quantize(q), q)


@given(name=st.sampled_from(DTYPE_NAMES), x=st.lists(finite_floats, min_size=1, max_size=32))
@settings(max_examples=60, deadline=None)
def test_encode_decode_roundtrip(name, x):
    dt = DTYPES[name]
    q = dt.quantize(np.array(x))
    assert np.array_equal(dt.decode(dt.encode(q)), q)


@given(name=st.sampled_from(DTYPE_NAMES), x=finite_floats, data=st.data())
@settings(max_examples=100, deadline=None)
def test_flip_twice_is_identity(name, x, data):
    dt = DTYPES[name]
    bit = data.draw(st.integers(min_value=0, max_value=dt.width - 1))
    q = dt.quantize(np.array([x]))
    once = dt.flip_bit(q, bit)
    if np.isnan(once[0]):
        # NaN intermediates lose their payload through the float64
        # carrier (documented codec limitation).
        return
    assert np.array_equal(dt.flip_bit(once, bit), q)


@given(name=st.sampled_from(DTYPE_NAMES), x=finite_floats, data=st.data())
@settings(max_examples=100, deadline=None)
def test_flip_changes_representation(name, x, data):
    """A flip always changes the bit pattern (even if the decoded value
    can collide for NaN payloads, the encoding must differ)."""
    dt = DTYPES[name]
    bit = data.draw(st.integers(min_value=0, max_value=dt.width - 1))
    q = dt.quantize(np.array([x]))
    before = dt.encode(q)[0]
    after = before ^ (np.uint64(1) << np.uint64(bit))
    assert before != after


@given(
    name=st.sampled_from(["16b_rb10", "32b_rb10", "32b_rb26"]),
    x=st.lists(finite_floats, min_size=1, max_size=32),
)
@settings(max_examples=60, deadline=None)
def test_fixed_point_quantize_within_rails(name, x):
    dt = DTYPES[name]
    q = dt.quantize(np.array(x))
    assert (q >= dt.min_value).all() and (q <= dt.max_value).all()


@given(
    name=st.sampled_from(["16b_rb10", "32b_rb10", "32b_rb26"]),
    x=st.lists(st.floats(min_value=-40, max_value=40, allow_nan=False), min_size=1, max_size=24),
)
@settings(max_examples=60, deadline=None)
def test_fixed_point_partials_stay_within_rails(name, x):
    dt = DTYPES[name]
    chain = dt.partials(np.array(x))
    assert (chain >= dt.min_value).all() and (chain <= dt.max_value).all()


@given(
    name=st.sampled_from(DTYPE_NAMES),
    x=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=24),
)
@settings(max_examples=60, deadline=None)
def test_accumulate_equals_last_partial(name, x):
    dt = DTYPES[name]
    p = np.array(x)
    assert dt.accumulate(p) == dt.partials(p)[-1]


@given(name=st.sampled_from(DTYPE_NAMES), x=finite_floats)
@settings(max_examples=60, deadline=None)
def test_quantize_error_bounded(name, x):
    """Quantization error is bounded by the format's local resolution
    for in-range values."""
    dt = DTYPES[name]
    if not dt.is_float:
        if dt.min_value <= x <= dt.max_value:
            q = dt.quantize(np.array([x]))[0]
            assert abs(q - x) <= dt.resolution / 2 + 1e-12
    else:
        q = dt.quantize(np.array([x]))[0]
        # Relative-error bounds only hold for normal values; subnormals
        # (and underflow to zero) have absolute, not relative, spacing.
        if np.isfinite(q) and q != 0 and abs(q) >= float(np.finfo(dt.np_dtype).tiny):
            assert abs(q - x) <= abs(x) * 2.0 ** (-7)  # coarsest: fp16, 10-bit mantissa
