"""Propagation flight recorder: per-layer traces, byte parity, CLI.

The tracer's load-bearing promise is the repo's usual one, extended to a
new artifact: a trace row is a pure function of (spec, trial index), so
the trace JSONL is byte-identical across serial / ``--jobs N`` /
``--batch N`` / shared-memory / kill-resume executions — including the
batched engine's dead-trial collapse, which must report the same
masking layer as the serial path.  Everything here either asserts that
directly or exercises the machinery around it (sampling-as-identity,
resume retrace, the ``repro-obs trace`` renderings).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.checkpoint import campaign_fingerprint
from repro.core.serialize import campaign_summary
from repro.obs import cli as obs_cli
from repro.obs.tracer import (
    TraceWriter,
    default_trace_path,
    load_trace,
    trace_depth_histogram,
    trace_deviation_by_depth,
    trace_layer_matrix,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

SPEC = CampaignSpec(
    network="ConvNet", dtype="FLOAT16", n_trials=24, n_inputs=2, seed=3,
    trace_mode="all",
)

#: Every key a trace row must carry (docs/observability.md schema).
ROW_KEYS = {
    "index", "site", "block", "bit", "resume_layer", "value_before",
    "value_after", "masked_at_injection", "injected", "layers", "depth",
    "masking", "detector_layer", "outcome", "detected", "reached_output",
}


class TestTraceIdentity:
    def test_spec_validates_trace_fields(self):
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=4,
                         trace_mode="everything")
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=4,
                         trace_mode="sample", trace_every=0)

    def test_trace_mode_is_campaign_identity(self):
        base = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=24, seed=3)
        traced = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=24, seed=3,
                              trace_mode="all")
        strided = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=24, seed=3,
                               trace_mode="sample", trace_every=8)
        prints = {campaign_fingerprint(s) for s in (base, traced, strided)}
        assert len(prints) == 3

    def test_sample_stride_selects_by_index(self):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=24,
                            n_inputs=2, seed=3, trace_mode="sample", trace_every=8)
        result = run_campaign(spec)
        assert sorted(result.traces) == [0, 8, 16]
        assert all(row["index"] == i for i, row in result.traces.items())

    def test_off_mode_traces_nothing(self):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=8,
                            n_inputs=2, seed=3)
        result = run_campaign(spec)
        assert result.traces == {}

    def test_serial_jobs_batch_shm_byte_identical(self, tmp_path):
        files = {}
        for label, kwargs in {
            "serial": {},
            "jobs2": {"jobs": 2},
            "batch16": {"batch": 16},
            "shm2": {"jobs": 2, "shared_golden": True},
        }.items():
            path = tmp_path / f"{label}.trace.jsonl"
            run_campaign(SPEC, trace_path=path, **kwargs)
            files[label] = path.read_bytes()
        assert files["serial"] == files["jobs2"] == files["batch16"] == files["shm2"]

    def test_batched_dead_trial_collapse_masking_layer_matches_serial(self):
        # The batched engine retires dead trials by patching golden rows
        # back in; the first all-clean layer it reports must be the same
        # one the serial path sees, trial by trial.
        serial = run_campaign(SPEC)
        batched = run_campaign(SPEC, batch=16)
        assert sorted(serial.traces) == sorted(batched.traces)
        for index, row in serial.traces.items():
            assert batched.traces[index]["masking"] == row["masking"], index
        assert serial.traces == batched.traces

    def test_row_schema_and_masked_at_injection(self):
        result = run_campaign(SPEC)
        assert len(result.traces) == SPEC.n_trials
        saw_masked = saw_live = False
        for row in result.traces.values():
            assert set(row) == ROW_KEYS
            if row["masked_at_injection"]:
                saw_masked = True
                # The flip quantized back onto the golden word: nothing
                # ever propagated, so there is no layer story to tell.
                assert row["depth"] == 0
                assert row["layers"] == [] and row["injected"] is None
                assert row["masking"] is None
            elif row["layers"]:
                saw_live = True
                assert row["injected"]["corrupted"] >= 0
                killed = [e for e in row["layers"] if e["corrupted"] == 0]
                if killed:
                    assert row["masking"]["layer"] == killed[0]["layer"]
                    assert row["masking"]["kind"] in (
                        "relu_zero_kill", "pool_absorb", "quantization_clip")
                else:
                    assert row["masking"] is None
        assert saw_masked and saw_live

    def test_detector_layer_recorded_with_sed(self):
        spec = CampaignSpec(
            network="ConvNet", dtype="FLOAT16", n_trials=24, n_inputs=2, seed=3,
            bit=14, with_detection=True, detector_kind="sed", trace_mode="all",
        )
        result = run_campaign(spec)
        fired = [r for r in result.traces.values() if r["detector_layer"] is not None]
        assert fired, "no traced trial recorded a detector-firing layer at bit 14"
        for row in fired:
            assert row["detected"] is True
            assert any(e["layer"] == row["detector_layer"] for e in row["layers"])


class TestTraceResume:
    def _truncate_rows(self, path: Path, keep: int) -> None:
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("\n".join([lines[0]] + lines[1: 1 + keep]) + "\n",
                        encoding="utf-8")

    def test_resume_retrace_rebuilds_truncated_trace(self, tmp_path):
        ref_ck = tmp_path / "ref.jsonl"
        run_campaign(SPEC, checkpoint=ref_ck)
        ref_trace = default_trace_path(ref_ck)
        want = ref_trace.read_bytes()

        self._truncate_rows(ref_trace, keep=SPEC.n_trials // 3)
        resumed = run_campaign(SPEC, checkpoint=ref_ck, resume=True)
        assert ref_trace.read_bytes() == want
        assert resumed.traces == run_campaign(SPEC).traces
        # Checkpointed-but-untraced trials were re-run, not replayed.
        assert resumed.stats.resumed == SPEC.n_trials // 3

    def test_fingerprint_mismatch_trace_is_rebuilt(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        run_campaign(SPEC, checkpoint=ck)
        trace = default_trace_path(ck)
        want = trace.read_bytes()

        lines = trace.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * len(header["fingerprint"])
        trace.write_text("\n".join([json.dumps(header, sort_keys=True)] + lines[1:]) + "\n",
                         encoding="utf-8")
        resumed = run_campaign(SPEC, checkpoint=ck, resume=True)
        assert trace.read_bytes() == want
        # Every trial was retraced from scratch; none could be trusted.
        assert resumed.stats.resumed == 0

    def test_kill_midflight_then_resume_trace_byte_identical(self, tmp_path):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=30, seed=5,
                            trace_mode="all")
        path = tmp_path / "killed.jsonl"
        env = dict(os.environ)
        env["REPRO_CAMPAIGN_FAULT"] = "slow:*:0.05"
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.core.cli",
             "--network", "ConvNet", "--trials", "30", "--seed", "5",
             "--trace", "all",
             "--checkpoint", str(path), "--checkpoint-every", "4"],
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        trace = default_trace_path(path)
        try:
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline and not trace.exists():
                time.sleep(0.05)
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it could be killed")
            assert trace.exists(), "no trace snapshot appeared before the deadline"
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        header, partial = load_trace(trace)
        assert header is not None and len(partial) < spec.n_trials

        resumed = run_campaign(spec, checkpoint=path, resume=True)
        reference_trace = tmp_path / "reference.trace.jsonl"
        reference = run_campaign(spec, trace_path=reference_trace)
        assert trace.read_bytes() == reference_trace.read_bytes()
        assert resumed.traces == reference.traces


class TestTraceWriterAndLoad:
    def test_snapshot_roundtrip_and_stable_header(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        writer = TraceWriter(path, fingerprint="abc123", mode="all", every=16)
        writer.add_row({"index": 1, "depth": 0})
        writer.add_row({"index": 0, "depth": 2})
        writer.flush()
        header, rows = load_trace(path)
        # No path or wall-clock in the header: byte-identity across runs.
        assert set(header) == {"format", "version", "fingerprint", "trace"}
        assert header["fingerprint"] == "abc123"
        assert sorted(rows) == [0, 1]
        # Rows are republished in index order regardless of arrival.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[1])["index"] == 0

    def test_load_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        writer = TraceWriter(path, fingerprint="abc", mode="all", every=16)
        writer.add_row({"index": 0, "depth": 1})
        writer.flush()
        with open(path, "a") as fh:  # repro: noqa[RP108] — simulating the tear
            fh.write('{"index": 1, "dep')
        header, rows = load_trace(path)
        assert header is not None and sorted(rows) == [0]

    def test_load_trace_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "notatrace.jsonl"
        path.write_text('{"format": "something-else"}\n')
        header, rows = load_trace(path)
        assert header is None and rows == {}


class TestTraceSummaryAndManifest:
    def test_campaign_summary_trace_section(self):
        result = run_campaign(SPEC)
        summary = campaign_summary(result)
        assert summary["trace"] == {"mode": "all", "every": 16,
                                    "rows": SPEC.n_trials}
        untraced = run_campaign(
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=8,
                         n_inputs=2, seed=3))
        assert "trace" not in campaign_summary(untraced)

    def test_manifest_records_batch_and_trace_config(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        run_campaign(SPEC, checkpoint=ck, batch=4)
        manifest = json.loads(
            ck.with_name(ck.name + ".manifest.json").read_text())
        meta = manifest["run"]
        assert meta["batch"] == 4
        assert meta["trace"]["mode"] == "all"
        assert meta["trace"]["every"] == SPEC.trace_every
        assert meta["trace"]["path"] == str(default_trace_path(ck))

    def test_diff_flags_trace_and_batch_as_execution_not_divergence(self, tmp_path, capsys):
        ck_a, ck_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_campaign(SPEC, checkpoint=ck_a)
        run_campaign(SPEC, checkpoint=ck_b, batch=4, jobs=2)
        manifest_a = str(ck_a.with_name(ck_a.name + ".manifest.json"))
        manifest_b = str(ck_b.with_name(ck_b.name + ".manifest.json"))
        # Different batch/jobs/trace-path: still exit 0 (no fact diverges),
        # but the knob table calls the difference out.
        assert obs_cli.main(["diff", manifest_a, manifest_b]) == 0
        out = capsys.readouterr().out
        assert "execution knobs differ" in out
        assert "batch" in out


class TestTraceCli:
    @pytest.fixture()
    def traced_run(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        run_campaign(SPEC, checkpoint=ck)
        return ck

    def test_render_aggregate_from_trace_file(self, traced_run, capsys):
        assert obs_cli.main(["trace", str(default_trace_path(traced_run))]) == 0
        out = capsys.readouterr().out
        assert "propagation trace" in out
        assert "depth" in out and "killed" in out

    def test_render_resolves_from_manifest_and_checkpoint(self, traced_run, capsys):
        manifest = traced_run.with_name(traced_run.name + ".manifest.json")
        for source in (manifest, traced_run):
            assert obs_cli.main(["trace", str(source)]) == 0
            assert "propagation trace" in capsys.readouterr().out

    def test_render_single_trial_narrative(self, traced_run, capsys):
        assert obs_cli.main(
            ["trace", str(default_trace_path(traced_run)), "--trial", "0"]) == 0
        out = capsys.readouterr().out
        assert "traced trial" in out and "outcome" in out

    def test_untraced_trial_exits_one(self, tmp_path, capsys):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=16,
                            n_inputs=2, seed=3, trace_mode="sample", trace_every=8)
        ck = tmp_path / "ck.jsonl"
        run_campaign(spec, checkpoint=ck)
        assert obs_cli.main(
            ["trace", str(default_trace_path(ck)), "--trial", "3"]) == 1
        assert "not in the traced subset" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert obs_cli.main(["trace", str(tmp_path / "nope.trace.jsonl")]) == 2
        assert "repro-obs" in capsys.readouterr().err

    def test_untraced_campaign_exits_two(self, tmp_path, capsys):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=8,
                            n_inputs=2, seed=3)
        ck = tmp_path / "ck.jsonl"
        run_campaign(spec, checkpoint=ck)
        assert obs_cli.main(
            ["trace", str(ck.with_name(ck.name + ".manifest.json"))]) == 2
        assert "trace" in capsys.readouterr().err


class TestTraceAggregations:
    ROWS = {
        0: {"depth": 0, "masked_at_injection": True, "layers": []},
        1: {"depth": 2, "layers": [
            {"layer": 1, "name": "relu1", "kind": "relu", "corrupted": 4,
             "max_abs_dev": 2.0},
            {"layer": 2, "name": "pool1", "kind": "pool", "corrupted": 1,
             "max_abs_dev": 1.0},
            {"layer": 3, "name": "relu2", "kind": "relu", "corrupted": 0,
             "max_abs_dev": 0.0},
        ]},
        2: {"depth": 1, "layers": [
            {"layer": 1, "name": "relu1", "kind": "relu", "corrupted": 2,
             "max_abs_dev": "inf"},
            {"layer": 2, "name": "pool1", "kind": "pool", "corrupted": 0,
             "max_abs_dev": 0.0},
        ]},
    }

    def test_depth_histogram(self):
        assert trace_depth_histogram(self.ROWS) == {0: 1, 1: 1, 2: 1}

    def test_layer_matrix(self):
        matrix = trace_layer_matrix(self.ROWS)
        assert matrix[1] == {"name": "relu1", "kind": "relu",
                             "entered": 2, "killed": 0, "survived": 2}
        assert matrix[2]["entered"] == 2 and matrix[2]["killed"] == 1
        assert matrix[3]["killed"] == 1

    def test_deviation_by_depth_skips_nonfinite(self):
        table = trace_deviation_by_depth(self.ROWS)
        # Step 1: two live traces, but the "inf" deviation is excluded
        # from the finite aggregates.
        assert table[1]["live"] == 2
        assert table[1]["max_abs_dev"] == 2.0
        assert table[2] == {"live": 1, "max_abs_dev": 1.0, "mean_abs_dev": 1.0}


class TestPropagationExperiment:
    def test_registered_and_runs(self):
        from repro.experiments import ext_propagation
        from repro.experiments.common import ExperimentConfig
        from repro.experiments.runner import EXPERIMENTS

        assert EXPERIMENTS["propagation"] is ext_propagation
        cfg = ExperimentConfig(trials=8, seed=123)
        result = ext_propagation.run(cfg)
        assert set(result["networks"]) == set(ext_propagation.PROP_NETWORKS)
        for data in result["networks"].values():
            assert data["traced"] == cfg.trials
            locus_total = (data["masked_at_injection"]
                           + sum(data["masking_locus"].values())
                           + data["reached_output"])
            assert locus_total == cfg.trials
        rendering = ext_propagation.render(result)
        assert "masking locus" in rendering and "ConvNet" in rendering
