"""Release gate: obligation specs, recipe executors, runner, CLI.

The gate is release-critical tooling, so the tests treat it the way the
gate treats the repo: the YAML subset parser is cross-checked against
PyYAML on every shipped pack, spec validation is probed with malformed
packs, and the tamper-detection property — a deliberately violated
invariant must fail ``repro-gate check`` with a pointer to the failing
evidence — is exercised end to end through the real CLI against a
sandbox spec directory.
"""

from __future__ import annotations

import datetime as dt
import json
import sys
import textwrap
from pathlib import Path

import pytest

from repro.gate import cli as gate_cli
from repro.gate.evidence import (
    EVIDENCE_FORMAT,
    build_manifest,
    load_manifest,
    render_manifest,
    write_manifest,
)
from repro.gate.recipes import run_recipe
from repro.gate.runner import check_obligations, select_obligations
from repro.gate.spec import (
    Obligation,
    RecipeSpec,
    SpecError,
    Waiver,
    load_pack,
    load_specs,
)
from repro.gate.yamlio import MiniYamlError, _mini_loads

REPO_ROOT = Path(__file__).resolve().parents[1]
SPEC_DIR = REPO_ROOT / "obligations"


def _pack(tmp_path: Path, body: str, name: str = "pack.yaml") -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


MINIMAL_PACK = """\
format: repro-obligations
version: 1
pack: sandbox
obligations:
  - id: OBL-{id}
    title: {title}
    severity: {severity}
    invariant: {invariant}
    recipes:
      - type: command
        argv: [{python}, -c, "raise SystemExit({exit})"]
        timeout: 60
"""


def _command_pack(tmp_path, *, obl_id="SANDBOX", exit_code=0,
                  severity="release-blocking", name="pack.yaml"):
    return _pack(tmp_path, MINIMAL_PACK.format(
        id=obl_id, title="sandbox obligation", severity=severity,
        invariant="the sandbox command exits zero",
        python=sys.executable, exit=exit_code), name=name)


class TestMiniYaml:
    def test_matches_pyyaml_on_every_shipped_pack(self):
        yaml = pytest.importorskip("yaml")
        packs = sorted(SPEC_DIR.glob("*.yaml"))
        assert packs, "shipped obligation packs must exist"
        for pack in packs:
            text = pack.read_text(encoding="utf-8")
            assert _mini_loads(text) == yaml.safe_load(text), pack.name

    def test_scalars_lists_and_nesting(self):
        doc = _mini_loads(textwrap.dedent("""\
            a: 1
            b: 2.5
            c: true
            d: null
            e: 'quoted: text'
            flow: [x, 2, false]
            block:
              - first
              - second
            items:
              - id: one
                n: 1
              - id: two
                n: 2
            """))
        assert doc == {
            "a": 1, "b": 2.5, "c": True, "d": None, "e": "quoted: text",
            "flow": ["x", 2, False],
            "block": ["first", "second"],
            "items": [{"id": "one", "n": 1}, {"id": "two", "n": 2}],
        }

    def test_multiline_plain_scalar_folds(self):
        doc = _mini_loads("key:\n  first line\n  second line\n")
        assert doc == {"key": "first line second line"}

    def test_comments_and_same_indent_sequences(self):
        doc = _mini_loads("# header\nitems:\n- a  # trailing\n- b\n")
        assert doc == {"items": ["a", "b"]}

    def test_rejects_tabs_duplicates_and_bare_inline_maps(self):
        with pytest.raises(MiniYamlError):
            _mini_loads("a:\n\tb: 1\n")
        with pytest.raises(MiniYamlError):
            _mini_loads("a: 1\na: 2\n")
        with pytest.raises(MiniYamlError):
            _mini_loads("items:\n  - id:\n      nested: 1\n")


class TestSpecLoading:
    def test_shipped_specs_load_sorted_and_blocking(self):
        obligations = load_specs(SPEC_DIR)
        ids = [o.id for o in obligations]
        assert ids == sorted(ids)
        assert "OBL-IDENTITY-PARITY" in ids
        assert all(o.blocking for o in obligations)
        assert all(o.recipes for o in obligations)

    def test_command_pack_round_trip(self, tmp_path):
        path = _command_pack(tmp_path)
        (obl,) = load_pack(path)
        assert obl.id == "OBL-SANDBOX"
        assert obl.recipes[0].type == "command"
        assert obl.recipes[0].timeout == 60.0

    @pytest.mark.parametrize("mutation, needle", [
        ("format: repro-obligations", "format: wrong"),
        ("version: 1", "version: 99"),
        ("pack: sandbox", "pack:"),
        ("id: OBL-SANDBOX", "id: not-an-id"),
        ("severity: release-blocking", "severity: whenever"),
        ("title: sandbox obligation", "bogus_key: sandbox obligation"),
    ])
    def test_malformed_pack_raises_spec_error(self, tmp_path, mutation, needle):
        good = textwrap.dedent(MINIMAL_PACK.format(
            id="SANDBOX", title="sandbox obligation",
            severity="release-blocking",
            invariant="the sandbox command exits zero",
            python=sys.executable, exit=0))
        path = tmp_path / "bad.yaml"
        path.write_text(good.replace(mutation, needle), encoding="utf-8")
        with pytest.raises(SpecError):
            load_pack(path)

    def test_duplicate_ids_across_packs_rejected(self, tmp_path):
        _command_pack(tmp_path, name="a.yaml")
        _command_pack(tmp_path, name="b.yaml")
        with pytest.raises(SpecError, match="duplicate obligation id"):
            load_specs(tmp_path)

    def test_waiver_parsing_and_expiry(self, tmp_path):
        path = _pack(tmp_path, f"""\
            format: repro-obligations
            version: 1
            pack: sandbox
            obligations:
              - id: OBL-WAIVED
                title: waived obligation
                invariant: known-red until the fix lands
                waiver:
                  reason: tracking issue 42
                  expires: "2026-09-01"
                  by: maintainer
                recipes:
                  - type: command
                    argv: [{sys.executable}, -c, "raise SystemExit(1)"]
            """)
        (obl,) = load_pack(path)
        assert obl.waiver is not None
        assert obl.waiver.active(dt.date(2026, 8, 31))
        assert obl.waiver.active(dt.date(2026, 9, 1))  # inclusive expiry
        assert not obl.waiver.active(dt.date(2026, 9, 2))

    def test_bad_waiver_expiry_rejected_eagerly(self):
        with pytest.raises(SpecError, match="YYYY-MM-DD"):
            Waiver(reason="r", expires="someday").expiry_date()

    def test_select_obligations(self):
        obligations = load_specs(SPEC_DIR)
        picked = select_obligations(obligations, ["OBL-LINT-CLEAN", "OBL-LINT-CLEAN"])
        assert [o.id for o in picked] == ["OBL-LINT-CLEAN"]
        assert select_obligations(obligations, None) == obligations
        with pytest.raises(KeyError, match="OBL-NOPE"):
            select_obligations(obligations, ["OBL-NOPE"])


def _bench_file(root: Path, gauges: dict) -> Path:
    bench_dir = root / "benchmarks"
    bench_dir.mkdir(exist_ok=True)
    path = bench_dir / "BENCH_2026-08-08.json"
    path.write_text(json.dumps({
        "format": "repro-bench-metrics", "version": 1, "date": "2026-08-08",
        "snapshot": {"counters": {}, "gauges": gauges, "histograms": {}, "timing": {}},
    }), encoding="utf-8")
    return path


class TestRecipes:
    def test_command_pass_and_fail(self, tmp_path):
        ok = run_recipe(RecipeSpec("command", {
            "argv": [sys.executable, "-c", "raise SystemExit(0)"]}, 60.0), tmp_path)
        assert ok["status"] == "pass" and "exit 0" in ok["pointer"]
        bad = run_recipe(RecipeSpec("command", {
            "argv": [sys.executable, "-c", "raise SystemExit(3)"]}, 60.0), tmp_path)
        assert bad["status"] == "fail" and "exit 3" in bad["pointer"]

    def test_command_timeout_is_an_error(self, tmp_path):
        out = run_recipe(RecipeSpec("command", {
            "argv": [sys.executable, "-c", "import time; time.sleep(30)"]}, 0.3), tmp_path)
        assert out["status"] == "error"
        assert "timed out" in out["pointer"]

    def test_bench_floor_holds(self, tmp_path):
        path = _bench_file(tmp_path, {"grp/g16_speedup": 2.4, "grp/g32_speedup": 3.1})
        out = run_recipe(RecipeSpec("bench", {"checks": [
            {"gauge": "grp/g*_speedup", "agg": "max", "op": ">=", "value": 2.0},
        ]}, 60.0), tmp_path)
        assert out["status"] == "pass"
        assert out["evidence"]["file"] == str(path)
        assert out["evidence"]["checks"][0]["observed"] == 3.1

    def test_bench_floor_violated_points_at_snapshot(self, tmp_path):
        path = _bench_file(tmp_path, {"sed/avg_precision": 0.5})
        out = run_recipe(RecipeSpec("bench", {"checks": [
            {"gauge": "sed/avg_precision", "agg": "min", "op": ">=", "value": 0.85},
        ]}, 60.0), tmp_path)
        assert out["status"] == "fail"
        assert path.name in out["pointer"] and "violated" in out["pointer"]

    def test_bench_missing_gauge_without_generator_fails(self, tmp_path):
        _bench_file(tmp_path, {"other/gauge": 1.0})
        out = run_recipe(RecipeSpec("bench", {"checks": [
            {"gauge": "sed/avg_recall", "op": ">=", "value": 0.6},
        ]}, 60.0), tmp_path)
        assert out["status"] == "fail"
        assert out["evidence"]["checks"][0]["reason"] == "no matching gauge"

    def test_bench_no_snapshot_is_an_error(self, tmp_path):
        out = run_recipe(RecipeSpec("bench", {"checks": [
            {"gauge": "x", "op": ">=", "value": 1.0},
        ]}, 60.0), tmp_path)
        assert out["status"] == "error"
        assert "no benchmark snapshot" in out["pointer"]

    def test_obs_diff_missing_runs_is_an_error(self, tmp_path):
        out = run_recipe(RecipeSpec("obs_diff", {
            "run_a": "a.json", "run_b": "b.json"}, 60.0), tmp_path)
        assert out["status"] == "error"
        assert "missing" in out["pointer"]

    def test_unknown_recipe_type_is_an_error(self, tmp_path):
        out = run_recipe(RecipeSpec("pytest", {}, 60.0), tmp_path)
        assert out["status"] == "error"  # pytest recipe without nodes


def _obligation(obl_id, exit_code, *, severity="release-blocking", waiver=None):
    return Obligation(
        id=obl_id, title=f"{obl_id} title", invariant="command exits zero",
        severity=severity, waiver=waiver,
        recipes=(RecipeSpec("command", {
            "argv": [sys.executable, "-c", f"raise SystemExit({exit_code})"]}, 60.0),),
    )


class TestRunner:
    def test_all_pass(self, tmp_path):
        report = check_obligations(
            [_obligation("OBL-A", 0), _obligation("OBL-B", 0)], tmp_path)
        assert report["ok"] is True
        assert report["counts"] == {"total": 2, "passed": 2, "failed": 0, "waived": 0}

    def test_blocking_failure_clears_ok(self, tmp_path):
        report = check_obligations(
            [_obligation("OBL-A", 0), _obligation("OBL-B", 2)], tmp_path)
        assert report["ok"] is False
        assert report["blocking_failures"] == ["OBL-B"]

    def test_advisory_failure_does_not_block(self, tmp_path):
        report = check_obligations(
            [_obligation("OBL-A", 1, severity="advisory")], tmp_path)
        assert report["ok"] is True
        assert report["counts"]["failed"] == 1

    def test_active_waiver_shields_and_is_recorded(self, tmp_path):
        waiver = Waiver(reason="tracked", expires="2026-09-01")
        report = check_obligations(
            [_obligation("OBL-A", 1, waiver=waiver)], tmp_path,
            today=dt.date(2026, 8, 8))
        assert report["ok"] is True
        (entry,) = report["obligations"]
        assert entry["verdict"] == "waived"
        assert entry["waiver"]["reason"] == "tracked"

    def test_expired_waiver_does_not_shield(self, tmp_path):
        waiver = Waiver(reason="tracked", expires="2026-09-01")
        report = check_obligations(
            [_obligation("OBL-A", 1, waiver=waiver)], tmp_path,
            today=dt.date(2026, 9, 2))
        assert report["ok"] is False
        (entry,) = report["obligations"]
        assert entry["verdict"] == "fail"
        assert entry["waiver_expired"]["expires"] == "2026-09-01"

    def test_parallel_matches_inline(self, tmp_path):
        obligations = [_obligation("OBL-A", 0), _obligation("OBL-B", 1),
                       _obligation("OBL-C", 0)]
        inline = check_obligations(obligations, tmp_path, jobs=1)
        pooled = check_obligations(obligations, tmp_path, jobs=2)
        strip = lambda rep: [  # noqa: E731 - local comparator
            (e["id"], e["verdict"], [r["status"] for r in e["recipes"]])
            for e in rep["obligations"]
        ]
        assert strip(inline) == strip(pooled)

    def test_streaming_outcomes(self, tmp_path):
        seen = []
        check_obligations([_obligation("OBL-A", 0)], tmp_path,
                          on_outcome=lambda o: seen.append(o["obligation"]))
        assert seen == ["OBL-A"]

    def test_bench_recipes_run_exclusively_after_the_pool(self, tmp_path):
        # Timing benches must not share cores with pooled recipes: the
        # bench outcome streams last even though it is declared first,
        # and the outcomes still land on the right obligations in order.
        _bench_file(tmp_path, {"g/x": 3.0})
        bench = Obligation(
            id="OBL-BENCH", title="t", invariant="i", severity="release-blocking",
            recipes=(RecipeSpec("bench", {"checks": [
                {"gauge": "g/x", "op": ">=", "value": 1.0}]}, 60.0),))
        seen = []
        report = check_obligations(
            [bench, _obligation("OBL-CMD", 0)], tmp_path,
            on_outcome=lambda o: seen.append(o["obligation"]))
        assert seen == ["OBL-CMD", "OBL-BENCH"]
        assert report["ok"] is True
        by_id = {e["id"]: e for e in report["obligations"]}
        assert by_id["OBL-BENCH"]["recipes"][0]["type"] == "bench"
        assert by_id["OBL-CMD"]["recipes"][0]["type"] == "command"


class TestEvidence:
    def test_manifest_round_trip(self, tmp_path):
        report = check_obligations([_obligation("OBL-A", 1)], tmp_path)
        manifest = build_manifest(report, spec_dir=tmp_path, argv=["check", "--all"])
        assert manifest["format"] == EVIDENCE_FORMAT
        assert manifest["status"] == "fail"
        assert manifest["env"].get("python")
        out = tmp_path / "evidence.json"
        write_manifest(out, manifest)
        assert load_manifest(out) == json.loads(json.dumps(manifest))

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "not-evidence.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError, match="repro-evidence-manifest"):
            load_manifest(path)

    def test_render_shows_failures_and_waivers(self, tmp_path):
        waiver = Waiver(reason="tracked", expires="2026-09-01")
        report = check_obligations(
            [_obligation("OBL-BAD", 1), _obligation("OBL-WVD", 1, waiver=waiver)],
            tmp_path, today=dt.date(2026, 8, 8))
        text = render_manifest(build_manifest(report, spec_dir=tmp_path))
        assert "OBL-BAD" in text and "FAIL" in text
        assert "waived — tracked" in text


class TestCli:
    def test_list_and_explain(self, tmp_path, capsys):
        _command_pack(tmp_path)
        assert gate_cli.main(["list", "--specs", str(tmp_path)]) == 0
        assert "OBL-SANDBOX" in capsys.readouterr().out
        assert gate_cli.main(["explain", "OBL-SANDBOX", "--specs", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "invariant" in out and "sandbox command exits zero" in out

    def test_check_requires_a_selection(self, tmp_path, capsys):
        _command_pack(tmp_path)
        assert gate_cli.main(["check", "--specs", str(tmp_path)]) == 2
        assert "--all" in capsys.readouterr().err

    def test_check_green_sandbox_writes_manifest(self, tmp_path, capsys):
        _command_pack(tmp_path, exit_code=0)
        out = tmp_path / "evidence.json"
        code = gate_cli.main(["check", "--all", "--specs", str(tmp_path),
                              "--root", str(tmp_path), "--out", str(out)])
        assert code == 0
        manifest = load_manifest(out)
        assert manifest["status"] == "pass"
        assert manifest["obligations"][0]["id"] == "OBL-SANDBOX"

    def test_tamper_detection_fails_with_evidence_pointer(self, tmp_path, capsys):
        # The acceptance probe: violate an invariant on purpose (a bench
        # floor above the measured gauge) and require the gate to exit
        # nonzero with a trace to the failing evidence.
        spec_dir = tmp_path / "obligations"
        spec_dir.mkdir()
        bench = _bench_file(tmp_path, {"sed/avg_precision": 0.42})
        _pack(spec_dir, """\
            format: repro-obligations
            version: 1
            pack: sandbox
            obligations:
              - id: OBL-TAMPERED
                title: deliberately violated floor
                invariant: precision stays above 0.85
                recipes:
                  - type: bench
                    checks:
                      - gauge: sed/avg_precision
                        agg: min
                        op: ">="
                        value: 0.85
            """)
        out = tmp_path / "evidence.json"
        code = gate_cli.main(["check", "--all", "--specs", str(spec_dir),
                              "--root", str(tmp_path), "--out", str(out)])
        assert code == 1
        captured = capsys.readouterr()
        assert "OBL-TAMPERED" in captured.err
        manifest = load_manifest(out)
        assert manifest["status"] == "fail"
        assert manifest["blocking_failures"] == ["OBL-TAMPERED"]
        (entry,) = manifest["obligations"]
        (recipe,) = entry["recipes"]
        assert recipe["status"] == "fail"
        assert bench.name in recipe["pointer"]  # the trace to the evidence
        assert recipe["evidence"]["checks"][0]["observed"] == 0.42

    def test_evidence_renders_written_manifest(self, tmp_path, capsys):
        _command_pack(tmp_path, exit_code=1)
        out = tmp_path / "evidence.json"
        assert gate_cli.main(["check", "--all", "--specs", str(tmp_path),
                              "--root", str(tmp_path), "--out", str(out)]) == 1
        capsys.readouterr()
        assert gate_cli.main(["evidence", str(out), "--id", "OBL-SANDBOX"]) == 0
        assert "OBL-SANDBOX" in capsys.readouterr().out

    def test_spec_error_exits_2(self, tmp_path, capsys):
        (tmp_path / "broken.yaml").write_text("format: wrong\n", encoding="utf-8")
        assert gate_cli.main(["list", "--specs", str(tmp_path)]) == 2
        assert "repro-gate" in capsys.readouterr().err


class TestSelfcheck:
    def _workflow(self, tmp_path, text):
        path = tmp_path / "ci.yml"
        path.write_text(text, encoding="utf-8")
        return path

    def test_repo_specs_and_workflows_are_consistent(self):
        workflows = sorted((REPO_ROOT / ".github" / "workflows").glob("*.yml"))
        assert gate_cli.selfcheck(SPEC_DIR, workflows) == []

    def test_unknown_id_reference_is_reported(self, tmp_path):
        spec_dir = tmp_path / "obligations"
        spec_dir.mkdir()
        _command_pack(spec_dir)
        wf = self._workflow(tmp_path, "run: repro-gate check --all  # OBL-GHOST\n")
        problems = gate_cli.selfcheck(spec_dir, [wf])
        assert any("OBL-GHOST" in p for p in problems)

    def test_ungated_blocking_obligation_is_reported(self, tmp_path):
        spec_dir = tmp_path / "obligations"
        spec_dir.mkdir()
        _command_pack(spec_dir)
        wf = self._workflow(tmp_path, "run: echo no gate here\n")
        problems = gate_cli.selfcheck(spec_dir, [wf])
        assert any("no workflow invokes" in p for p in problems)
        assert any("OBL-SANDBOX is not gated" in p for p in problems)

    def test_explicit_id_selection_counts_as_gated(self, tmp_path):
        spec_dir = tmp_path / "obligations"
        spec_dir.mkdir()
        _command_pack(spec_dir)
        wf = self._workflow(tmp_path, "run: repro-gate check OBL-SANDBOX\n")
        assert gate_cli.selfcheck(spec_dir, [wf]) == []
