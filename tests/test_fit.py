"""FIT-rate calculation (Equation 1)."""

import pytest

from repro.accel import EYERISS_16NM, DatapathModel
from repro.core.fit import (
    ISO26262_SOC_FIT_BUDGET,
    R_RAW_FIT_PER_MBIT_16NM,
    buffer_fit,
    datapath_fit,
    eyeriss_total_fit,
    fit_rate,
)


class TestEquation1:
    def test_linear_in_size_and_sdc(self):
        base = fit_rate(1.0, 0.1)
        assert fit_rate(2.0, 0.1) == pytest.approx(2 * base)
        assert fit_rate(1.0, 0.2) == pytest.approx(2 * base)

    def test_constants(self):
        assert R_RAW_FIT_PER_MBIT_16NM == pytest.approx(20.49)
        assert ISO26262_SOC_FIT_BUDGET == 10.0

    def test_zero_sdc_zero_fit(self):
        assert fit_rate(100.0, 0.0) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            fit_rate(-1.0, 0.5)
        with pytest.raises(ValueError):
            fit_rate(1.0, 1.5)


class TestDatapathFit:
    def test_single_probability_applies_to_all_classes(self):
        dp = DatapathModel(n_pes=1000, data_width=16)
        components = datapath_fit(dp, {"datapath": 0.05})
        assert len(components) == 5
        total = sum(c.fit for c in components)
        assert total == pytest.approx(fit_rate(dp.size_mbit, 0.05))

    def test_per_class_probabilities(self):
        dp = DatapathModel(n_pes=10, data_width=16)
        probs = {
            "weight_operand": 0.1,
            "input_operand": 0.0,
            "product": 0.0,
            "psum": 0.0,
            "accumulator": 0.0,
        }
        components = datapath_fit(dp, probs)
        nonzero = [c for c in components if c.fit > 0]
        assert len(nonzero) == 1 and nonzero[0].component == "weight_operand"

    def test_missing_class_raises(self):
        dp = DatapathModel(n_pes=10, data_width=16)
        with pytest.raises(KeyError):
            datapath_fit(dp, {"weight_operand": 0.1})

    def test_width_dependence(self):
        sdc = {"datapath": 0.01}
        fit16 = sum(c.fit for c in datapath_fit(DatapathModel(100, 16), sdc))
        fit32 = sum(c.fit for c in datapath_fit(DatapathModel(100, 32), sdc))
        assert fit32 == pytest.approx(2 * fit16)


class TestBufferFit:
    def test_buffer_fit(self):
        spec = EYERISS_16NM.global_buffer
        c = buffer_fit(spec, 0.5)
        assert c.fit == pytest.approx(R_RAW_FIT_PER_MBIT_16NM * spec.size_mbit * 0.5)
        assert c.component == "Global Buffer"


class TestEyerissTotal:
    BUF_SDC = {"Global Buffer": 0.1, "Filter SRAM": 0.05, "Img REG": 0.0, "PSum REG": 0.01}

    def test_total_is_sum(self):
        result = eyeriss_total_fit(EYERISS_16NM, {"datapath": 0.02}, self.BUF_SDC)
        parts = [v for k, v in result.items() if k != "total"]
        assert result["total"] == pytest.approx(sum(parts))

    def test_detector_scales_everything(self):
        base = eyeriss_total_fit(EYERISS_16NM, {"datapath": 0.02}, self.BUF_SDC)
        protected = eyeriss_total_fit(
            EYERISS_16NM, {"datapath": 0.02}, self.BUF_SDC, detector_recall=0.9
        )
        assert protected["total"] == pytest.approx(0.1 * base["total"])

    def test_buffer_fit_dominates_datapath(self):
        # Paper section 5.2.1: buffer FIT is orders of magnitude above
        # datapath FIT at comparable SDC probabilities.
        result = eyeriss_total_fit(
            EYERISS_16NM, {"datapath": 0.05}, {k: 0.05 for k in self.BUF_SDC}
        )
        buffers = result["Global Buffer"] + result["Filter SRAM"]
        assert buffers > 50 * result["datapath"]

    def test_missing_buffer_raises(self):
        with pytest.raises(KeyError):
            eyeriss_total_fit(EYERISS_16NM, {"datapath": 0.0}, {"Global Buffer": 0.1})

    def test_invalid_recall(self):
        with pytest.raises(ValueError):
            eyeriss_total_fit(EYERISS_16NM, {"datapath": 0.0}, self.BUF_SDC, detector_recall=1.5)
