"""SDC classification (section 4.6) and CI statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.outcome import SDC_CLASSES, classify_outcome
from repro.core.stats import RateEstimate, combine_counts, wilson_interval
from repro.nn.network import InferenceResult


def result_with(scores):
    return InferenceResult(scores=np.asarray(scores, dtype=np.float64))


class TestClassify:
    def test_identical_scores_masked(self):
        g = result_with([0.1, 0.7, 0.2])
        o = classify_outcome(g, g.scores.copy(), has_confidence=True)
        assert o.masked and not o.sdc1 and not o.sdc5

    def test_sdc1_top1_changed(self):
        g = result_with([0.1, 0.7, 0.2])
        o = classify_outcome(g, np.array([0.8, 0.1, 0.1]), has_confidence=True)
        assert o.sdc1 and not o.masked

    def test_sdc5_requires_leaving_top5(self):
        g = result_with([0.30, 0.20, 0.15, 0.12, 0.11, 0.07, 0.05])
        # new top1 = index 4: still within golden top-5 -> SDC-1 but not SDC-5
        faulty = np.array([0.1, 0.1, 0.1, 0.1, 0.4, 0.1, 0.1])
        o = classify_outcome(g, faulty, has_confidence=True)
        assert o.sdc1 and not o.sdc5
        # new top1 = index 6: outside golden top-5 -> SDC-5
        faulty2 = np.array([0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.4])
        o2 = classify_outcome(g, faulty2, has_confidence=True)
        assert o2.sdc5

    def test_sdc10_sdc20_thresholds(self):
        g = result_with([0.5, 0.5])
        o = classify_outcome(g, np.array([0.57, 0.43]), has_confidence=True)
        assert o.sdc10 and not o.sdc20  # 14% relative change
        o2 = classify_outcome(g, np.array([0.52, 0.48]), has_confidence=True)
        assert not o2.sdc10
        o3 = classify_outcome(g, np.array([0.65, 0.35]), has_confidence=True)
        assert o3.sdc20

    def test_confidence_classes_none_without_softmax(self):
        g = result_with([3.0, 1.0])
        o = classify_outcome(g, np.array([1.0, 3.0]), has_confidence=False)
        assert o.sdc10 is None and o.sdc20 is None
        assert o.sdc1

    def test_nan_scores_are_sdc(self):
        g = result_with([0.6, 0.4])
        o = classify_outcome(g, np.array([np.nan, np.nan]), has_confidence=True)
        assert o.sdc1 and o.sdc5 and o.sdc10 and o.sdc20

    def test_partial_nan_poisons_ranking(self):
        # np.argmax treats NaN as the maximum: a NaN score hijacks the
        # top-1 slot, exactly like a naive max-scan over IEEE floats.
        g = result_with([0.6, 0.3, 0.1])
        o = classify_outcome(g, np.array([0.7, np.nan, 0.1]), has_confidence=True)
        assert o.sdc1

    def test_masked_flag_short_circuits(self):
        g = result_with([0.6, 0.4])
        o = classify_outcome(g, np.array([0.4, 0.6]), has_confidence=True, masked=True)
        assert o.masked and not o.sdc1

    def test_flag_lookup(self):
        g = result_with([0.6, 0.4])
        o = classify_outcome(g, np.array([0.4, 0.6]), has_confidence=True)
        assert o.flag("sdc1") is True
        with pytest.raises(KeyError):
            o.flag("sdc42")

    def test_benign_property(self):
        g = result_with([0.6, 0.4])
        o = classify_outcome(g, np.array([0.58, 0.42]), has_confidence=True)
        assert o.benign and not o.sdc1

    def test_sdc_classes_constant(self):
        assert SDC_CLASSES == ("sdc1", "sdc5", "sdc10", "sdc20")


class TestRateEstimate:
    def test_point_estimate(self):
        assert RateEstimate(3, 10).p == 0.3
        assert RateEstimate(0, 0).p == 0.0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            RateEstimate(5, 3)
        with pytest.raises(ValueError):
            RateEstimate(-1, 3)

    def test_ci_shrinks_with_n(self):
        small = RateEstimate(5, 10)
        big = RateEstimate(500, 1000)
        assert big.ci95_halfwidth < small.ci95_halfwidth

    def test_ci_clipped_to_unit_interval(self):
        lo, hi = RateEstimate(1, 10).ci95
        assert 0.0 <= lo <= hi <= 1.0

    def test_zero_trials(self):
        # n=0 means "anywhere in [0, 1]": half the unit interval, never a
        # fake certainty of 0.0 (that would stop a stratum before its
        # first trial).
        r = RateEstimate(0, 0)
        assert r.ci95_halfwidth == 0.5

    def test_degenerate_counts_keep_positive_width(self):
        # 0 or n successes collapse the Wald width to 0.0; the estimator
        # must fall back to Wilson so one unanimous trial cannot claim an
        # exactly-known rate (the early-stopping soundness fix).
        for est in (RateEstimate(0, 1), RateEstimate(1, 1), RateEstimate(0, 50)):
            assert est.ci95_halfwidth > 0.0
            lo, hi = wilson_interval(est.successes, est.n)
            assert est.ci95_halfwidth == pytest.approx((hi - lo) / 2.0)
        # Non-degenerate counts keep the paper's Wald error bar.
        mixed = RateEstimate(3, 10)
        assert mixed.ci95_halfwidth == pytest.approx(
            1.959963984540054 * np.sqrt(0.3 * 0.7 / 10)
        )

    def test_wilson95_halfwidth_matches_interval(self):
        est = RateEstimate(7, 100)
        lo, hi = est.wilson95()
        assert est.wilson95_halfwidth == pytest.approx((hi - lo) / 2.0)
        assert RateEstimate(0, 0).wilson95_halfwidth == 0.5

    def test_str_format(self):
        assert "n=100" in str(RateEstimate(7, 100))

    def test_combine(self):
        pooled = combine_counts([RateEstimate(1, 10), RateEstimate(3, 30)])
        assert pooled.successes == 4 and pooled.n == 40

    def test_combine_empty(self):
        # Merged shard results can legitimately contain empty strata.
        pooled = combine_counts([])
        assert pooled.successes == 0 and pooled.n == 0
        assert pooled.p == 0.0

    @given(k=st.integers(0, 50), extra=st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_wilson_contains_point_estimate(self, k, extra):
        n = k + extra
        lo, hi = wilson_interval(k, n)
        if n:
            assert lo <= k / n <= hi
        assert 0.0 <= lo <= hi <= 1.0

    def test_wilson_nonzero_width_at_extremes(self):
        lo, hi = wilson_interval(0, 100)
        assert hi > 0.0  # unlike Wald, Wilson never collapses at p=0
        lo1, hi1 = wilson_interval(100, 100)
        assert lo1 < 1.0
