"""Unit tests for every layer kind: geometry, typed forward, gradients."""

import numpy as np
import pytest

from repro.dtypes import FLOAT16, FXP_16B_RB10
from repro.nn import (
    LRN,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    Softmax,
)


def numeric_grad(fn, x, dy, eps=1e-6):
    """Central-difference gradient of sum(fn(x) * dy) w.r.t. x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = ((fn(xp) * dy).sum() - (fn(xm) * dy).sum()) / (2 * eps)
        it.iternext()
    return grad


class TestConv2D:
    def test_out_shape(self):
        conv = Conv2D("c", 3, 8, 5, stride=2, pad=2)
        assert conv.out_shape((3, 32, 32)) == (8, 16, 16)

    def test_channel_mismatch_raises(self):
        conv = Conv2D("c", 3, 8, 3)
        with pytest.raises(ValueError):
            conv.out_shape((4, 8, 8))

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            Conv2D("c", 0, 8, 3)
        with pytest.raises(ValueError):
            Conv2D("c", 3, 8, 3, pad=-1)

    def test_forward_quantizes_output(self, rng):
        conv = Conv2D("c", 2, 3, 3, pad=1)
        conv.weight[:] = rng.normal(0, 1, conv.weight.shape)
        x = FLOAT16.quantize(rng.normal(0, 1, (1, 2, 5, 5)))
        y = conv.forward(x, FLOAT16)
        assert np.array_equal(y, FLOAT16.quantize(y))

    def test_quantized_weight_cache_invalidation(self, rng):
        conv = Conv2D("c", 2, 3, 3)
        conv.weight[:] = rng.normal(0, 1, conv.weight.shape)
        w1, _ = conv.quantized_weights(FLOAT16)
        conv.weight *= 2.0
        assert np.array_equal(conv.quantized_weights(FLOAT16)[0], w1)  # stale cache
        conv.invalidate_weight_cache()
        assert not np.array_equal(conv.quantized_weights(FLOAT16)[0], w1)

    def test_gradients(self, rng):
        conv = Conv2D("c", 2, 3, 3, stride=2, pad=1)
        conv.weight[:] = rng.normal(0, 0.5, conv.weight.shape)
        conv.bias[:] = rng.normal(0, 0.1, 3)
        x = rng.normal(0, 1, (2, 2, 5, 5))
        y, cache = conv.forward_train(x)
        dy = rng.normal(0, 1, y.shape)
        dx, grads = conv.backward(cache, dy)
        assert np.allclose(dx, numeric_grad(lambda v: conv.forward_train(v)[0], x, dy), atol=1e-5)

        def with_w(w):
            saved = conv.weight.copy()
            conv.weight[:] = w
            out = conv.forward_train(x)[0]
            conv.weight[:] = saved
            return out

        assert np.allclose(grads["weight"], numeric_grad(with_w, conv.weight.copy(), dy), atol=1e-4)
        assert np.allclose(grads["bias"], dy.sum(axis=(0, 2, 3)))

    def test_mac_count(self):
        conv = Conv2D("c", 3, 8, 5, pad=2)
        assert conv.mac_count((3, 16, 16)) == 8 * 16 * 16 * 3 * 25

    def test_mac_operands_reproduce_output(self, rng):
        conv = Conv2D("c", 2, 3, 3, stride=1, pad=1)
        conv.weight[:] = rng.normal(0, 1, conv.weight.shape)
        conv.bias[:] = rng.normal(0, 0.1, 3)
        x = rng.normal(0, 1, (2, 6, 6))
        y = conv.forward(x[None], None)[0]
        for idx in [(0, 0, 0), (1, 3, 2), (2, 5, 5)]:
            chain = conv.mac_operands(x, idx, None)
            val = (chain.weights * chain.inputs).sum() + chain.bias
            assert np.isclose(val, y[idx])


class TestDense:
    def test_out_shape_and_flattening(self):
        fc = Dense("fc", 24, 10)
        assert fc.out_shape((24,)) == (10,)
        assert fc.out_shape((2, 3, 4)) == (10,)
        with pytest.raises(ValueError):
            fc.out_shape((25,))

    def test_gradients(self, rng):
        fc = Dense("fc", 6, 4)
        fc.weight[:] = rng.normal(0, 0.5, fc.weight.shape)
        fc.bias[:] = rng.normal(0, 0.1, 4)
        x = rng.normal(0, 1, (3, 6))
        y, cache = fc.forward_train(x)
        dy = rng.normal(0, 1, y.shape)
        dx, grads = fc.backward(cache, dy)
        assert np.allclose(dx, numeric_grad(lambda v: fc.forward_train(v)[0], x, dy), atol=1e-6)
        assert np.allclose(grads["bias"], dy.sum(axis=0))

    def test_mac_operands(self, rng):
        fc = Dense("fc", 6, 4)
        fc.weight[:] = rng.normal(0, 1, fc.weight.shape)
        x = rng.normal(0, 1, (6,))
        y = fc.forward(x[None], None)[0]
        chain = fc.mac_operands(x, (2,), None)
        assert np.isclose((chain.weights * chain.inputs).sum() + chain.bias, y[2])
        assert chain.length == 6

    def test_forward_fxp_saturation(self, rng):
        fc = Dense("fc", 4, 2)
        fc.weight[:] = 100.0
        x = np.full((1, 4), 10.0)
        y = fc.forward(x, FXP_16B_RB10)
        assert (y == FXP_16B_RB10.max_value).all()


class TestReLU:
    def test_masks_negatives(self):
        r = ReLU("r")
        x = np.array([[-1.0, 0.0, 2.5]])
        assert np.array_equal(r.forward(x), [[0.0, 0.0, 2.5]])

    def test_nan_passthrough(self):
        r = ReLU("r")
        assert np.isnan(r.forward(np.array([[np.nan]]))[0, 0])

    def test_gradient(self, rng):
        r = ReLU("r")
        x = rng.normal(0, 1, (2, 5))
        y, cache = r.forward_train(x)
        dy = rng.normal(0, 1, y.shape)
        dx, _ = r.backward(cache, dy)
        assert np.array_equal(dx, dy * (x > 0))


class TestSoftmax:
    def test_normalizes(self, rng):
        sm = Softmax("s")
        y = sm.forward(rng.normal(0, 5, (2, 7)))
        assert np.allclose(y.sum(axis=1), 1.0)
        assert (y >= 0).all()

    def test_shift_invariance(self, rng):
        sm = Softmax("s")
        x = rng.normal(0, 1, (1, 5))
        assert np.allclose(sm.forward(x), sm.forward(x + 100.0))

    def test_nan_poisons(self):
        sm = Softmax("s")
        y = sm.forward(np.array([[1.0, np.nan, 2.0]]))
        assert np.isnan(y).all()

    def test_inf_poisons(self):
        sm = Softmax("s")
        y = sm.forward(np.array([[1.0, np.inf, 2.0]]))
        assert np.isnan(y).any()

    def test_gradient(self, rng):
        sm = Softmax("s")
        x = rng.normal(0, 1, (2, 4))
        y, cache = sm.forward_train(x)
        dy = rng.normal(0, 1, y.shape)
        dx, _ = sm.backward(cache, dy)
        num = np.zeros_like(x)
        eps = 1e-6
        for idx in np.ndindex(*x.shape):
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num[idx] = ((sm.forward_train(xp)[0] - sm.forward_train(xm)[0]) * dy).sum() / (2 * eps)
        assert np.allclose(dx, num, atol=1e-5)


class TestMaxPool:
    def test_out_shape(self):
        p = MaxPool2D("p", 3, stride=2)
        assert p.out_shape((4, 15, 15)) == (4, 7, 7)

    def test_selects_maximum(self):
        p = MaxPool2D("p", 2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y = p.forward(x)
        assert np.array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_padded_pooling_uses_neg_inf(self):
        p = MaxPool2D("p", 3, stride=2, pad=1)
        x = np.full((1, 1, 4, 4), -5.0)
        y = p.forward(x)
        assert (y == -5.0).all()  # zero padding must not win

    def test_gradient_routes_to_argmax(self, rng):
        p = MaxPool2D("p", 2)
        x = rng.normal(0, 1, (1, 2, 4, 4))
        y, cache = p.forward_train(x)
        dy = np.ones_like(y)
        dx, _ = p.backward(cache, dy)
        assert dx.sum() == y.size  # each output routed one gradient unit
        assert ((dx == 0) | (dx == 1)).all()

    def test_masks_errors_in_discarded_positions(self):
        p = MaxPool2D("p", 2)
        x = np.zeros((1, 1, 4, 4))
        x[0, 0, 0, 0] = 10.0
        y_ref = p.forward(x).copy()
        x[0, 0, 1, 1] = 5.0  # corrupted but still below the max
        assert np.array_equal(p.forward(x), y_ref)


class TestGlobalAvgPool:
    def test_reduces_to_channel_means(self, rng):
        g = GlobalAvgPool("g")
        x = rng.normal(0, 1, (2, 3, 4, 4))
        assert np.allclose(g.forward(x), x.mean(axis=(2, 3)))
        assert g.out_shape((3, 4, 4)) == (3,)

    def test_gradient(self, rng):
        g = GlobalAvgPool("g")
        x = rng.normal(0, 1, (1, 2, 3, 3))
        y, cache = g.forward_train(x)
        dy = rng.normal(0, 1, y.shape)
        dx, _ = g.backward(cache, dy)
        assert np.allclose(dx, np.broadcast_to(dy[:, :, None, None] / 9, x.shape))


class TestFlatten:
    def test_roundtrip(self, rng):
        fl = Flatten("f")
        x = rng.normal(0, 1, (2, 3, 4, 4))
        y, cache = fl.forward_train(x)
        assert y.shape == (2, 48)
        dx, _ = fl.backward(cache, y)
        assert np.array_equal(dx, x)


class TestLRN:
    def test_identity_near_zero(self, rng):
        lrn = LRN("n", n=5, alpha=1e-4, beta=0.75, k=2.0)
        x = rng.normal(0, 0.01, (1, 8, 3, 3))
        y = lrn.forward(x)
        # Tiny activations: denominator ~ k^beta, a fixed gain.
        assert np.allclose(y, x / 2.0**0.75, rtol=1e-3)

    def test_suppresses_huge_values(self):
        lrn = LRN("n")
        x = np.zeros((1, 8, 2, 2))
        x[0, 3, 0, 0] = 1e8
        y = lrn.forward(x)
        assert abs(y[0, 3, 0, 0]) < 1e6  # orders of magnitude attenuation

    def test_window_is_local_across_channels(self):
        lrn = LRN("n", n=3)
        x = np.zeros((1, 9, 1, 1))
        x[0, 0] = 100.0
        y = lrn.forward(x)
        # A huge channel-0 value must not affect channel 5 (outside window).
        x2 = x.copy()
        x2[0, 5] = 1.0
        y2 = lrn.forward(x2)
        assert np.isclose(y2[0, 5, 0, 0], lrn.forward(np.eye(1)[None, None] * 0 + x2 * 0 + x2)[0, 5, 0, 0])
        assert y[0, 1, 0, 0] == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LRN("n", n=0)
        with pytest.raises(ValueError):
            LRN("n", alpha=-1)

    def test_matches_naive_reference(self, rng):
        lrn = LRN("n", n=5, alpha=1e-4, beta=0.75, k=2.0)
        x = rng.normal(0, 2, (1, 12, 3, 3))
        y = lrn.forward(x)
        c = 12
        for ch in range(c):
            lo, hi = max(0, ch - 2), min(c - 1, ch + 2)
            denom = (2.0 + (1e-4 / 5) * (x[0, lo : hi + 1] ** 2).sum(axis=0)) ** 0.75
            assert np.allclose(y[0, ch], x[0, ch] / denom)

    def test_nan_passthrough(self):
        lrn = LRN("n")
        x = np.zeros((1, 5, 1, 1))
        x[0, 2] = np.nan
        assert np.isnan(lrn.forward(x)[0, 2, 0, 0])


class TestLRNTraining:
    def test_gradient_numeric(self, rng):
        lrn = LRN("n", n=5, alpha=0.05, beta=0.75, k=2.0)
        x = rng.normal(0, 2, (2, 8, 3, 3))
        y, cache = lrn.forward_train(x)
        dy = rng.normal(0, 1, y.shape)
        dx, grads = lrn.backward(cache, dy)
        assert grads == {}
        eps = 1e-6
        num = np.zeros_like(x)
        for idx in np.ndindex(*x.shape):
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num[idx] = (
                (lrn.forward_train(xp)[0] - lrn.forward_train(xm)[0]) * dy
            ).sum() / (2 * eps)
        assert np.allclose(dx, num, atol=1e-6)

    def test_forward_train_matches_inference(self, rng):
        lrn = LRN("n")
        x = rng.normal(0, 2, (1, 6, 4, 4))
        y_train, _ = lrn.forward_train(x)
        assert np.allclose(y_train, lrn.forward(x))


class TestLRNRobustPath:
    def test_no_nan_contagion_from_huge_values(self):
        # Regression: the O(c) cumsum window once produced inf - inf = NaN
        # for every channel after a value whose square overflows.
        lrn = LRN("n")
        x = np.zeros((1, 12, 2, 2))
        x[0, 3, 0, 0] = 1e200
        y = lrn.forward(x)
        assert np.isfinite(y).all()
        assert y[0, 3, 0, 0] == 0.0  # the huge value itself is squashed

    def test_channels_outside_window_untouched(self, rng):
        lrn = LRN("n", n=5)
        x = rng.normal(0, 2, (1, 12, 3, 3))
        ref = lrn.forward(x)
        corrupted = x.copy()
        corrupted[0, 2, 1, 1] = 1e180
        y = lrn.forward(corrupted)
        # channels 5.. are outside channel 2's 5-wide window
        assert np.allclose(y[0, 6:], ref[0, 6:])

    def test_robust_path_matches_fast_path(self, rng):
        # Force the robust path with a large-but-finite trigger value on
        # one tensor and compare against the fast path on clean data.
        lrn = LRN("n", n=5)
        x = rng.normal(0, 2, (1, 10, 2, 2))
        fast = lrn._denominator(x)
        trigger = x.copy()
        trigger[0, 0, 0, 0] = 1e290  # robust path engages
        robust = lrn._denominator(trigger)
        # all entries whose window excludes (0,0,0,0) must agree exactly
        assert np.allclose(robust[0, 3:, :, :], fast[0, 3:, :, :])
        assert np.allclose(robust[0, :, 1, :], fast[0, :, 1, :])
