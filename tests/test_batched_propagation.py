"""Batched fault propagation: bit-exactness, golden immutability, parity.

The campaign hot path groups prepared corruptions by resume layer and
propagates each group through ``Network.forward_from_batch``.  The
contract is byte-identity with the serial ``forward_from`` path — per
trial, on scores and on every recorded activation — which these tests
enforce over mixed datapath and buffer faults, with and without the
Proteus storage narrowing, for both the plain stacked engine and the
delta engine (goldens + dirty row spans).
"""

import numpy as np
import pytest

from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.fault import BufferFault, sample_buffer_fault, sample_datapath_fault
from repro.core.injector import finish_injection, prepare_buffer, prepare_datapath
from repro.dtypes import DTYPES, FLOAT16
from repro.utils.rng import child_rng
from tests.conftest import build_tiny_network

BUFFER_SCOPES = ("layer_weight", "row_activation", "next_layer", "single_read")


def golden_bytes(golden):
    return (golden.scores.tobytes(), [a.tobytes() for a in golden.activations])


def sample_preps(network, golden, storage_dtype, n=40, seed=42):
    """Mixed datapath + buffer preparations, serially seeded like a campaign."""
    preps = []
    for t in range(n):
        rng = child_rng(seed, t)
        if t % 2 == 0:
            fault = sample_datapath_fault(network, FLOAT16, rng)
            prep = prepare_datapath(network, FLOAT16, fault, golden, storage_dtype)
        else:
            scope = BUFFER_SCOPES[(t // 2) % len(BUFFER_SCOPES)]
            fault = sample_buffer_fault(
                network, scope, storage_dtype or FLOAT16, rng
            )
            prep = prepare_buffer(network, FLOAT16, fault, golden, storage_dtype)
        preps.append(prep)
    return preps


@pytest.fixture(params=[None, "FLOAT16"], ids=["plain-storage", "proteus-storage"])
def storage(request):
    return DTYPES[request.param] if request.param else None


class TestSerialBatchedEquivalence:
    def test_batch_matches_serial_bytes(self, tiny_input, storage):
        network = build_tiny_network()
        golden = network.forward(
            tiny_input, dtype=FLOAT16, record=True, storage_dtype=storage
        )
        preps = [p for p in sample_preps(network, golden, storage) if not p.masked]
        assert len(preps) >= 8  # the mix must actually exercise the batch
        groups: dict[int, list] = {}
        for prep in preps:
            groups.setdefault(prep.resume_index, []).append(prep)
        assert len(groups) >= 2  # several distinct resume layers
        for resume_index, items in groups.items():
            serial = [
                network.forward_from(
                    resume_index, p.act, dtype=FLOAT16, record=True,
                    storage_dtype=storage,
                )
                for p in items
            ]
            plain = network.forward_from_batch(
                resume_index, [p.act for p in items], dtype=FLOAT16,
                record=True, storage_dtype=storage,
            )
            delta = network.forward_from_batch(
                resume_index, [p.act for p in items], dtype=FLOAT16,
                record=True, storage_dtype=storage,
                goldens=[golden] * len(items),
                dirty_rows=[p.dirty_rows for p in items],
            )
            for batch in (plain, delta):
                for b, ref in enumerate(serial):
                    got = batch.result(b)
                    assert got.scores.tobytes() == ref.scores.tobytes()
                    assert len(got.activations) == len(ref.activations)
                    for mine, theirs in zip(got.activations, ref.activations):
                        assert mine.tobytes() == theirs.tobytes()

    def test_batch_boundary_echoes_inputs(self, tiny_network, tiny_input):
        """resume index == len(layers) runs zero layers, like forward_from."""
        full = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        end = len(tiny_network.layers)
        acts = [full.activations[end], full.activations[end] * 0.5]
        batch = tiny_network.forward_from_batch(end, acts, dtype=FLOAT16)
        for b, act in enumerate(acts):
            assert np.array_equal(batch.scores[b], act.ravel())
        with pytest.raises(IndexError):
            tiny_network.forward_from_batch(end + 1, acts, dtype=FLOAT16)

    def test_batch_rejects_empty_and_bad_shapes(self, tiny_network, tiny_input):
        with pytest.raises(ValueError):
            tiny_network.forward_from_batch(0, [], dtype=FLOAT16)
        with pytest.raises(ValueError):
            tiny_network.forward_from_batch(0, [np.zeros((1, 2, 3))], dtype=FLOAT16)


class TestGoldenImmutability:
    """Injection must never write into the shared golden result.

    The delta engine passes golden activations *by reference* into
    masked trials' outputs, so one stray in-place write would corrupt
    every later trial on the same input.  Covers masked and unmasked
    preparations of all four buffer scopes.
    """

    def test_all_scopes_leave_golden_untouched(self, tiny_input):
        network = build_tiny_network()
        golden = network.forward(tiny_input, dtype=FLOAT16, record=True)
        before = golden_bytes(golden)
        masked_seen = set()
        for scope in BUFFER_SCOPES:
            for t in range(40):
                bit = 15 if scope == "next_layer" else None  # sign flips hit zeros
                fault = sample_buffer_fault(
                    network, scope, FLOAT16, child_rng(42, t), bit=bit
                )
                prep = prepare_buffer(network, FLOAT16, fault, golden)
                if prep.masked:
                    masked_seen.add(scope)
                finish_injection(network, FLOAT16, prep, golden, record=True)
                assert golden_bytes(golden) == before, (scope, t)
        assert masked_seen >= {"row_activation", "next_layer", "single_read"}

    def test_layer_weight_masked_path(self, tiny_input):
        # A sign flip on a zero weight is the one layer_weight fault that
        # masks at preparation time (the flipped word compares equal).
        network = build_tiny_network()
        network.layers[0].weight[0, 0, 0, 0] = 0.0
        golden = network.forward(tiny_input, dtype=FLOAT16, record=True)
        before = golden_bytes(golden)
        fault = BufferFault(
            scope="layer_weight", layer_index=0, victim=(0, 0, 0, 0), bit=15
        )
        prep = prepare_buffer(network, FLOAT16, fault, golden)
        assert prep.masked
        result = finish_injection(network, FLOAT16, prep, golden, record=True)
        assert result.masked
        assert result.scores.tobytes() == golden.scores.tobytes()
        assert golden_bytes(golden) == before


class TestRowActivationResidencyMiss:
    def test_miss_short_circuits_before_chain_replay(self, tiny_input):
        """A residency row that never reads the victim must cost nothing.

        The miss check sits before any chain replay or fmap copy; if the
        engine regresses to scanning affected columns first, the
        monkeypatched ``mac_operands`` below fires and fails the test.
        """
        network = build_tiny_network()
        golden = network.forward(tiny_input, dtype=FLOAT16, record=True)
        layer = network.layers[0]  # c1: 3x3 kernel, pad 1, stride 1

        def boom(*args, **kwargs):
            raise AssertionError("residency miss must not replay MAC chains")

        layer.mac_operands = boom
        # Victim pixel row 0; residency row 7's window covers rows 6..8.
        fault = BufferFault(
            scope="row_activation", layer_index=0, victim=(0, 0, 0), bit=3,
            residency_row=7,
        )
        prep = prepare_buffer(network, FLOAT16, fault, golden)
        assert prep.masked


class TestCampaignBatchParity:
    """``batch`` is an execution knob: records and deterministic metric
    counters must be byte-identical at every group size."""

    SPECS = [
        CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=30, seed=11),
        CampaignSpec(
            network="ConvNet", dtype="FLOAT16", target="row_activation",
            n_trials=20, seed=12,
        ),
        CampaignSpec(
            network="ConvNet", dtype="32b_rb10", storage_dtype="16b_rb10",
            n_trials=20, seed=13,
        ),
    ]

    @staticmethod
    def _same_value(a: float, b: float) -> bool:
        return a == b or (a != a and b != b)

    @pytest.mark.parametrize("spec", SPECS, ids=["datapath", "buffer", "proteus"])
    def test_batched_campaign_matches_serial(self, spec):
        serial = run_campaign(spec, jobs=1, batch=1)
        batched = run_campaign(spec, jobs=1, batch=8)
        assert len(serial.records) == len(batched.records) == spec.n_trials
        for a, b in zip(serial.records, batched.records):
            assert a.outcome == b.outcome
            assert (a.bit, a.site, a.block) == (b.bit, b.site, b.block)
            assert self._same_value(a.value_before, b.value_before)
            assert self._same_value(a.value_after, b.value_after)
        assert serial.metrics["counters"] == batched.metrics["counters"]
        assert serial.metrics["histograms"] == batched.metrics["histograms"]
