"""Shared fixtures: tiny networks, deterministic RNG, warm weight store."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.dtypes import DTYPES
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    Softmax,
)

# Keep the weight store inside the repo so zoo networks are built once
# across the whole test session (ConvNet training is the expensive part).
os.environ.setdefault("REPRO_CACHE", str(Path(__file__).resolve().parent.parent / ".cache" / "repro-weights"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def build_tiny_network(seed: int = 0, with_softmax: bool = True) -> Network:
    """A 2-conv + 1-fc network small enough for exhaustive testing."""
    layers = [
        Conv2D("c1", 3, 4, 3, stride=1, pad=1),
        ReLU("r1"),
        MaxPool2D("p1", 2),
        Conv2D("c2", 4, 6, 3, stride=1, pad=1),
        ReLU("r2"),
        MaxPool2D("p2", 2),
        Flatten("fl"),
        Dense("fc", 6 * 2 * 2, 5),
    ]
    if with_softmax:
        layers.append(Softmax("sm"))
    net = Network("tiny", layers, input_shape=(3, 8, 8), has_confidence=with_softmax)
    g = np.random.default_rng(seed)
    for i in net.mac_layer_indices():
        layer = net.layers[i]
        w = layer.params()["weight"]
        w[:] = g.normal(0.0, 0.4, w.shape)
        layer.params()["bias"][:] = g.normal(0.0, 0.05, layer.params()["bias"].shape)
    return net


@pytest.fixture
def tiny_network() -> Network:
    return build_tiny_network()


@pytest.fixture
def tiny_input(rng) -> np.ndarray:
    return rng.normal(0.0, 1.0, (3, 8, 8))


@pytest.fixture(params=list(DTYPES))
def any_dtype(request):
    """Parametrized over all six paper data types."""
    return DTYPES[request.param]
