"""Zoo: topologies per Table 2, datasets, calibration, registry, store."""

import numpy as np
import pytest

from repro.nn.profiling import profile_ranges
from repro.zoo import (
    TABLE4_RANGES,
    build_alexnet,
    build_caffenet,
    build_convnet,
    build_nin,
    eval_inputs,
    get_network,
    imagenet_like,
    max_abs_targets,
    synthetic_cifar,
)
from repro.zoo.datasets import class_templates
from repro.zoo.weights import calibrate_to_ranges, he_init


class TestTopologies:
    def test_convnet_table2(self):
        net = build_convnet()
        assert net.n_blocks == 5
        kinds = list(net.block_kinds().values())
        assert kinds == ["CONV", "CONV", "CONV", "FC", "FC"]
        assert net.out_candidates == 10
        assert net.layers[-1].kind == "softmax"

    def test_alexnet_table2(self):
        net = build_alexnet("reduced")
        kinds = list(net.block_kinds().values())
        assert kinds == ["CONV"] * 5 + ["FC"] * 3
        assert net.out_candidates == 1000
        assert sum(1 for l in net.layers if l.kind == "lrn") == 2

    def test_alexnet_lrn_before_pool(self):
        net = build_alexnet("reduced")
        names = [l.kind for l in net.layers[:4]]
        assert names == ["conv", "relu", "lrn", "pool"]

    def test_caffenet_pool_before_lrn(self):
        net = build_caffenet("reduced")
        names = [l.kind for l in net.layers[:4]]
        assert names == ["conv", "relu", "pool", "lrn"]
        assert net.name == "CaffeNet"

    def test_nin_table2(self):
        net = build_nin("reduced")
        assert net.n_blocks == 12
        assert all(k == "CONV" for k in net.block_kinds().values())
        assert net.out_candidates == 1000
        assert not net.has_confidence
        assert net.layers[-1].kind == "gap"
        assert not any(l.kind == "fc" for l in net.layers)
        assert not any(l.kind == "softmax" for l in net.layers)

    def test_full_scale_geometries(self):
        a = build_alexnet("full")
        assert a.input_shape == (3, 227, 227)
        assert a.layers[0].out_channels == 96
        n = build_nin("full")
        assert n.input_shape == (3, 227, 227)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            build_alexnet("tiny")
        with pytest.raises(ValueError):
            build_nin("tiny")
        with pytest.raises(ValueError):
            build_convnet("tiny")


class TestDatasets:
    def test_cifar_deterministic(self):
        x1, y1 = synthetic_cifar(10, seed=5)
        x2, y2 = synthetic_cifar(10, seed=5)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_cifar_seed_changes_data(self):
        x1, _ = synthetic_cifar(10, seed=5)
        x2, _ = synthetic_cifar(10, seed=6)
        assert not np.array_equal(x1, x2)

    def test_cifar_shapes_and_labels(self):
        x, y = synthetic_cifar(20)
        assert x.shape == (20, 3, 32, 32)
        assert y.dtype == np.int64
        assert ((y >= 0) & (y < 10)).all()

    def test_templates_distinct_per_class(self):
        t = class_templates()
        assert t.shape == (10, 3, 32, 32)
        for a in range(3):
            for b in range(a + 1, 4):
                assert not np.allclose(t[a], t[b])

    def test_imagenet_like_range(self):
        x = imagenet_like(2, size=32, seed=0)
        assert x.shape == (2, 3, 32, 32)
        assert x.min() >= -121 and x.max() <= 136
        assert x.std() > 10  # actually spans the pixel range

    def test_imagenet_like_deterministic(self):
        assert np.array_equal(imagenet_like(1, 32, seed=3), imagenet_like(1, 32, seed=3))


class TestWeights:
    def test_he_init_deterministic(self):
        a, b = build_convnet(), build_convnet()
        he_init(a, seed=9)
        he_init(b, seed=9)
        assert np.array_equal(a.layers[0].weight, b.layers[0].weight)

    def test_he_init_seed_sensitivity(self):
        a, b = build_convnet(), build_convnet()
        he_init(a, seed=9)
        he_init(b, seed=10)
        assert not np.array_equal(a.layers[0].weight, b.layers[0].weight)

    def test_table4_targets(self):
        assert len(max_abs_targets("AlexNet")) == 8
        assert len(max_abs_targets("NiN")) == 12
        assert max_abs_targets("AlexNet")[0] == pytest.approx(691.813)
        with pytest.raises(KeyError):
            max_abs_targets("ResNet")

    def test_calibration_hits_targets(self):
        net = build_alexnet("reduced")
        he_init(net, seed=7)
        probe = imagenet_like(2, size=net.input_shape[1], seed=21)
        achieved = calibrate_to_ranges(net, probe, iterations=3)
        targets = max_abs_targets("AlexNet")
        for got, want in zip(achieved, targets):
            assert got == pytest.approx(want, rel=0.35), (got, want)


class TestRegistry:
    def test_get_network_memoized(self):
        a = get_network("ConvNet")
        b = get_network("ConvNet")
        assert a is b

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            get_network("ResNet")

    def test_convnet_is_trained(self):
        net = get_network("ConvNet")
        x, y = synthetic_cifar(60, seed=999)
        acc = np.mean([net.forward(x[i], record=False).top1() == y[i] for i in range(60)])
        assert acc > 0.6  # far above the 10% chance level

    def test_imagenet_net_calibrated(self):
        net = get_network("AlexNet")
        inputs = eval_inputs("AlexNet", 2)
        profile = profile_ranges(net, inputs, scope="all")
        paper = TABLE4_RANGES["AlexNet"]
        for block, (lo, hi) in enumerate(paper, start=1):
            got = max(abs(profile.ranges[block].lo), abs(profile.ranges[block].hi))
            want = max(abs(lo), abs(hi))
            assert 0.3 * want < got < 3.0 * want, (block, got, want)

    def test_eval_inputs_shapes(self):
        assert eval_inputs("ConvNet", 2).shape == (2, 3, 32, 32)
        x = eval_inputs("NiN", 1)
        assert x.shape[1:] == get_network("NiN").input_shape


class TestStore:
    def test_roundtrip(self, tmp_path, monkeypatch):
        from repro.zoo import store

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        net = build_convnet()
        he_init(net, seed=3)
        store.save_params(net, "t-sig")
        other = build_convnet()
        assert store.load_params(other, "t-sig")
        assert np.array_equal(other.layers[0].weight, net.layers[0].weight)

    def test_load_missing_returns_false(self, tmp_path, monkeypatch):
        from repro.zoo import store

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        net = build_convnet()
        assert not store.load_params(net, "absent")

    def test_load_shape_mismatch_rejected(self, tmp_path, monkeypatch):
        from repro.zoo import store

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        net = build_convnet()
        he_init(net, seed=3)
        store.save_params(net, "sig")
        other = build_alexnet("reduced")
        pristine = other.layers[0].weight.copy()
        assert not store.load_params(other, "sig")
        assert np.array_equal(other.layers[0].weight, pristine)


class TestFullScale:
    """Full-scale (paper-geometry) builds; the heavyweight init/calibration
    path is validated separately and gated behind REPRO_FULL=1."""

    def test_full_geometries_construct(self):
        # Construction alone validates the whole shape chain at 227x227.
        import numpy as np

        from repro.zoo.vgg import build_vgg16

        full_macs = {
            "AlexNet": build_alexnet("full").total_macs(),
            "CaffeNet": build_caffenet("full").total_macs(),
            "NiN": build_nin("full").total_macs(),
            "VGG16": build_vgg16("full").total_macs(),
        }
        # The real networks' arithmetic volumes (within 10%).
        assert full_macs["AlexNet"] == full_macs["CaffeNet"]
        assert 1.0e9 < full_macs["AlexNet"] < 1.3e9
        assert full_macs["VGG16"] > 1.0e10  # VGG-16 is ~15 GMACs

    @pytest.mark.skipif(
        not __import__("os").environ.get("REPRO_FULL"),
        reason="full-scale calibration takes ~1 min; set REPRO_FULL=1",
    )
    def test_full_scale_calibration_and_injection(self):
        import numpy as np

        from repro.core.fault import sample_datapath_fault
        from repro.core.injector import inject_datapath
        from repro.dtypes import FLOAT16
        from repro.utils.rng import child_rng

        net = get_network("AlexNet", "full")
        x = eval_inputs("AlexNet", 1, "full")[0]
        golden = net.forward(x, dtype=FLOAT16, record=True)
        fault = sample_datapath_fault(net, FLOAT16, child_rng(0, 0))
        res = inject_datapath(net, FLOAT16, fault, golden)
        assert res.scores.shape == (1000,)


class TestDescribeNetworks:
    def test_table2_excludes_extension_networks(self):
        from repro.zoo.registry import describe_networks

        names = [d["network"] for d in describe_networks()]
        assert names == ["ConvNet", "AlexNet", "CaffeNet", "NiN"]

    def test_extensions_included_on_request(self):
        from repro.zoo.registry import describe_networks

        names = [d["network"] for d in describe_networks(include_extensions=True)]
        assert "VGG16" in names
