"""Propagation tracing (Figure 7 / Table 5 machinery)."""

import numpy as np
import pytest

from repro.core.fault import DatapathFault
from repro.core.injector import InjectionResult, inject_datapath
from repro.core.tracing import (
    bitwise_mismatch_by_block,
    block_output_layers,
    euclidean_by_block,
    relu_trace_layers,
)
from repro.dtypes import FLOAT16


@pytest.fixture
def traced(tiny_network, tiny_input):
    golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
    conv_out = golden.activations[1]
    victim = tuple(int(v) for v in np.argwhere((conv_out > 0.25) & (conv_out < 2.0))[0])
    last = tiny_network.layers[0].chain_length((3, 8, 8)) - 1
    fault = DatapathFault(0, victim, last, "accumulator", 14)  # -> huge value
    injection = inject_datapath(tiny_network, FLOAT16, fault, golden, record=True)
    assert not injection.masked
    return tiny_network, golden, injection


class TestTracePoints:
    def test_block_output_layers(self, tiny_network):
        assert block_output_layers(tiny_network) == {1: 2, 2: 6, 3: 7}

    def test_relu_trace_layers(self, tiny_network):
        # sample points: relu1 (idx 1), relu2 (idx 4), fc (idx 7 — no relu)
        assert relu_trace_layers(tiny_network) == {1: 1, 2: 4, 3: 7}


class TestEuclidean:
    def test_distances_nonnegative_and_finite(self, traced):
        net, golden, injection = traced
        d = euclidean_by_block(net, golden, injection)
        assert set(d) == {1, 2, 3}
        assert all(np.isfinite(v) and v >= 0 for v in d.values())

    def test_fault_visible_at_first_block(self, traced):
        net, golden, injection = traced
        d = euclidean_by_block(net, golden, injection, points=relu_trace_layers(net))
        assert d[1] > 0

    def test_upstream_blocks_zero(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        fc_idx = tiny_network.mac_layer_indices()[-1]
        fault = DatapathFault(fc_idx, (1,), 2, "accumulator", 14)
        injection = inject_datapath(tiny_network, FLOAT16, fault, golden, record=True)
        if not injection.masked:
            d = euclidean_by_block(tiny_network, golden, injection)
            assert d[1] == 0.0 and d[2] == 0.0

    def test_masked_injection_all_zero(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        fake = InjectionResult(
            scores=golden.scores, masked=True, value_before=0, value_after=0, resume_index=1
        )
        d = euclidean_by_block(tiny_network, golden, fake)
        assert all(v == 0.0 for v in d.values())

    def test_nonfinite_values_give_large_finite_distance(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        act = golden.activations[1].copy()
        act[0, 0, 0] = np.inf
        res = tiny_network.forward_from(1, act, dtype=FLOAT16, record=True)
        fake = InjectionResult(
            scores=res.scores,
            masked=False,
            value_before=0,
            value_after=np.inf,
            resume_index=1,
            faulty_activations=[act] + res.activations[1:],
        )
        d = euclidean_by_block(tiny_network, golden, fake, points=relu_trace_layers(tiny_network))
        assert np.isfinite(d[1]) and d[1] > 0


class TestBitwiseMismatch:
    def test_mismatch_fractions_in_unit_interval(self, traced):
        net, golden, injection = traced
        m = bitwise_mismatch_by_block(net, golden, injection)
        assert all(0.0 <= v <= 1.0 for v in m.values())
        assert m[1] > 0  # the corrupted element itself mismatches

    def test_pool_masking_reduces_spread(self, traced):
        net, golden, injection = traced
        m = bitwise_mismatch_by_block(net, golden, injection)
        # block 1 output (after pooling) has at most all elements wrong
        assert m[1] <= 1.0
