"""Resilient execution: supervised pool, quarantine, checkpoint/resume.

The supervised-pool tests drive :func:`repro.utils.parallel.map_trials`
with deliberately hostile tasks (worker ``os._exit``, wedged sleeps,
raising trials); the campaign tests drive :func:`run_campaign` through
the ``REPRO_CAMPAIGN_FAULT`` meta-injection hook and assert the paper's
core reproducibility property survives every failure: trial ``i`` is a
pure function of ``(spec, i)``, so quarantine and resume never perturb
the surviving trials.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.campaign import (
    CampaignAbortedError,
    CampaignSpec,
    run_campaign,
)
from repro.core.checkpoint import (
    CheckpointMismatchError,
    CheckpointWriter,
    campaign_fingerprint,
    load_checkpoint,
)
from repro.core.serialize import campaign_summary, to_jsonable
from repro.core.tracing import EventRecorder
from repro.utils.parallel import TrialFailure, map_trials

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Captured at import in the parent; forked workers inherit it, so tasks
#: can distinguish "running in a pool worker" from "running inline".
MAIN_PID = os.getpid()

#: Fast supervision knobs shared by the pool tests (real backoff would
#: dominate test wall-time).
FAST = dict(backoff_base=0.01, backoff_cap=0.02)


def _square_task():
    return lambda i: i * i


def _crash7_task():
    def task(i):
        if i == 7 and os.getpid() != MAIN_PID:
            os._exit(41)
        return i * i

    return task


def _worker_crash_task():
    def task(i):
        if os.getpid() != MAIN_PID:
            os._exit(13)
        return i + 100

    return task


def _hang5_task():
    def task(i):
        if i == 5:
            time.sleep(600.0)
        return i

    return task


def _raise3_task():
    def task(i):
        if i == 3:
            raise ValueError("poison trial")
        return i

    return task


class TestSupervisedPool:
    def test_crashing_worker_quarantines_exactly_the_poison_trial(self):
        kinds = []
        results = map_trials(
            _crash7_task, 12, jobs=2, chunk=4, max_retries=1,
            on_event=lambda kind, detail: kinds.append(kind), **FAST,
        )
        failure = results[7]
        assert isinstance(failure, TrialFailure)
        assert failure.index == 7 and failure.reason == "crash"
        # Every innocent chunk-mate of trial 7 still completed.
        assert [r for i, r in enumerate(results) if i != 7] == [
            i * i for i in range(12) if i != 7
        ]
        assert "bisect" in kinds and "quarantine" in kinds and "rebuild" in kinds

    def test_hanging_trial_hits_deadline_and_is_quarantined(self):
        kinds = []
        results = map_trials(
            _hang5_task, 8, jobs=2, chunk=4, max_retries=0,
            timeout=0.2, timeout_grace=1.0,
            on_event=lambda kind, detail: kinds.append(kind), **FAST,
        )
        failure = results[5]
        assert isinstance(failure, TrialFailure)
        assert failure.index == 5 and failure.reason == "timeout"
        assert [r for i, r in enumerate(results) if i != 5] == [
            i for i in range(8) if i != 5
        ]
        assert "timeout" in kinds

    def test_raising_trial_does_not_poison_chunk_mates(self):
        results = map_trials(_raise3_task, 10, jobs=2, chunk=5, max_retries=1, **FAST)
        failure = results[3]
        assert isinstance(failure, TrialFailure)
        assert failure.reason == "error" and failure.exc_type == "ValueError"
        assert "poison trial" in failure.message
        assert failure.attempts == 2  # original run + one retry
        assert [r for i, r in enumerate(results) if i != 3] == [
            i for i in range(10) if i != 3
        ]

    def test_degrades_to_inline_when_pool_never_completes_a_chunk(self):
        kinds = []
        results = map_trials(
            _worker_crash_task, 6, jobs=2, chunk=2, max_retries=0, max_rebuilds=1,
            on_event=lambda kind, detail: kinds.append(kind), **FAST,
        )
        # Inline fallback runs in the parent, where the task succeeds.
        assert results == [i + 100 for i in range(6)]
        assert "degrade" in kinds

    def test_explicit_indices_run_the_gap_set(self):
        assert map_trials(_square_task, 0, jobs=1, indices=[3, 9, 4]) == [9, 81, 16]

    def test_on_result_streams_inline_results(self):
        seen = []
        map_trials(_square_task, 4, jobs=1, on_result=lambda i, v: seen.append((i, v)))
        assert seen == [(0, 0), (1, 1), (2, 4), (3, 9)]


SPEC = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=12, seed=3)


def _records_key(result):
    """Bit-identity key over trial records (nan-safe via to_jsonable)."""
    return json.dumps(to_jsonable(result.records), sort_keys=True)


class TestCampaignResilience:
    def test_parallel_campaign_survives_worker_crash(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "crash:7")
        result = run_campaign(
            SPEC, jobs=2, chunk=4, max_retries=1, max_error_frac=0.2,
            backoff_base=0.02, backoff_cap=0.05,
        )
        assert len(result.records) == 11
        assert [(e.index, e.reason) for e in result.errors] == [(7, "crash")]
        assert result.stats.quarantined == 1
        assert result.stats.rebuilds >= 1

    def test_parallel_campaign_survives_hang(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "hang:3:600")
        result = run_campaign(
            SPEC, jobs=2, chunk=4, max_retries=0, max_error_frac=0.2,
            trial_timeout=0.5, timeout_grace=3.0,
            backoff_base=0.02, backoff_cap=0.05,
        )
        assert len(result.records) == 11
        assert [(e.index, e.reason) for e in result.errors] == [(3, "timeout")]
        assert result.stats.timeouts >= 1

    def test_surviving_trials_match_clean_run(self, monkeypatch):
        clean = run_campaign(SPEC)
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "raise:5")
        faulty = run_campaign(SPEC, max_error_frac=0.2, max_retries=1)
        assert [(e.index, e.reason, e.exc_type) for e in faulty.errors] == [
            (5, "error", "RuntimeError")
        ]
        # Clean records are in trial order, so dropping trial 5 must leave
        # exactly the faulty run's surviving records.
        surviving = [r for i, r in enumerate(clean.records) if i != 5]
        assert json.dumps(to_jsonable(faulty.records), sort_keys=True) == json.dumps(
            to_jsonable(surviving), sort_keys=True
        )

    def test_error_budget_aborts(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "raise:5")
        with pytest.raises(CampaignAbortedError):
            run_campaign(SPEC, max_error_frac=0.0)

    # The budget comparison is strictly `n_errors > max_error_frac *
    # n_trials`; 16 trials keep the budget exactly representable
    # (0.0625 * 16 == 1.0, 0.9375 * 16 == 15.0), so these pin the
    # boundary itself, not a float-fuzzed neighbourhood.
    def test_error_budget_exactly_at_budget_completes(self, monkeypatch):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=16, seed=3)
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "raise:5")
        result = run_campaign(spec, max_error_frac=0.0625)  # budget = 1.0
        assert len(result.records) == 15
        assert [(e.index, e.reason) for e in result.errors] == [(5, "error")]
        assert result.stats.quarantined == 1

    def test_error_budget_one_past_budget_aborts(self, monkeypatch):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=16, seed=3)
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "raise:*")
        # budget = 15.0; the 16th quarantine is the first past it.
        with pytest.raises(CampaignAbortedError):
            run_campaign(spec, max_error_frac=0.9375)

    def test_error_budget_every_trial_quarantined_at_budget(self, monkeypatch):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=16, seed=3)
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "raise:*")
        result = run_campaign(spec, max_error_frac=1.0)  # budget = 16.0
        assert result.records == []
        assert result.stats.quarantined == 16

    def test_events_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_FAULT", "raise:5")
        recorder = EventRecorder()
        run_campaign(SPEC, max_error_frac=0.2, events=recorder)
        assert recorder.count("quarantine") == 1
        assert any(event.kind == "quarantine" for event in recorder.events)


class TestCheckpointResume:
    def test_resume_is_bit_identical_to_uninterrupted_run(self, tmp_path):
        reference = run_campaign(SPEC)
        # Simulate a kill at ~50%: checkpoint holding only the first half.
        path = tmp_path / "half.jsonl"
        writer = CheckpointWriter(path, SPEC)
        for trial, record in enumerate(reference.records[:6]):
            writer.add_record(trial, record)
        writer.flush()

        resumed = run_campaign(SPEC, checkpoint=path, resume=True)
        assert resumed.stats.resumed == 6
        assert _records_key(resumed) == _records_key(reference)
        ref_summary = campaign_summary(reference)
        res_summary = campaign_summary(resumed)
        ref_summary.pop("execution"), res_summary.pop("execution")
        assert res_summary == ref_summary

    def test_checkpoint_round_trips_records(self, tmp_path):
        reference = run_campaign(SPEC)
        path = tmp_path / "full.jsonl"
        writer = CheckpointWriter(path, SPEC)
        for trial, record in enumerate(reference.records):
            writer.add_record(trial, record)
        writer.flush()
        state = load_checkpoint(path, spec=SPEC)
        assert state is not None and state.n_completed == SPEC.n_trials
        reloaded = [state.records[i] for i in sorted(state.records)]
        assert json.dumps(to_jsonable(reloaded), sort_keys=True) == _records_key(reference)

    def test_mismatched_spec_is_refused(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointWriter(path, SPEC).flush()
        other = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=12, seed=4)
        assert campaign_fingerprint(other) != campaign_fingerprint(SPEC)
        with pytest.raises(CheckpointMismatchError):
            run_campaign(other, checkpoint=path, resume=True)

    def test_missing_checkpoint_resumes_from_scratch(self, tmp_path):
        result = run_campaign(SPEC, checkpoint=tmp_path / "fresh.jsonl", resume=True)
        assert result.stats.resumed == 0
        assert len(result.records) == SPEC.n_trials

    def test_kill_midflight_then_resume_bit_identical(self, tmp_path):
        """End-to-end: SIGKILL a live checkpointing campaign, then resume."""
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=30, seed=5)
        path = tmp_path / "killed.jsonl"
        env = dict(os.environ)
        env["REPRO_CAMPAIGN_FAULT"] = "slow:*:0.05"
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.core.cli",
             "--network", "ConvNet", "--trials", "30", "--seed", "5",
             "--checkpoint", str(path), "--checkpoint-every", "4"],
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Kill as soon as a flush proves the campaign is mid-flight.
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline and not path.exists():
                time.sleep(0.05)
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it could be killed")
            assert path.exists(), "no checkpoint appeared before the deadline"
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        state = load_checkpoint(path, spec=spec)
        assert state is not None and 0 < state.n_completed < spec.n_trials

        resumed = run_campaign(spec, checkpoint=path, resume=True)
        reference = run_campaign(spec)
        assert resumed.stats.resumed == state.n_completed
        assert _records_key(resumed) == _records_key(reference)
