"""repro-campaign CLI."""

import json

import pytest

from repro.core.cli import main


class TestCampaignCli:
    def test_basic_run(self, capsys):
        assert main(["--network", "ConvNet", "--trials", "20", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "SDC-1" in out and "masked before output" in out

    def test_site_breakdown_printed_for_datapath(self, capsys):
        main(["--network", "ConvNet", "--trials", "25", "--seed", "1"])
        out = capsys.readouterr().out
        assert "accumulator" in out or "psum" in out

    def test_detection_summary(self, capsys):
        main(["--network", "ConvNet", "--trials", "20", "--seed", "1", "--detect", "dmr"])
        out = capsys.readouterr().out
        assert "detection (dmr)" in out

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "c.json"
        main(["--network", "ConvNet", "--trials", "15", "--seed", "2", "--out", str(out_file)])
        data = json.loads(out_file.read_text())
        assert data["n_trials"] == 15
        assert data["spec"]["network"] == "ConvNet"

    def test_buffer_target(self, capsys):
        assert main([
            "--network", "ConvNet", "--dtype", "16b_rb10",
            "--target", "layer_weight", "--trials", "15", "--seed", "3",
        ]) == 0

    def test_proteus_flag(self, capsys):
        assert main([
            "--network", "ConvNet", "--dtype", "32b_rb10",
            "--target", "next_layer", "--storage-dtype", "16b_rb10",
            "--trials", "10", "--seed", "4",
        ]) == 0

    def test_invalid_combination_rejected(self, capsys):
        # burst 0 is rejected by the spec validation, surfaced as exit 2.
        assert main(["--network", "ConvNet", "--trials", "5", "--burst", "0"]) == 2
        assert "invalid campaign" in capsys.readouterr().err

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            main(["--network", "ResNet"])
