"""Protection planner: cost model and budget solving."""

import numpy as np
import pytest

from repro.accel import EYERISS_16NM
from repro.core.planner import (
    PlannerInputs,
    plan_protection,
    sec_ded_overhead,
)


def make_inputs(dp_sdc=0.02, buf_sdc=0.05, recall=0.8):
    per_bit = np.zeros(16)
    per_bit[13:] = [0.05, 0.1, 0.02]
    return PlannerInputs(
        config=EYERISS_16NM,
        datapath_sdc=dp_sdc,
        buffer_sdc={
            "Global Buffer": buf_sdc,
            "Filter SRAM": buf_sdc,
            "Img REG": 0.0,
            "PSum REG": 0.0,
        },
        sed_recall=recall,
        per_bit_fit=per_bit,
        act_elements_per_inference=500_000,
        macs_per_inference=700_000_000,
    )


class TestSecDed:
    def test_known_overheads(self):
        # 16-bit word: 5 hamming bits + 1 parity = 6/16
        assert sec_ded_overhead(16) == pytest.approx(6 / 16)
        # 64-bit word: 7 hamming bits + 1 parity = 8/64
        assert sec_ded_overhead(64) == pytest.approx(8 / 64)

    def test_overhead_decreases_with_word_size(self):
        assert sec_ded_overhead(64) < sec_ded_overhead(32) < sec_ded_overhead(16)

    def test_invalid(self):
        with pytest.raises(ValueError):
            sec_ded_overhead(0)


class TestPlanner:
    def test_enumerates_all_combinations(self):
        plans = plan_protection(make_inputs(), fit_budget=1e6)
        assert len(plans) == 2 * 4 * 4  # sed x slh x ecc

    def test_unprotected_has_zero_cost(self):
        plans = plan_protection(make_inputs(), fit_budget=1e6)
        # With an unlimited budget the cheapest compliant plan is no
        # protection at all.
        best = plans[0]
        assert not best.use_sed and best.slh_target == 1.0 and not best.ecc_components
        assert best.area_overhead == 0.0 and best.runtime_overhead == 0.0

    def test_tight_budget_requires_protection(self):
        plans = plan_protection(make_inputs(), fit_budget=0.1)
        best = plans[0]
        assert best.total_fit <= 0.1
        assert best.ecc_components  # buffer FIT dominates: ECC is mandatory

    def test_protection_reduces_fit_monotonically(self):
        inputs = make_inputs()
        plans = {
            (p.use_sed, p.slh_target, p.ecc_components): p.total_fit
            for p in plan_protection(inputs, fit_budget=1e6)
        }
        none = plans[(False, 1.0, ())]
        sed = plans[(True, 1.0, ())]
        full = plans[(True, 100.0, tuple(s.name for s in EYERISS_16NM.buffers()))]
        assert sed < none
        assert full < sed

    def test_impossible_budget_returns_best_effort(self):
        plans = plan_protection(make_inputs(), fit_budget=1e-12)
        # Nothing complies; ranking falls back to lowest FIT first.
        assert plans[0].total_fit <= plans[-1].total_fit

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            plan_protection(make_inputs(), fit_budget=0.0)

    def test_describe(self):
        plans = plan_protection(make_inputs(), fit_budget=0.1)
        text = plans[0].describe()
        assert "FIT" in text and "area" in text

    def test_sed_costs_runtime_not_area(self):
        inputs = make_inputs()
        plans = plan_protection(inputs, fit_budget=1e6)
        sed_only = next(
            p for p in plans if p.use_sed and p.slh_target == 1.0 and not p.ecc_components
        )
        assert sed_only.area_overhead == 0.0
        assert sed_only.runtime_overhead > 0.0

    def test_runtime_weight_steers_choice(self):
        # With SED's runtime made prohibitively expensive and ECC cheap,
        # the best compliant plan should avoid SED if an ECC-only stack
        # complies.
        inputs = make_inputs(dp_sdc=0.0)
        with_sed = plan_protection(inputs, fit_budget=0.2, runtime_weight=1e6)[0]
        assert not with_sed.use_sed
