"""im2col/col2im against naive reference implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_out_size, im2col, patch_indices


def naive_conv(x, w, stride, pad):
    """Direct-loop convolution reference."""
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(wd, kw, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, f, oh, ow))
    for b in range(n):
        for fi in range(f):
            for oy in range(oh):
                for ox in range(ow):
                    patch = xp[b, :, oy * stride : oy * stride + kh, ox * stride : ox * stride + kw]
                    out[b, fi, oy, ox] = (patch * w[fi]).sum()
    return out


class TestConvOutSize:
    def test_basic(self):
        assert conv_out_size(32, 3, 1, 1) == 32
        assert conv_out_size(227, 11, 4, 0) == 55
        assert conv_out_size(7, 3, 2, 0) == 3

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 5, 1, 0)


class TestIm2Col:
    @pytest.mark.parametrize("stride,pad,kh", [(1, 0, 3), (1, 1, 3), (2, 0, 3), (2, 2, 5), (3, 1, 2)])
    def test_matches_naive_conv(self, rng, stride, pad, kh):
        x = rng.normal(0, 1, (2, 3, 9, 9))
        w = rng.normal(0, 1, (4, 3, kh, kh))
        cols = im2col(x, kh, kh, stride, pad)
        oh = conv_out_size(9, kh, stride, pad)
        y = (w.reshape(4, -1) @ cols).reshape(4, 2, oh * oh).transpose(1, 0, 2).reshape(2, 4, oh, oh)
        assert np.allclose(y, naive_conv(x, w, stride, pad))

    def test_shape(self, rng):
        x = rng.normal(0, 1, (2, 3, 8, 8))
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (3 * 9, 2 * 8 * 8)


class TestCol2Im:
    @given(
        stride=st.integers(1, 2),
        pad=st.integers(0, 2),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_adjoint_property(self, stride, pad, seed):
        """<im2col(x), c> == <x, col2im(c)> — the defining adjoint identity."""
        g = np.random.default_rng(seed)
        x = g.normal(0, 1, (1, 2, 7, 7))
        cols_shape = im2col(x, 3, 3, stride, pad).shape
        c = g.normal(0, 1, cols_shape)
        lhs = (im2col(x, 3, 3, stride, pad) * c).sum()
        rhs = (x * col2im(c, x.shape, 3, 3, stride, pad)).sum()
        assert np.isclose(lhs, rhs)

    def test_counts_overlaps(self):
        """col2im of ones counts how many windows cover each pixel."""
        x_shape = (1, 1, 4, 4)
        cols = np.ones((4, 9))  # 2x2 kernel, stride 1, no pad -> 3x3 outputs
        back = col2im(cols, x_shape, 2, 2, 1, 0)
        assert back[0, 0, 0, 0] == 1  # corner covered once
        assert back[0, 0, 1, 1] == 4  # interior covered by 4 windows


class TestPatchIndices:
    def test_matches_im2col_column(self, rng):
        x = rng.normal(0, 1, (3, 9, 9))
        kh = kw = 3
        stride, pad = 2, 1
        cols = im2col(x[None], kh, kw, stride, pad)
        ow = conv_out_size(9, kw, stride, pad)
        for oy, ox in [(0, 0), (1, 2), (4, 4)]:
            cc, yy, xx, valid = patch_indices((1, 3, 9, 9), (oy, ox), kh, kw, stride, pad)
            taps = np.zeros(cc.shape[0])
            taps[valid] = x[cc[valid], yy[valid], xx[valid]]
            assert np.array_equal(taps, cols[:, oy * ow + ox])

    def test_padding_marked_invalid(self):
        cc, yy, xx, valid = patch_indices((1, 1, 4, 4), (0, 0), 3, 3, 1, 1)
        assert not valid[0]  # top-left tap is in the padding
        assert valid[4]  # centre tap is real
