"""Unit tests for the saturating fixed-point codecs."""

import numpy as np
import pytest

from repro.dtypes import FXP_16B_RB10, FXP_32B_RB10, FXP_32B_RB26, FixedPointType


class TestLayout:
    def test_paper_layouts(self):
        assert FXP_16B_RB10.width == 16 and FXP_16B_RB10.frac_bits == 10
        assert FXP_16B_RB10.int_bits == 5
        assert FXP_32B_RB10.int_bits == 21
        assert FXP_32B_RB26.int_bits == 5

    def test_names(self):
        assert FXP_16B_RB10.name == "16b_rb10"
        assert FXP_32B_RB26.name == "32b_rb26"

    def test_fields(self):
        assert FXP_16B_RB10.field_of(0) == "fraction"
        assert FXP_16B_RB10.field_of(9) == "fraction"
        assert FXP_16B_RB10.field_of(10) == "integer"
        assert FXP_16B_RB10.field_of(14) == "integer"
        assert FXP_16B_RB10.field_of(15) == "sign"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FixedPointType(1, 0)
        with pytest.raises(ValueError):
            FixedPointType(16, 16)

    def test_no_integer_field_when_all_fraction(self):
        dt = FixedPointType(8, 7)
        assert [f.name for f in dt.fields] == ["fraction", "sign"]


class TestQuantize:
    def test_resolution(self):
        assert FXP_16B_RB10.resolution == 2.0**-10
        assert FXP_16B_RB10.quantize(np.array([2.0**-11]))[0] in (0.0, 2.0**-10)

    def test_exact_values_preserved(self):
        x = np.array([1.0, -1.5, 0.25, 31.0])
        assert np.array_equal(FXP_16B_RB10.quantize(x), x)

    def test_saturation(self):
        assert FXP_16B_RB10.quantize(np.array([1e5]))[0] == FXP_16B_RB10.max_value
        assert FXP_16B_RB10.quantize(np.array([-1e5]))[0] == FXP_16B_RB10.min_value

    def test_max_min_values(self):
        assert FXP_16B_RB10.max_value == pytest.approx((2**15 - 1) / 1024)
        assert FXP_16B_RB10.min_value == pytest.approx(-(2**15) / 1024)
        assert FXP_32B_RB26.max_value == pytest.approx(32.0, abs=1e-6)

    def test_nan_flushes_to_zero(self):
        assert FXP_16B_RB10.quantize(np.array([np.nan]))[0] == 0.0

    def test_inf_saturates(self):
        assert FXP_16B_RB10.quantize(np.array([np.inf]))[0] == FXP_16B_RB10.max_value
        assert FXP_16B_RB10.quantize(np.array([-np.inf]))[0] == FXP_16B_RB10.min_value


class TestEncodeDecode:
    def test_twos_complement(self):
        # -1.0 at rb10 = -1024 = 0xFC00 over 16 bits
        assert FXP_16B_RB10.encode(np.array([-1.0]))[0] == 0xFC00
        assert FXP_16B_RB10.encode(np.array([1.0]))[0] == 0x0400

    def test_roundtrip(self, rng):
        for dt in (FXP_16B_RB10, FXP_32B_RB10, FXP_32B_RB26):
            x = dt.quantize(rng.uniform(-30, 30, 200))
            assert np.array_equal(dt.decode(dt.encode(x)), x)

    def test_decode_sign_extension(self):
        assert FXP_16B_RB10.decode(np.array([0x8000]))[0] == FXP_16B_RB10.min_value


class TestFlipBit:
    def test_integer_bit_flip(self):
        # bit 14 = 2^4 = 16 units
        assert FXP_16B_RB10.flip_bit(np.array([1.0]), 14)[0] == 17.0

    def test_sign_bit_flip_wraps(self):
        v = FXP_16B_RB10.flip_bit(np.array([1.0]), 15)[0]
        assert v == 1.0 - 2.0**5  # two's-complement wrap

    def test_flip_involution(self, rng):
        x = FXP_32B_RB10.quantize(rng.uniform(-100, 100, 50))
        for bit in (0, 10, 20, 31):
            assert np.array_equal(
                FXP_32B_RB10.flip_bit(FXP_32B_RB10.flip_bit(x, bit), bit), x
            )


class TestArithmetic:
    def test_multiply_rounds_product(self):
        a = np.array([2.0**-10])
        # 2^-10 * 2^-10 = 2^-20, below resolution -> rounds to 0
        assert FXP_16B_RB10.multiply(a, a)[0] == 0.0

    def test_multiply_saturates(self):
        a = np.array([30.0])
        assert FXP_16B_RB10.multiply(a, a)[0] == FXP_16B_RB10.max_value

    def test_partials_saturating_chain(self):
        # 10 + 10 + 10 + 10 saturates at ~32 and stays there; then
        # subtracting walks back down from the rail (not from 40).
        p = np.array([10.0, 10.0, 10.0, 10.0, -10.0])
        chain = FXP_16B_RB10.partials(p)
        assert chain[3] == FXP_16B_RB10.max_value
        assert chain[4] == pytest.approx(FXP_16B_RB10.max_value - 10.0)

    def test_partials_fast_path_matches_slow_path(self, rng):
        # No saturation: cumsum fast path must equal exact accumulation.
        p = FXP_16B_RB10.quantize(rng.uniform(-0.1, 0.1, 100))
        assert np.allclose(FXP_16B_RB10.partials(p), np.cumsum(p))

    def test_accumulate_empty(self):
        assert FXP_32B_RB26.accumulate(np.array([])) == 0.0

    def test_add_saturates(self):
        assert FXP_16B_RB10.add(np.array([31.0]), np.array([5.0]))[0] == FXP_16B_RB10.max_value
