"""Injection engines: chain replay semantics and fault spreading."""

import numpy as np
import pytest

from repro.core.fault import BufferFault, DatapathFault
from repro.core.injector import inject_buffer, inject_datapath, replay_chain
from repro.dtypes import DOUBLE, FLOAT16, FXP_16B_RB10
from repro.nn.layers.base import MacChain


def chain_of(weights, inputs, bias=0.0):
    return MacChain(
        weights=np.asarray(weights, dtype=np.float64),
        inputs=np.asarray(inputs, dtype=np.float64),
        bias=float(bias),
    )


class TestReplayChain:
    def test_clean_matches_dot_product_in_double(self, rng):
        w, a = rng.normal(0, 1, 20), rng.normal(0, 1, 20)
        assert replay_chain(DOUBLE, chain_of(w, a, 0.5)) == pytest.approx(w @ a + 0.5)

    def test_weight_operand_fault(self):
        chain = chain_of([1.0, 2.0], [1.0, 1.0])
        f = DatapathFault(0, (0,), 0, "weight_operand", 14)  # +16 in 16b_rb10
        assert replay_chain(FXP_16B_RB10, chain, f) == pytest.approx(19.0)

    def test_input_operand_fault(self):
        chain = chain_of([2.0, 1.0], [1.0, 1.0])
        f = DatapathFault(0, (0,), 0, "input_operand", 14)
        # input 1.0 -> 17.0; product 34 saturates at 31.99..; +1
        expected = FXP_16B_RB10.add(np.array([FXP_16B_RB10.max_value]), np.array([1.0]))[0]
        assert replay_chain(FXP_16B_RB10, chain, f) == expected

    def test_product_fault(self):
        chain = chain_of([1.0, 1.0], [1.0, 1.0])
        f = DatapathFault(0, (0,), 1, "product", 12)  # product 1 -> 5
        assert replay_chain(FXP_16B_RB10, chain, f) == pytest.approx(6.0)

    def test_psum_fault_corrupts_running_sum_before_add(self):
        chain = chain_of([1.0, 1.0, 1.0], [1.0, 1.0, 1.0], bias=0.0)
        # At step 2 the running sum is 2.0; flip bit 11 (2 units) -> 0.0
        f = DatapathFault(0, (0,), 2, "psum", 11)
        assert replay_chain(FXP_16B_RB10, chain, f) == pytest.approx(1.0)

    def test_accumulator_fault_corrupts_after_add(self):
        chain = chain_of([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        # After step 2's add the sum is 3.0; flip bit 10 (1 unit) -> 2.0
        f = DatapathFault(0, (0,), 2, "accumulator", 10)
        assert replay_chain(FXP_16B_RB10, chain, f) == pytest.approx(2.0)

    def test_accumulator_fault_last_step_equals_output_flip(self, rng):
        w, a = rng.normal(0, 0.2, 8), rng.normal(0, 0.2, 8)
        chain = chain_of(w, a, 0.1)
        clean = replay_chain(FLOAT16, chain)
        f = DatapathFault(0, (0,), 7, "accumulator", 15)  # sign flip at last step
        assert replay_chain(FLOAT16, chain, f) == pytest.approx(-clean)

    def test_fault_on_zero_operand_is_masked(self):
        chain = chain_of([0.5, 0.5], [0.0, 1.0])
        clean = replay_chain(FXP_16B_RB10, chain)
        f = DatapathFault(0, (0,), 0, "weight_operand", 13)
        assert replay_chain(FXP_16B_RB10, chain, f) == clean  # 0 input masks it

    def test_step_out_of_range(self):
        chain = chain_of([1.0], [1.0])
        with pytest.raises(ValueError):
            replay_chain(FLOAT16, chain, DatapathFault(0, (0,), 5, "psum", 0))

    def test_unknown_latch(self):
        chain = chain_of([1.0], [1.0])
        f = DatapathFault.__new__(DatapathFault)  # bypass validation
        object.__setattr__(f, "layer_index", 0)
        object.__setattr__(f, "out_index", (0,))
        object.__setattr__(f, "step", 0)
        object.__setattr__(f, "latch", "bogus")
        object.__setattr__(f, "bit", 0)
        with pytest.raises(ValueError):
            replay_chain(FLOAT16, chain, f)

    def test_saturating_chain_replay(self):
        # A huge corrupted product saturates and later steps subtract
        # from the rail — exact FxP accumulator behaviour.
        chain = chain_of([1.0, 1.0], [20.0, -5.0])
        f = DatapathFault(0, (0,), 0, "product", 14)  # 20 -> 4 (bit 14 = 16)
        assert replay_chain(FXP_16B_RB10, chain, f) == pytest.approx(-1.0)


class TestInjectDatapath:
    def test_changes_exactly_one_chain_then_propagates(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        fault = DatapathFault(0, (1, 3, 3), 2, "accumulator", 14)
        res = inject_datapath(tiny_network, FLOAT16, fault, golden, record=True)
        assert not res.masked
        patched = res.faulty_activations[0]
        ref = golden.activations[1]
        diff = patched != ref
        assert diff.sum() == 1 and diff[1, 3, 3]

    def test_masked_returns_golden_scores(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        # find an input tap that is zero (padding) for a masked result
        chainless = None
        layer = tiny_network.layers[0]
        chain = layer.mac_operands(golden.activations[0], (0, 0, 0), FLOAT16)
        zero_step = int(np.where(chain.inputs == 0)[0][0])
        fault = DatapathFault(0, (0, 0, 0), zero_step, "weight_operand", 10)
        res = inject_datapath(tiny_network, FLOAT16, fault, golden, record=True)
        assert res.masked
        assert np.array_equal(res.scores, golden.scores)
        assert res.faulty_activations == []

    def test_non_mac_layer_rejected(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        with pytest.raises(TypeError):
            inject_datapath(tiny_network, FLOAT16, DatapathFault(1, (0, 0, 0), 0, "psum", 0), golden)

    def test_deterministic(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        fault = DatapathFault(3, (2, 1, 1), 5, "psum", 13)
        a = inject_datapath(tiny_network, FLOAT16, fault, golden)
        b = inject_datapath(tiny_network, FLOAT16, fault, golden)
        assert np.array_equal(a.scores, b.scores)

    def test_values_recorded(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        fault = DatapathFault(0, (0, 2, 2), 1, "accumulator", 14)
        res = inject_datapath(tiny_network, FLOAT16, fault, golden)
        assert res.value_after != res.value_before


class TestInjectBuffer:
    def test_layer_weight_spreads_across_layer(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        fault = BufferFault("layer_weight", 0, (0, 0, 1, 1), 14)
        res = inject_buffer(tiny_network, FLOAT16, fault, golden, record=True)
        assert not res.masked
        # All corrupted outputs are in the victim weight's output channel 0
        diff = res.faulty_activations[0] != golden.activations[1]
        assert diff[0].sum() > 1  # many output pixels affected (reuse!)
        assert diff[1:].sum() == 0

    def test_layer_weight_does_not_mutate_network(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        w_before = tiny_network.layers[0].weight.copy()
        fault = BufferFault("layer_weight", 0, (0, 0, 0, 0), 14)
        inject_buffer(tiny_network, FLOAT16, fault, golden)
        assert np.array_equal(tiny_network.layers[0].weight, w_before)
        again = tiny_network.forward(tiny_input, dtype=FLOAT16)
        assert np.array_equal(again.scores, golden.scores)

    def test_next_layer_corrupts_one_stored_act(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        li = tiny_network.mac_layer_indices()[1]
        victim = (0, 1, 1)
        fault = BufferFault("next_layer", li, victim, 14)
        res = inject_buffer(tiny_network, FLOAT16, fault, golden, record=True)
        if not res.masked:
            diff = res.faulty_activations[0] != golden.activations[li]
            assert diff.sum() == 1

    def test_row_activation_affects_only_residency_row(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        # pick a nonzero input pixel of conv2 (layer index 3)
        x = golden.activations[3]
        nz = np.argwhere(x != 0)
        c, y, xp = (int(v) for v in nz[0])
        oy = min(y, tiny_network.layers[3].out_shape(x.shape)[1] - 1)
        fault = BufferFault("row_activation", 3, (c, y, xp), 14, residency_row=oy)
        res = inject_buffer(tiny_network, FLOAT16, fault, golden, record=True)
        if not res.masked:
            diff = res.faulty_activations[0] != golden.activations[4]
            rows = {int(r) for r in np.argwhere(diff)[:, 1]}
            assert rows == {oy}

    def test_row_activation_nonreading_row_masked(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        x = golden.activations[3]
        nz = np.argwhere(x != 0)
        c, y, xp = (int(v) for v in nz[-1])
        _, oh, _ = tiny_network.layers[3].out_shape(x.shape)
        # pick an output row whose window cannot cover input row y
        bad_rows = [
            oy for oy in range(oh)
            if not (oy - 1 <= y <= oy + 1)  # kernel 3, stride 1, pad 1
        ]
        if bad_rows:
            fault = BufferFault("row_activation", 3, (c, y, xp), 14, residency_row=bad_rows[0])
            res = inject_buffer(tiny_network, FLOAT16, fault, golden)
            assert res.masked

    def test_single_read_equals_datapath_psum(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        bf = BufferFault("single_read", 0, (1, 2, 2, 4), 13)
        dp = DatapathFault(0, (1, 2, 2), 4, "psum", 13)
        a = inject_buffer(tiny_network, FLOAT16, bf, golden)
        b = inject_datapath(tiny_network, FLOAT16, dp, golden)
        assert np.array_equal(a.scores, b.scores)

    def test_unknown_scope(self, tiny_network, tiny_input):
        golden = tiny_network.forward(tiny_input, dtype=FLOAT16, record=True)
        bad = BufferFault.__new__(BufferFault)
        object.__setattr__(bad, "scope", "bogus")
        object.__setattr__(bad, "layer_index", 0)
        object.__setattr__(bad, "victim", (0,))
        object.__setattr__(bad, "bit", 0)
        object.__setattr__(bad, "residency_row", -1)
        with pytest.raises(ValueError):
            inject_buffer(tiny_network, FLOAT16, bad, golden)
