"""Campaign runner: determinism, parallel equivalence, aggregations."""

import pytest

from repro.core.campaign import CampaignResult, CampaignSpec, TrialRecord, run_campaign
from repro.core.outcome import Outcome


def outcome(sdc1=False, masked=False, sdc5=False, sdc10=False, sdc20=False):
    return Outcome(masked=masked, sdc1=sdc1, sdc5=sdc5, sdc10=sdc10, sdc20=sdc20)


def record(sdc1=False, masked=False, bit=0, site="psum", block=1, detected=None, reached=None):
    return TrialRecord(
        outcome=outcome(sdc1=sdc1, masked=masked),
        bit=bit,
        site=site,
        block=block,
        value_before=0.0,
        value_after=1.0,
        detected=detected,
        reached_output=reached,
    )


class TestSpecValidation:
    def test_bad_target(self):
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", target="bogus")

    def test_bad_latch(self):
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", latch="bogus")

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=-1)


class TestAggregations:
    def test_sdc_rate_over_all_trials(self):
        res = CampaignResult(
            spec=None,
            records=[record(sdc1=True), record(), record(masked=True), record()],
        )
        r = res.sdc_rate("sdc1")
        assert r.n == 4 and r.successes == 1  # masked counts in denominator

    def test_masked_fraction(self):
        res = CampaignResult(spec=None, records=[record(masked=True), record()])
        assert res.masked_fraction == 0.5

    def test_rate_by_bit(self):
        res = CampaignResult(
            spec=None,
            records=[record(sdc1=True, bit=14), record(bit=14), record(bit=0)],
        )
        by_bit = res.rate_by_bit()
        assert by_bit[14].p == 0.5 and by_bit[0].p == 0.0

    def test_rate_by_block_and_site(self):
        res = CampaignResult(
            spec=None,
            records=[record(sdc1=True, block=2, site="psum"), record(block=1, site="product")],
        )
        assert res.rate_by_block()[2].p == 1.0
        assert res.rate_by_site()["product"].p == 0.0

    def test_unknown_class(self):
        res = CampaignResult(spec=None, records=[record()])
        with pytest.raises(KeyError):
            res.sdc_rate("sdc42")

    def test_propagation(self):
        res = CampaignResult(
            spec=None,
            records=[record(reached=True), record(reached=False), record(reached=None)],
        )
        assert res.propagation_rate().n == 2
        assert res.propagation_rate().p == 0.5

    def test_detection_quality(self):
        res = CampaignResult(
            spec=None,
            records=[
                record(sdc1=True, detected=True),
                record(sdc1=True, detected=False),
                record(detected=True),  # false positive
                record(detected=False),
                record(detected=None),  # unscored
            ],
        )
        q = res.detection_quality()
        assert q.true_positives == 1
        assert q.false_positives == 1
        assert q.total_sdc == 2
        assert q.total_injected == 4

    def test_merge(self):
        a = CampaignResult(spec=None, records=[record()])
        b = CampaignResult(spec=None, records=[record(sdc1=True)])
        assert a.merge(b).n_trials == 2


class TestRunCampaign:
    SPEC = CampaignSpec(
        network="ConvNet",
        dtype="FLOAT16",
        n_trials=40,
        seed=77,
        with_detection=True,
        record_propagation=True,
    )

    def test_deterministic_across_runs(self):
        a = run_campaign(self.SPEC)
        b = run_campaign(self.SPEC)
        assert [r.value_after for r in a.records] == [r.value_after for r in b.records]
        assert a.sdc_rate().p == b.sdc_rate().p

    def test_parallel_matches_serial(self):
        serial = run_campaign(self.SPEC, jobs=1)
        parallel = run_campaign(self.SPEC, jobs=2)
        assert [r.value_after for r in serial.records] == [
            r.value_after for r in parallel.records
        ]
        assert [r.outcome for r in serial.records] == [r.outcome for r in parallel.records]

    def test_seed_changes_results(self):
        other = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=40, seed=78)
        a = run_campaign(self.SPEC)
        b = run_campaign(other)
        assert [r.bit for r in a.records] != [r.bit for r in b.records]

    def test_buffer_campaign(self):
        spec = CampaignSpec(
            network="ConvNet", dtype="16b_rb10", target="layer_weight", n_trials=25, seed=3
        )
        res = run_campaign(spec)
        assert res.n_trials == 25
        assert all(r.site == "layer_weight" for r in res.records)

    def test_masked_trials_not_flagged(self):
        res = run_campaign(self.SPEC)
        for r in res.records:
            if r.outcome.masked:
                # An output-masked fault may still have perturbed internal
                # state, but it must never reach the final fmap, and the
                # detector must not fire on it (golden-equivalent values
                # stay within learned bounds).
                assert r.reached_output is False
                assert r.detected is False

    def test_pinned_bit_and_latch(self):
        spec = CampaignSpec(
            network="ConvNet", dtype="FLOAT16", n_trials=15, seed=5, bit=14, latch="psum"
        )
        res = run_campaign(spec)
        assert all(r.bit == 14 and r.site == "psum" for r in res.records)

    def test_zero_trials(self):
        spec = CampaignSpec(network="ConvNet", dtype="FLOAT16", n_trials=0)
        res = run_campaign(spec)
        assert res.n_trials == 0
