"""repro — reproduction of Li et al., "Understanding Error Propagation in
Deep Learning Neural Network (DNN) Accelerators and Applications" (SC'17).

The package implements, from scratch:

- bit-exact numeric formats (``repro.dtypes``),
- a NumPy DNN inference + training engine (``repro.nn``),
- the paper's four networks with synthetic calibrated weights (``repro.zoo``),
- the canonical accelerator datapath and the Eyeriss buffer
  microarchitecture (``repro.accel``),
- the fault-injection framework, SDC/FIT analysis and both protection
  techniques — symptom-based error detectors and selective latch
  hardening (``repro.core``),
- and one experiment module per table/figure of the paper
  (``repro.experiments``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
