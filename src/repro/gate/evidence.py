"""Evidence manifests: the machine-readable release artifact of the gate.

One ``repro-gate check`` run produces one manifest: a single atomic
JSON document mapping every checked obligation to its verdict and the
concrete evidence behind it (pytest node results, benchmark gauge
values vs their floors, campaign-parity divergence lists, lint finding
counts), plus env/git provenance so the artifact alone answers "what
was promised, was it kept, on which code, and how do we know".

The write goes through the same pid-unique-temp + ``os.replace``
discipline as checkpoints and run manifests: a gate killed mid-write
can never publish a torn manifest.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.utils.tables import format_table

__all__ = [
    "EVIDENCE_FORMAT",
    "EVIDENCE_VERSION",
    "build_manifest",
    "load_manifest",
    "render_manifest",
    "write_manifest",
]

EVIDENCE_FORMAT = "repro-evidence-manifest"
EVIDENCE_VERSION = 1


def build_manifest(report: dict, *, spec_dir: str | Path, argv: list[str] | None = None) -> dict:
    """Wrap a :func:`repro.gate.runner.check_obligations` report."""
    from repro.obs.manifest import environment_info

    return {
        "format": EVIDENCE_FORMAT,
        "version": EVIDENCE_VERSION,
        "status": "pass" if report["ok"] else "fail",
        "blocking_failures": list(report["blocking_failures"]),
        "counts": dict(report["counts"]),
        "gate": {
            "spec_dir": str(spec_dir),
            "argv": list(argv or []),
        },
        "env": environment_info(),
        "obligations": report["obligations"],
    }


def write_manifest(path: str | Path, manifest: dict) -> Path:
    from repro.core.checkpoint import atomic_write_text

    return atomic_write_text(path, json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def load_manifest(path: str | Path) -> dict:
    path = Path(path)
    manifest = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(manifest, dict) or manifest.get("format") != EVIDENCE_FORMAT:
        raise ValueError(f"{path} is not a {EVIDENCE_FORMAT} document")
    return manifest


_VERDICT_MARK = {"pass": "ok", "fail": "FAIL", "waived": "waived"}


def render_manifest(manifest: dict, only_id: str | None = None) -> str:
    """Human rendering of an evidence manifest (``repro-gate evidence``)."""
    blocks = []
    obligations = manifest.get("obligations", [])
    if only_id is not None:
        obligations = [o for o in obligations if o.get("id") == only_id]
        if not obligations:
            return f"no obligation {only_id} in this manifest"
    rows = []
    for obl in obligations:
        rows.append([
            obl.get("id", "?"),
            obl.get("severity", "?"),
            _VERDICT_MARK.get(obl.get("verdict"), str(obl.get("verdict"))),
            obl.get("title", ""),
        ])
    counts = manifest.get("counts", {})
    env = manifest.get("env", {})
    header = (
        f"gate: {manifest.get('status', '?')} — "
        f"{counts.get('passed', 0)}/{counts.get('total', 0)} passed, "
        f"{counts.get('failed', 0)} failed, {counts.get('waived', 0)} waived"
    )
    if env.get("git_rev"):
        header += f"  (git {str(env['git_rev'])[:12]})"
    blocks.append(header)
    blocks.append(format_table(["obligation", "severity", "verdict", "title"], rows,
                               title="verdicts"))
    for obl in obligations:
        if only_id is None and obl.get("verdict") == "pass":
            continue  # evidence detail on demand or on failure
        detail_rows = []
        for recipe in obl.get("recipes", []):
            duration = recipe.get("duration_s")
            detail_rows.append([
                recipe.get("type", "?"),
                recipe.get("status", "?"),
                "n/a" if duration is None else f"{duration:.1f}s",
                recipe.get("pointer", ""),
            ])
        blocks.append(format_table(
            ["recipe", "status", "time", "evidence"], detail_rows,
            title=f"{obl.get('id')}: {obl.get('verdict')}"))
        if obl.get("waiver"):
            w = obl["waiver"]
            blocks.append(f"{obl.get('id')}: waived — {w.get('reason')} "
                          f"(expires {w.get('expires')})")
        if obl.get("waiver_expired"):
            w = obl["waiver_expired"]
            blocks.append(f"{obl.get('id')}: waiver EXPIRED {w.get('expires')} — "
                          "failure counts again")
    return "\n\n".join(blocks)
