"""Recipe executors: turn an obligation's evidence recipe into a verdict.

Every executor returns a JSON-safe *outcome* dict::

    {"status": "pass" | "fail" | "error",
     "duration_s": float,
     "pointer": "<one-line evidence pointer>",
     "evidence": {...recipe-specific detail...}}

``fail`` means the recipe ran and the invariant does not hold; ``error``
means the recipe itself could not produce evidence (missing file, crash,
timeout).  Both are gate failures — an invariant without evidence is not
satisfied — but the distinction is preserved in the manifest so a broken
recipe is not mistaken for a broken invariant.

Recipe types
------------
- ``pytest`` — run the named test node ids in a subprocess; the nodes
  *are* the evidence pointer.
- ``bench`` — evaluate gauge floor expressions against the newest
  ``benchmarks/BENCH_<date>.json`` snapshot, optionally (re)generating
  the gauges by running a benchmark file when they are absent.
- ``campaign_parity`` — run one campaign under several execution
  variants (``jobsN``, ``batchN``, ``shmN``, ``resume``) and require
  every summary to be byte-identical to the serial baseline; the
  ``resume`` variant also diffs the two run manifests through
  :func:`repro.obs.cli.compare_runs`, and ``shmN`` forces the
  shared-memory golden path on.  Optional ``target_halfwidth`` /
  ``stop_stratify`` / ``stop_check_every`` params put the early-stopping
  rule on the spec so its skip decisions are part of the parity.
  Optional ``trace_mode`` / ``trace_every`` params turn on the
  propagation flight recorder: every variant then writes its own trace
  file and must match the serial one ``read_bytes``-for-byte; the
  ``resume`` variant restarts from a half-truncated trace and has to
  re-derive the missing rows identically.
- ``lint`` — in-process ``repro-lint`` sweep; any finding is a failure.
- ``obs_diff`` — compare two existing run manifests / run logs.
- ``command`` — arbitrary argv; exit 0 is the invariant.
"""

from __future__ import annotations

import fnmatch
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.gate.spec import RECIPE_TYPES, RecipeSpec

__all__ = ["run_recipe"]

#: Characters of subprocess output preserved as evidence.
_OUTPUT_TAIL = 4000


def _tail(text: str, limit: int = _OUTPUT_TAIL) -> str:
    text = text.strip()
    return text if len(text) <= limit else "...[truncated]...\n" + text[-limit:]


def _subprocess_env(root: Path) -> dict:
    env = dict(os.environ)
    src = root / "src"
    if src.is_dir():
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else str(src)
    return env


def _run_argv(argv: list[str], root: Path, timeout: float) -> dict:
    """Run a subprocess, capturing the outcome shape all runners share."""
    try:
        proc = subprocess.run(
            argv, cwd=root, env=_subprocess_env(root),
            capture_output=True, text=True, timeout=timeout,
        )
    except subprocess.TimeoutExpired:
        return {"returncode": None, "timed_out": True, "output": "", "argv": argv}
    except OSError as exc:
        return {"returncode": None, "timed_out": False,
                "output": f"spawn failed: {exc}", "argv": argv}
    output = proc.stdout + ("\n" + proc.stderr if proc.stderr.strip() else "")
    return {"returncode": proc.returncode, "timed_out": False,
            "output": _tail(output), "argv": argv}


# -- pytest ----------------------------------------------------------------- #
def _recipe_pytest(params: dict, root: Path, timeout: float) -> dict:
    nodes = params.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        return {"status": "error", "pointer": "pytest recipe needs 'nodes'", "evidence": {}}
    argv = [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider", *nodes]
    run = _run_argv(argv, root, timeout)
    if run["timed_out"]:
        return {"status": "error", "pointer": f"pytest timed out after {timeout:g}s",
                "evidence": {"nodes": nodes, **run}}
    ok = run["returncode"] == 0
    pointer = f"pytest exit {run['returncode']}: {', '.join(nodes)}"
    return {"status": "pass" if ok else "fail", "pointer": pointer,
            "evidence": {"nodes": nodes, **run}}


# -- bench gauge floors ----------------------------------------------------- #
_OPS = {
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
}

_AGGS = {
    "max": max,
    "min": min,
    "mean": lambda vals: sum(vals) / len(vals),
}


def _latest_bench(root: Path, pattern: str) -> Path | None:
    candidates = sorted(root.glob(pattern))
    return candidates[-1] if candidates else None


def _load_gauges(path: Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return dict(payload.get("snapshot", {}).get("gauges", {}))


def _eval_check(check: dict, gauges: dict) -> dict:
    gauge, op = check.get("gauge", ""), check.get("op", ">=")
    agg, floor = check.get("agg", "max"), check.get("value")
    result = {"gauge": gauge, "op": op, "agg": agg, "value": floor}
    if op not in _OPS or agg not in _AGGS or not isinstance(floor, (int, float)):
        result.update(ok=False, reason="malformed check")
        return result
    matched = {k: v for k, v in gauges.items() if fnmatch.fnmatchcase(k, gauge)}
    if not matched:
        result.update(ok=False, reason="no matching gauge", matched={})
        return result
    observed = _AGGS[agg](list(matched.values()))
    result.update(ok=bool(_OPS[op](observed, floor)), observed=observed, matched=matched)
    return result


def _recipe_bench(params: dict, root: Path, timeout: float) -> dict:
    pattern = params.get("file", "benchmarks/BENCH_*.json")
    checks = params.get("checks")
    if not isinstance(checks, list) or not checks:
        return {"status": "error", "pointer": "bench recipe needs 'checks'", "evidence": {}}
    generate = params.get("generate")

    path = _latest_bench(root, pattern)
    gauges = _load_gauges(path) if path is not None else {}
    missing = [c for c in checks
               if not any(fnmatch.fnmatchcase(k, c.get("gauge", "")) for k in gauges)]
    generated = None

    def _regenerate() -> dict | None:
        # (Re)measure: run the benchmark file that owns the gauges; its
        # session-end hook merges them into today's BENCH snapshot.
        nonlocal path, gauges, generated
        generated = _run_argv([sys.executable, "-m", "pytest", "-q", generate], root, timeout)
        if generated["timed_out"]:
            return {"status": "error",
                    "pointer": f"benchmark generation timed out after {timeout:g}s",
                    "evidence": {"generate": generated}}
        path = _latest_bench(root, pattern)
        gauges = _load_gauges(path) if path is not None else {}
        return None

    can_generate = isinstance(generate, str) and bool(generate)
    if missing and can_generate:
        timed_out = _regenerate()
        if timed_out is not None:
            return timed_out

    if path is None:
        return {"status": "error", "pointer": f"no benchmark snapshot matches {pattern}",
                "evidence": {"pattern": pattern, "generate": generated}}
    results = [_eval_check(c, gauges) for c in checks]
    ok = all(r["ok"] for r in results)
    if not ok and generated is None and can_generate:
        # A stale snapshot (e.g. measured under load) may under-report;
        # re-measure once before calling the floor violated.
        timed_out = _regenerate()
        if timed_out is not None:
            return timed_out
        results = [_eval_check(c, gauges) for c in checks]
        ok = all(r["ok"] for r in results)
    worst = next((r for r in results if not r["ok"]), None)
    pointer = (f"all {len(results)} gauge floor(s) hold in {path.name}" if ok else
               f"{worst['gauge']} {worst['op']} {worst['value']} violated in {path.name}"
               f" (observed {worst.get('observed', 'nothing')})")
    evidence = {"file": str(path), "checks": results}
    if generated is not None:
        evidence["generate"] = generated
    return {"status": "pass" if ok else "fail", "pointer": pointer, "evidence": evidence}


# -- campaign parity -------------------------------------------------------- #
def _comparable_summary(result) -> dict:
    from repro.core.serialize import campaign_summary

    summary = campaign_summary(result)
    # Execution counters describe the harness (retries, pool rebuilds,
    # resumed trials), not the physics; identity is everything else.
    summary.pop("execution", None)
    return json.loads(json.dumps(summary, sort_keys=True))


def _summary_divergences(base: dict, other: dict) -> list[str]:
    from repro.obs.cli import _flatten

    flat_a: dict = {}
    flat_b: dict = {}
    _flatten(base, "", flat_a)
    _flatten(other, "", flat_b)
    return sorted(
        key for key in set(flat_a) | set(flat_b)
        if flat_a.get(key, "<absent>") != flat_b.get(key, "<absent>")
    )


def _recipe_campaign_parity(params: dict, root: Path, timeout: float) -> dict:
    del timeout  # the supervised pool's per-recipe deadline is the backstop
    from repro.core.campaign import CampaignSpec, run_campaign
    from repro.obs.cli import compare_runs
    from repro.obs.manifest import load_run

    network = params.get("network")
    if not isinstance(network, str) or not network:
        return {"status": "error", "pointer": "campaign_parity needs 'network'", "evidence": {}}
    halfwidth = params.get("target_halfwidth")
    spec = CampaignSpec(
        network=network,
        dtype=str(params.get("dtype", "FLOAT16")),
        target=str(params.get("target", "datapath")),
        n_trials=int(params.get("trials", 48)),
        seed=int(params.get("seed", 9)),
        target_halfwidth=float(halfwidth) if halfwidth is not None else None,
        stop_stratify=str(params.get("stop_stratify", "overall")),
        stop_check_every=int(params.get("stop_check_every", 64)),
        trace_mode=str(params.get("trace_mode", "off")),
        trace_every=int(params.get("trace_every", 16)),
    )
    variants = params.get("variants", ["jobs2", "batch16", "resume"])
    tracing = spec.trace_mode != "off"

    with tempfile.TemporaryDirectory(prefix="repro-gate-") as tmp:
        tmpdir = Path(tmp)

        def _trace_kwargs(label: str) -> dict:
            # Each run writes its own trace file; the parity claim is
            # that every one of them is byte-identical to serial's.
            return {"trace_path": tmpdir / f"{label}.trace.jsonl"} if tracing else {}

        def _trace_divergence(label: str) -> list[str]:
            if not tracing:
                return []
            base = (tmpdir / "serial.trace.jsonl").read_bytes()
            other = (tmpdir / f"{label}.trace.jsonl").read_bytes()
            return [] if base == other else [f"trace:{label} bytes differ from serial"]

        baseline = run_campaign(spec, **_trace_kwargs("serial"))
        base_summary = _comparable_summary(baseline)
        per_variant: dict[str, dict] = {}
        for variant in variants:
            if variant.startswith("shm"):
                # Shared-memory golden state, forced on even for jobs=1 so
                # the parity holds on single-core CI runners too.
                result = run_campaign(spec, jobs=int(variant[3:] or 2),
                                      shared_golden=True, **_trace_kwargs(variant))
                diverged = _summary_divergences(base_summary, _comparable_summary(result))
            elif variant.startswith("jobs"):
                result = run_campaign(spec, jobs=int(variant[4:] or 2),
                                      **_trace_kwargs(variant))
                diverged = _summary_divergences(base_summary, _comparable_summary(result))
            elif variant.startswith("batch"):
                result = run_campaign(spec, batch=int(variant[5:] or 16),
                                      **_trace_kwargs(variant))
                diverged = _summary_divergences(base_summary, _comparable_summary(result))
            elif variant == "resume":
                # A kill at ~50%: the reference run's checkpoint truncated
                # to its first half of entry lines (header preserved), then
                # a resumed run on top of it.  Truncating the real file —
                # rather than re-writing records by position — keeps trial
                # indices and early-stop skip entries faithful.
                ref_ck = tmpdir / "ref.jsonl"
                run_campaign(spec, checkpoint=ref_ck, **_trace_kwargs("ref"))
                half_ck = tmpdir / "half.jsonl"
                lines = ref_ck.read_text(encoding="utf-8").splitlines()
                header, entries = lines[0], lines[1:]
                half_ck.write_text(
                    "\n".join([header] + entries[: len(entries) // 2]) + "\n",
                    encoding="utf-8",
                )
                if tracing:
                    # The kill also tears the trace back: the resumed run
                    # gets only the first half of the rows and must
                    # re-derive the rest byte-for-byte.
                    tlines = (tmpdir / "ref.trace.jsonl").read_text(
                        encoding="utf-8"
                    ).splitlines()
                    (tmpdir / "resume.trace.jsonl").write_text(
                        "\n".join([tlines[0]] + tlines[1: 1 + (len(tlines) - 1) // 2])
                        + "\n",
                        encoding="utf-8",
                    )
                result = run_campaign(spec, checkpoint=half_ck, resume=True,
                                      **_trace_kwargs("resume"))
                diverged = _summary_divergences(base_summary, _comparable_summary(result))
                # The run manifests must agree on every deterministic
                # fact too — the same check `repro-obs diff` enforces.
                manifest_a = ref_ck.with_name(ref_ck.name + ".manifest.json")
                manifest_b = half_ck.with_name(half_ck.name + ".manifest.json")
                diverged += [
                    f"manifest:{line}"
                    for line in compare_runs(load_run(manifest_a), load_run(manifest_b))
                ]
            else:
                per_variant[variant] = {"identical": False, "diverged": ["unknown variant"]}
                continue
            diverged += _trace_divergence(variant)
            per_variant[variant] = {"identical": not diverged, "diverged": diverged[:20]}

    ok = all(v["identical"] for v in per_variant.values())
    bad = sorted(v for v, d in per_variant.items() if not d["identical"])
    pointer = (
        f"{network} x{spec.n_trials}: serial == {', '.join(per_variant)} (byte-identical)"
        if ok else f"{network} x{spec.n_trials}: diverged under {', '.join(bad)}"
    )
    return {"status": "pass" if ok else "fail", "pointer": pointer,
            "evidence": {"spec": {"network": spec.network, "dtype": spec.dtype,
                                  "target": spec.target, "n_trials": spec.n_trials,
                                  "seed": spec.seed},
                         "variants": per_variant}}


# -- lint ------------------------------------------------------------------- #
def _recipe_lint(params: dict, root: Path, timeout: float) -> dict:
    del timeout
    from repro.analysis.config import find_pyproject, load_config
    from repro.analysis.engine import lint_paths

    rel_paths = params.get("paths", ["src", "tests", "benchmarks", "examples"])
    targets = [root / p for p in rel_paths if (root / p).exists()]
    if not targets:
        return {"status": "error", "pointer": f"no lint targets exist under {root}",
                "evidence": {"paths": rel_paths}}
    config = load_config(find_pyproject(root))
    findings = lint_paths(targets, config, root=root)
    shown = [f"{f.file}:{f.line}: {f.rule_id} {f.message}" for f in findings[:10]]
    pointer = ("repro-lint clean over " + " ".join(str(p) for p in rel_paths)
               if not findings else f"repro-lint: {len(findings)} finding(s)")
    return {"status": "pass" if not findings else "fail", "pointer": pointer,
            "evidence": {"paths": [str(p) for p in rel_paths],
                         "findings": len(findings), "first": shown}}


# -- obs diff --------------------------------------------------------------- #
def _recipe_obs_diff(params: dict, root: Path, timeout: float) -> dict:
    del timeout
    from repro.obs.cli import compare_runs
    from repro.obs.manifest import load_run

    run_a, run_b = params.get("run_a"), params.get("run_b")
    if not run_a or not run_b:
        return {"status": "error", "pointer": "obs_diff needs 'run_a' and 'run_b'",
                "evidence": {}}
    paths = [Path(p) if Path(p).is_absolute() else root / p for p in (run_a, run_b)]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        return {"status": "error", "pointer": f"run file(s) missing: {', '.join(missing)}",
                "evidence": {"missing": missing}}
    diverged = compare_runs(load_run(paths[0]), load_run(paths[1]))
    pointer = (f"{paths[0].name} == {paths[1].name} on every deterministic fact"
               if not diverged else
               f"{paths[0].name} != {paths[1].name}: {len(diverged)} fact(s) differ")
    return {"status": "pass" if not diverged else "fail", "pointer": pointer,
            "evidence": {"run_a": str(paths[0]), "run_b": str(paths[1]),
                         "diverged": diverged[:20]}}


# -- command ---------------------------------------------------------------- #
def _recipe_command(params: dict, root: Path, timeout: float) -> dict:
    argv = params.get("argv")
    if not isinstance(argv, list) or not argv:
        return {"status": "error", "pointer": "command recipe needs 'argv'", "evidence": {}}
    run = _run_argv([str(a) for a in argv], root, timeout)
    if run["timed_out"]:
        return {"status": "error", "pointer": f"command timed out after {timeout:g}s",
                "evidence": run}
    ok = run["returncode"] == 0
    return {"status": "pass" if ok else "fail",
            "pointer": f"exit {run['returncode']}: {' '.join(str(a) for a in argv)}",
            "evidence": run}


_RUNNERS = {
    "pytest": _recipe_pytest,
    "bench": _recipe_bench,
    "campaign_parity": _recipe_campaign_parity,
    "lint": _recipe_lint,
    "obs_diff": _recipe_obs_diff,
    "command": _recipe_command,
}

assert set(_RUNNERS) == set(RECIPE_TYPES), "recipe registry out of sync with spec"


def run_recipe(recipe: RecipeSpec, root: str | Path) -> dict:
    """Execute one recipe against the checkout at ``root``.

    Never raises: an executor bug becomes an ``error`` outcome so the
    gate can report it alongside the honest verdicts.
    """
    runner = _RUNNERS.get(recipe.type)
    start = time.perf_counter()
    if runner is None:
        outcome = {"status": "error", "pointer": f"unknown recipe type {recipe.type!r}",
                   "evidence": {}}
    else:
        try:
            outcome = runner(dict(recipe.params), Path(root), recipe.timeout)
        except Exception as exc:  # a recipe bug must not take down the gate
            outcome = {"status": "error",
                       "pointer": f"recipe raised {type(exc).__name__}: {exc}",
                       "evidence": {"exception": repr(exc)}}
    outcome["type"] = recipe.type
    outcome["describe"] = recipe.describe()
    outcome["duration_s"] = round(time.perf_counter() - start, 3)
    return outcome
