"""Gate execution: resolve obligations, run recipes, collect verdicts.

Recipes are independent work items, so they run through the same
supervised pool that executes fault-injection trials
(:func:`repro.utils.parallel.map_trials`): per-recipe deadlines mean a
wedged recipe (a hung pytest subprocess, a stuck benchmark) is killed
and reported as an ``error`` outcome instead of stalling the release
forever, and a recipe that crashes its worker is quarantined without
taking the other recipes down.  ``jobs=1`` runs everything inline for
debugging.

Verdict algebra per obligation:

- every recipe ``pass``          → ``pass``
- any recipe ``fail``/``error``  → ``fail``, unless an *active* waiver
  covers the obligation          → ``waived``
- an expired waiver does not shield (the failure counts) and is itself
  flagged in the manifest.

The gate as a whole fails iff any **release-blocking** obligation ends
``fail``; ``advisory`` failures and waived failures are reported but
never block.
"""

from __future__ import annotations

import datetime as _dt
from collections.abc import Callable
from dataclasses import replace
from pathlib import Path

from repro.gate.recipes import run_recipe
from repro.gate.spec import Obligation, RecipeSpec
from repro.utils.parallel import TrialFailure, map_trials

__all__ = ["check_obligations", "select_obligations"]

#: Flat per-recipe allowance on top of its declared timeout, covering
#: pool startup and result pickling (mirrors map_trials' grace idiom).
_RECIPE_GRACE = 30.0


class _RecipeTaskFactory:
    """Picklable ``map_trials`` task factory over the flat recipe table.

    The factory ships the whole (small) job table to each worker once;
    the returned task maps a trial index to one executed recipe.
    """

    def __init__(self, jobs: list[tuple[str, RecipeSpec]], root: str):
        self.jobs = jobs
        self.root = root

    def __call__(self, index: int | None = None):
        # Factory protocol (no args) returns the task; the task itself
        # is this same immutable object, called with a trial index.
        if index is None:
            return self
        return self.run(index)

    def run(self, index: int) -> dict:
        obligation_id, recipe = self.jobs[index]
        outcome = run_recipe(recipe, self.root)
        outcome["obligation"] = obligation_id
        return outcome


def select_obligations(
    obligations: list[Obligation], ids: list[str] | None
) -> list[Obligation]:
    """Resolve an id selection (None/empty = everything), order-stable."""
    if not ids:
        return list(obligations)
    by_id = {o.id: o for o in obligations}
    unknown = [i for i in ids if i not in by_id]
    if unknown:
        known = ", ".join(sorted(by_id)) or "<none>"
        raise KeyError(f"unknown obligation id(s) {unknown}; known: {known}")
    seen: set[str] = set()
    picked = []
    for obl_id in ids:
        if obl_id not in seen:
            seen.add(obl_id)
            picked.append(by_id[obl_id])
    return picked


def _obligation_verdict(obligation: Obligation, outcomes: list[dict],
                        today: _dt.date | None) -> dict:
    ok = all(o.get("status") == "pass" for o in outcomes)
    waiver = obligation.waiver
    verdict = "pass" if ok else "fail"
    entry = {
        "id": obligation.id,
        "title": obligation.title,
        "invariant": obligation.invariant,
        "severity": obligation.severity,
        "pack": obligation.pack,
        "spec_path": obligation.path,
        "tags": list(obligation.tags),
        "recipes": outcomes,
    }
    if not ok and waiver is not None:
        if waiver.active(today):
            verdict = "waived"
            entry["waiver"] = {"reason": waiver.reason, "expires": waiver.expires,
                               "by": waiver.by}
        else:
            entry["waiver_expired"] = {"reason": waiver.reason, "expires": waiver.expires}
    entry["verdict"] = verdict
    return entry


def check_obligations(
    obligations: list[Obligation],
    root: str | Path,
    *,
    jobs: int = 1,
    timeout_scale: float = 1.0,
    today: _dt.date | None = None,
    on_outcome: Callable[[dict], None] | None = None,
) -> dict:
    """Run every recipe of every obligation; return the gate report.

    Args:
        obligations: Already-selected obligations (see
            :func:`select_obligations`).
        root: Repo checkout the recipes run against.
        jobs: Worker processes for recipe fan-out (1 = inline).
        timeout_scale: Multiplier on every recipe's declared timeout
            (slow CI runners raise it rather than editing specs).
        today: Waiver-expiry reference date (defaults to the wall clock;
            tests pin it).
        on_outcome: Streaming callback per finished recipe outcome.

    Returns the report dict that :mod:`repro.gate.evidence` wraps into
    the evidence manifest: per-obligation verdicts + recipe outcomes +
    the overall ``ok`` flag (advisory/waived failures do not clear it).
    """
    flat: list[tuple[str, RecipeSpec]] = []
    for obligation in obligations:
        for recipe in obligation.recipes:
            flat.append((obligation.id, replace(recipe, timeout=recipe.timeout * timeout_scale)))

    outcomes_by_obligation: dict[str, list[dict]] = {o.id: [] for o in obligations}
    if flat:
        # Timing benchmarks measure wall-clock ratios; sharing cores
        # with other recipes skews them into false floor violations, so
        # `bench` recipes run *exclusively* after the pooled batch
        # (override per recipe with `exclusive: false`).
        exclusive = [i for i, (_, r) in enumerate(flat)
                     if r.type == "bench" and r.params.get("exclusive", True)]
        pooled = [i for i in range(len(flat)) if i not in set(exclusive)]

        # Uniform pool-level backstop: the widest declared deadline. The
        # per-recipe subprocess timeouts are the tight bound; this one
        # only catches recipes that wedge without ever timing out.
        pool_timeout = max(recipe.timeout for _, recipe in flat) + _RECIPE_GRACE

        def _on_result(index: int, value: object) -> None:
            if on_outcome is not None and isinstance(value, dict):
                on_outcome(value)

        factory = _RecipeTaskFactory(flat, str(Path(root)))
        results: list[object] = [None] * len(flat)
        if pooled:
            for index, value in zip(pooled, map_trials(
                factory,
                0,
                jobs=jobs,
                chunk=1,
                indices=pooled,
                timeout=pool_timeout,
                timeout_grace=_RECIPE_GRACE,
                max_retries=0,
                on_result=_on_result,
            )):
                results[index] = value
        for index in exclusive:
            value = factory.run(index)
            _on_result(index, value)
            results[index] = value

        for (obl_id, recipe), value in zip(flat, results):
            if isinstance(value, TrialFailure):
                value = {
                    "obligation": obl_id,
                    "type": recipe.type,
                    "describe": recipe.describe(),
                    "status": "error",
                    "pointer": f"recipe {value.reason} after {value.attempts} attempt(s)"
                               + (f": {value.message}" if value.message else ""),
                    "evidence": {"reason": value.reason, "attempts": value.attempts},
                    "duration_s": None,
                }
                if on_outcome is not None:
                    on_outcome(value)
            assert isinstance(value, dict)
            outcomes_by_obligation[obl_id].append(value)

    entries = [
        _obligation_verdict(o, outcomes_by_obligation[o.id], today) for o in obligations
    ]
    blocking_failures = [e["id"] for e in entries
                         if e["verdict"] == "fail" and e["severity"] == "release-blocking"]
    counts = {
        "total": len(entries),
        "passed": sum(1 for e in entries if e["verdict"] == "pass"),
        "failed": sum(1 for e in entries if e["verdict"] == "fail"),
        "waived": sum(1 for e in entries if e["verdict"] == "waived"),
    }
    return {
        "ok": not blocking_failures,
        "blocking_failures": blocking_failures,
        "counts": counts,
        "obligations": entries,
    }
