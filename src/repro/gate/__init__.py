"""Obligation-based release gates over the repo's reliability invariants.

The repo's core promises — serial ≡ parallel ≡ batch-N ≡ kill/resume
byte-identity, golden immutability, FIT within the ISO 26262 budget,
SED precision/recall floors, batched-propagation speedup floors, lint
cleanliness — used to be enforced by an ad-hoc scatter of CI jobs and
test asserts.  This package lifts them into data:

- :mod:`repro.gate.spec` — declarative obligation specs
  (``obligations/*.yaml``): id, invariant in prose, severity, evidence
  recipes, expiring waivers;
- :mod:`repro.gate.recipes` — recipe executors (pytest node ids,
  benchmark gauge floors over ``BENCH_<date>.json``, campaign-parity
  probes, obs-manifest diffs, lint sweeps, commands);
- :mod:`repro.gate.runner` — supervised recipe fan-out (reusing
  :func:`repro.utils.parallel.map_trials` so a wedged recipe cannot
  stall the release) and the verdict algebra;
- :mod:`repro.gate.evidence` — the atomic, machine-readable evidence
  manifest that is CI's release artifact;
- :mod:`repro.gate.cli` — the ``repro-gate`` command
  (``list`` / ``check`` / ``evidence`` / ``explain`` / ``selfcheck``).

Design grounding: POET's obligations/recipes/evidence model — an
invariant is *satisfied* only while live evidence maps to it, and every
exception is explicit, attributed and expiring.
"""

from repro.gate.spec import (
    OBLIGATION_ID_RE,
    RECIPE_TYPES,
    SEVERITIES,
    Obligation,
    RecipeSpec,
    SpecError,
    Waiver,
    default_spec_dir,
    load_pack,
    load_specs,
)
from repro.gate.runner import check_obligations, select_obligations

__all__ = [
    "OBLIGATION_ID_RE",
    "RECIPE_TYPES",
    "SEVERITIES",
    "Obligation",
    "RecipeSpec",
    "SpecError",
    "Waiver",
    "check_obligations",
    "default_spec_dir",
    "load_pack",
    "load_specs",
    "select_obligations",
]
