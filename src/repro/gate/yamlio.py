"""YAML loading for obligation specs, with a dependency-free fallback.

Obligation packs are YAML because the format must be reviewable by
humans and diffable in PRs (POET's obligations/recipes/evidence model
uses the same shape).  PyYAML is used when importable, but the gate is
release-critical infrastructure and must not acquire a hard dependency
the base install lacks — so :func:`loads` falls back to a small parser
for the strict subset of YAML the packs are written in:

- nested block mappings (``key: value`` / ``key:`` + indented block);
- block sequences (``- item``), including mapping items whose first
  entry rides on the dash line (``- id: OBL-X``);
- flow sequences (``[a, b, c]``) and scalars (null/bool/int/float,
  single- or double-quoted strings, plain strings);
- multi-line plain scalars (a key with an indented prose block below
  it), folded with single spaces the way YAML folds them;
- ``#`` comments.

Anchors, multi-document streams, block scalars (``|``/``>``) and
flow mappings are deliberately out of scope; a pack using them fails
loudly under the fallback parser, and the test suite parses every
shipped pack with both implementations to keep them agreeing.
"""

from __future__ import annotations

import re

__all__ = ["MiniYamlError", "loads", "load_path"]

_ENTRY_RE = re.compile(r"^([^\s:#'\"]+):(?:\s+(.*))?$")


class MiniYamlError(ValueError):
    """The fallback parser met YAML outside the supported subset."""


def loads(text: str):
    """Parse a YAML document: PyYAML when available, subset parser else."""
    try:
        import yaml
    except ImportError:
        return _mini_loads(text)
    return yaml.safe_load(text)


def load_path(path) -> object:
    from pathlib import Path

    return loads(Path(path).read_text(encoding="utf-8"))


# -- fallback subset parser ------------------------------------------------- #
def _strip_comment(line: str) -> str:
    quote = None
    for i, ch in enumerate(line):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in " \t"):
            return line[:i].rstrip()
    return line.rstrip()


def _split_flow(inner: str) -> list[str]:
    parts, depth, quote, cur = [], 0, None, []
    for ch in inner:
        if quote is not None:
            cur.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            cur.append(ch)
        elif ch == "[":
            depth += 1
            cur.append(ch)
        elif ch == "]":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


def _scalar(token: str):
    token = token.strip()
    if token in ("", "null", "~", "Null", "NULL"):
        return None
    if token in ("true", "True", "TRUE"):
        return True
    if token in ("false", "False", "FALSE"):
        return False
    if len(token) >= 2 and token[0] in "'\"" and token[-1] == token[0]:
        return token[1:-1]
    if token.startswith("[") and token.endswith("]"):
        return [_scalar(part) for part in _split_flow(token[1:-1])]
    try:
        return int(token, 10)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _lines(text: str) -> list[tuple[int, str]]:
    out = []
    for raw in text.splitlines():
        content = _strip_comment(raw)
        if not content.strip():
            continue
        leading = len(content) - len(content.lstrip(" \t"))
        if "\t" in content[:leading]:
            raise MiniYamlError("tabs in indentation are not supported")
        indent = leading
        out.append((indent, content.strip()))
    return out


def _is_list_item(content: str) -> bool:
    return content == "-" or content.startswith("- ")


def _dispatch(lines, i: int, indent: int):
    if _is_list_item(lines[i][1]):
        return _parse_list(lines, i, indent)
    return _parse_map(lines, i, indent)


def _parse_list(lines, i: int, indent: int):
    out: list = []
    while i < len(lines):
        ind, content = lines[i]
        if ind != indent or not _is_list_item(content):
            break
        rest = content[1:].strip()
        if not rest:
            # `-` alone: the value is the deeper-indented block below.
            if i + 1 < len(lines) and lines[i + 1][0] > indent:
                value, i = _dispatch(lines, i + 1, lines[i + 1][0])
            else:
                value, i = None, i + 1
            out.append(value)
            continue
        entry = _ENTRY_RE.match(rest)
        if entry is None:
            out.append(_scalar(rest))
            i += 1
            continue
        # Mapping item with its first entry on the dash line.  Remaining
        # entries sit at the indent of the line after the dash.
        item: dict = {}
        key, val = entry.group(1), entry.group(2)
        if val is None or not val.strip():
            raise MiniYamlError(
                f"inline map entry {key!r} on a '-' line must carry a scalar value"
            )
        item[key] = _scalar(val)
        i += 1
        if i < len(lines) and lines[i][0] > indent and not _is_list_item(lines[i][1]):
            more, i = _parse_map(lines, i, lines[i][0])
            item.update(more)
        out.append(item)
    return out, i


def _parse_map(lines, i: int, indent: int):
    out: dict = {}
    while i < len(lines):
        ind, content = lines[i]
        if ind < indent or _is_list_item(content):
            break
        if ind > indent:
            raise MiniYamlError(f"unexpected indent at: {content!r}")
        entry = _ENTRY_RE.match(content)
        if entry is None:
            raise MiniYamlError(f"expected 'key: value', got: {content!r}")
        key, val = entry.group(1), entry.group(2)
        if key in out:
            raise MiniYamlError(f"duplicate key {key!r}")
        if val is not None and val.strip():
            out[key] = _scalar(val)
            i += 1
            continue
        i += 1
        if i < len(lines) and lines[i][0] > indent:
            child = lines[i]
            if _is_list_item(child[1]) or _ENTRY_RE.match(child[1]):
                out[key], i = _dispatch(lines, i, child[0])
            else:
                # Multi-line plain scalar: deeper prose lines fold into
                # one space-joined string, as YAML folds them.
                parts = []
                while i < len(lines) and lines[i][0] > indent:
                    parts.append(lines[i][1])
                    i += 1
                out[key] = " ".join(parts)
        elif i < len(lines) and lines[i][0] == indent and _is_list_item(lines[i][1]):
            # Block sequence at the same indent as its key — common YAML.
            out[key], i = _parse_list(lines, i, indent)
        else:
            out[key] = None
    return out, i


def _mini_loads(text: str):
    lines = _lines(text)
    if not lines:
        return None
    value, nxt = _dispatch(lines, 0, lines[0][0])
    if nxt != len(lines):
        raise MiniYamlError(f"trailing content at: {lines[nxt][1]!r}")
    return value
