"""Obligation specs: the declarative form of the repo's reliability invariants.

An *obligation* is one promise the repo makes (serial ≡ parallel ≡
batch-N ≡ kill/resume byte-identity, golden immutability, FIT within the
ISO 26262 budget, SED precision/recall floors, bench speedup floors,
lint cleanliness...) written down as data instead of being implied by
the existence of a CI job.  Each obligation declares:

- ``id`` — stable ``OBL-...`` identifier CI and waivers refer to;
- ``invariant`` — the promise in prose, for humans;
- ``severity`` — ``release-blocking`` (gate fails the release) or
  ``advisory`` (reported, never blocks);
- ``recipes`` — how to *check* the promise: pytest node ids, benchmark
  gauge floors over ``BENCH_<date>.json``, campaign-parity probes,
  obs-manifest diffs, lint sweeps, or a plain command;
- ``waiver`` — an explicit, expiring acknowledgement that the
  obligation is allowed to fail (reason + expiry date + who).

Specs live in ``obligations/*.yaml`` packs at the repo root; the gate
(:mod:`repro.gate.runner`) resolves them, executes the recipes, and
emits an evidence manifest (:mod:`repro.gate.evidence`).
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.gate.yamlio import MiniYamlError, load_path

__all__ = [
    "OBLIGATION_ID_RE",
    "RECIPE_TYPES",
    "SEVERITIES",
    "SPEC_FORMAT",
    "SPEC_VERSION",
    "Obligation",
    "RecipeSpec",
    "SpecError",
    "Waiver",
    "default_spec_dir",
    "load_pack",
    "load_specs",
]

SPEC_FORMAT = "repro-obligations"
SPEC_VERSION = 1

#: Obligation identifiers: stable, grep-able, CI-referenceable.
OBLIGATION_ID_RE = re.compile(r"OBL-[A-Z0-9][A-Z0-9-]*")

SEVERITIES = ("release-blocking", "advisory")

#: Recipe executors the gate knows how to run (repro.gate.recipes).
RECIPE_TYPES = ("pytest", "bench", "campaign_parity", "lint", "obs_diff", "command")

#: Recipe wall-clock ceiling when a spec does not declare one (seconds).
DEFAULT_RECIPE_TIMEOUT = 900.0


class SpecError(ValueError):
    """An obligation pack is malformed (parse, schema, or policy error)."""


@dataclass(frozen=True)
class Waiver:
    """An expiring permission for an obligation to fail.

    A waiver is never silent: the evidence manifest records it, and an
    *expired* waiver stops shielding the obligation — the failure counts
    again, plus the manifest flags the stale waiver itself.
    """

    reason: str
    expires: str  # ISO date, YYYY-MM-DD
    by: str = ""

    def expiry_date(self) -> _dt.date:
        try:
            return _dt.date.fromisoformat(self.expires)
        except ValueError as exc:
            raise SpecError(f"waiver expiry {self.expires!r} is not YYYY-MM-DD") from exc

    def active(self, today: _dt.date | None = None) -> bool:
        today = today if today is not None else _dt.date.today()
        return today <= self.expiry_date()


@dataclass(frozen=True)
class RecipeSpec:
    """One executable evidence recipe of an obligation."""

    type: str
    params: dict = field(default_factory=dict)
    timeout: float = DEFAULT_RECIPE_TIMEOUT

    def describe(self) -> str:
        """One-line human summary used by ``list`` / ``explain``."""
        p = self.params
        if self.type == "pytest":
            nodes = p.get("nodes", [])
            head = nodes[0] if nodes else "?"
            extra = f" (+{len(nodes) - 1} more)" if len(nodes) > 1 else ""
            return f"pytest {head}{extra}"
        if self.type == "bench":
            checks = p.get("checks", [])
            parts = [f"{c.get('gauge')} {c.get('op', '>=')} {c.get('value')}" for c in checks]
            return "bench " + "; ".join(parts)
        if self.type == "campaign_parity":
            return (f"campaign_parity {p.get('network')}/{p.get('dtype', 'FLOAT16')}"
                    f" x{p.get('trials')} vs {','.join(p.get('variants', []))}")
        if self.type == "lint":
            return "repro-lint " + " ".join(p.get("paths", []))
        if self.type == "obs_diff":
            return f"obs_diff {p.get('run_a')} vs {p.get('run_b')}"
        if self.type == "command":
            return "command " + " ".join(str(a) for a in p.get("argv", []))
        return self.type


@dataclass(frozen=True)
class Obligation:
    """One declared invariant plus the recipes that evidence it."""

    id: str
    title: str
    invariant: str
    severity: str
    recipes: tuple[RecipeSpec, ...]
    tags: tuple[str, ...] = ()
    waiver: Waiver | None = None
    pack: str = ""
    path: str = ""

    @property
    def blocking(self) -> bool:
        return self.severity == "release-blocking"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _parse_recipe(raw: object, where: str) -> RecipeSpec:
    _require(isinstance(raw, dict), f"{where}: recipe must be a mapping, got {type(raw).__name__}")
    assert isinstance(raw, dict)
    params = dict(raw)
    rtype = params.pop("type", None)
    _require(isinstance(rtype, str) and rtype in RECIPE_TYPES,
             f"{where}: recipe type {rtype!r} not one of {RECIPE_TYPES}")
    timeout = params.pop("timeout", DEFAULT_RECIPE_TIMEOUT)
    _require(isinstance(timeout, (int, float)) and timeout > 0,
             f"{where}: recipe timeout must be a positive number")
    return RecipeSpec(type=str(rtype), params=params, timeout=float(timeout))


def _parse_waiver(raw: object, where: str) -> Waiver | None:
    if raw is None:
        return None
    _require(isinstance(raw, dict), f"{where}: waiver must be a mapping")
    assert isinstance(raw, dict)
    reason, expires = raw.get("reason"), raw.get("expires")
    _require(isinstance(reason, str) and bool(reason.strip()),
             f"{where}: waiver needs a non-empty 'reason'")
    _require(isinstance(expires, str) and bool(expires),
             f"{where}: waiver needs an 'expires' date (YYYY-MM-DD)")
    waiver = Waiver(reason=str(reason), expires=str(expires), by=str(raw.get("by", "")))
    waiver.expiry_date()  # validate eagerly, not at check time
    return waiver


def _parse_obligation(raw: object, pack: str, path: Path) -> Obligation:
    _require(isinstance(raw, dict), f"{path}: obligation must be a mapping")
    assert isinstance(raw, dict)
    obl_id = raw.get("id")
    where = f"{path}:{obl_id or '<missing id>'}"
    _require(isinstance(obl_id, str) and OBLIGATION_ID_RE.fullmatch(obl_id) is not None,
             f"{where}: id must match {OBLIGATION_ID_RE.pattern!r}")
    severity = raw.get("severity", "release-blocking")
    _require(severity in SEVERITIES, f"{where}: severity {severity!r} not one of {SEVERITIES}")
    title = raw.get("title")
    _require(isinstance(title, str) and bool(title.strip()), f"{where}: needs a 'title'")
    invariant = raw.get("invariant")
    _require(isinstance(invariant, str) and bool(invariant.strip()),
             f"{where}: needs the 'invariant' stated in prose")
    raw_recipes = raw.get("recipes")
    _require(isinstance(raw_recipes, list) and len(raw_recipes) > 0,
             f"{where}: needs at least one recipe")
    assert isinstance(raw_recipes, list)
    recipes = tuple(_parse_recipe(r, where) for r in raw_recipes)
    tags = raw.get("tags", [])
    _require(isinstance(tags, list) and all(isinstance(t, str) for t in tags),
             f"{where}: tags must be a list of strings")
    unknown = set(raw) - {"id", "title", "invariant", "severity", "recipes", "tags", "waiver"}
    _require(not unknown, f"{where}: unknown keys {sorted(unknown)}")
    return Obligation(
        id=str(obl_id),
        title=str(title).strip(),
        invariant=" ".join(str(invariant).split()),
        severity=str(severity),
        recipes=recipes,
        tags=tuple(tags),
        waiver=_parse_waiver(raw.get("waiver"), where),
        pack=pack,
        path=str(path),
    )


def load_pack(path: str | Path) -> list[Obligation]:
    """Parse one ``obligations/*.yaml`` pack into validated obligations."""
    path = Path(path)
    try:
        doc = load_path(path)
    except MiniYamlError as exc:
        raise SpecError(f"{path}: {exc}") from exc
    _require(isinstance(doc, dict), f"{path}: pack must be a mapping")
    assert isinstance(doc, dict)
    _require(doc.get("format") == SPEC_FORMAT,
             f"{path}: format must be {SPEC_FORMAT!r}, got {doc.get('format')!r}")
    _require(doc.get("version") == SPEC_VERSION,
             f"{path}: unsupported version {doc.get('version')!r}")
    pack = doc.get("pack")
    _require(isinstance(pack, str) and bool(pack), f"{path}: needs a 'pack' name")
    raw = doc.get("obligations")
    _require(isinstance(raw, list) and len(raw) > 0, f"{path}: needs a non-empty 'obligations' list")
    assert isinstance(raw, list)
    return [_parse_obligation(o, str(pack), path) for o in raw]


def load_specs(spec_dir: str | Path) -> list[Obligation]:
    """Load every pack under ``spec_dir``, enforcing repo-unique ids."""
    spec_dir = Path(spec_dir)
    paths = sorted(spec_dir.glob("*.yaml")) + sorted(spec_dir.glob("*.yml"))
    _require(bool(paths), f"no obligation packs (*.yaml) under {spec_dir}")
    obligations: list[Obligation] = []
    seen: dict[str, str] = {}
    for path in paths:
        for obl in load_pack(path):
            if obl.id in seen:
                raise SpecError(
                    f"{path}: duplicate obligation id {obl.id} (also in {seen[obl.id]})")
            seen[obl.id] = str(path)
            obligations.append(obl)
    return sorted(obligations, key=lambda o: o.id)


def default_spec_dir(start: str | Path | None = None) -> Path:
    """Locate the repo's ``obligations/`` directory from ``start`` upward."""
    here = Path(start) if start is not None else Path.cwd()
    for candidate in (here, *here.resolve().parents):
        spec_dir = candidate / "obligations"
        if spec_dir.is_dir() and (
            list(spec_dir.glob("*.yaml")) or list(spec_dir.glob("*.yml"))
        ):
            return spec_dir
    # Fall back to the checkout that repro itself was imported from.
    pkg_root = Path(__file__).resolve().parents[3]
    spec_dir = pkg_root / "obligations"
    if spec_dir.is_dir():
        return spec_dir
    raise SpecError(
        f"no obligations/ directory found above {here} (pass --specs explicitly)")
