"""``repro-gate``: obligation-based release gates over reliability invariants.

Subcommands:

- ``list`` — every obligation with severity, recipes and waiver state.
- ``check [ID...] [--all]`` — execute the selected obligations' evidence
  recipes and atomically write the evidence manifest; exit 1 when any
  unwaived release-blocking obligation fails.
- ``evidence <manifest>`` — render a previously written manifest.
- ``explain <ID>`` — the obligation's invariant, recipes and policy.
- ``selfcheck`` — validate every pack, and cross-check CI: every
  obligation id referenced by the workflows exists, and the workflows
  actually gate on every release-blocking obligation.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from pathlib import Path

from repro.gate.evidence import build_manifest, load_manifest, render_manifest, write_manifest
from repro.gate.runner import check_obligations, select_obligations
from repro.gate.spec import (
    OBLIGATION_ID_RE,
    Obligation,
    SpecError,
    default_spec_dir,
    load_specs,
)
from repro.utils.tables import format_table

__all__ = ["build_parser", "main", "selfcheck"]


def _resolve_specs(arg: str | None) -> tuple[Path, list[Obligation]]:
    spec_dir = Path(arg) if arg is not None else default_spec_dir()
    return spec_dir, load_specs(spec_dir)


def _cmd_list(args) -> int:
    _, obligations = _resolve_specs(args.specs)
    if args.format == "json":
        print(json.dumps([
            {"id": o.id, "pack": o.pack, "severity": o.severity, "title": o.title,
             "tags": list(o.tags), "recipes": [r.describe() for r in o.recipes],
             "waived": o.waiver is not None and o.waiver.active()}
            for o in obligations
        ], indent=2))
        return 0
    rows = []
    for o in obligations:
        waiver = "-"
        if o.waiver is not None:
            waiver = ("active until " + o.waiver.expires if o.waiver.active()
                      else "EXPIRED " + o.waiver.expires)
        rows.append([o.id, o.pack, o.severity, str(len(o.recipes)), waiver, o.title])
    print(format_table(["obligation", "pack", "severity", "recipes", "waiver", "title"],
                       rows, title=f"{len(obligations)} obligations"))
    return 0


def _cmd_explain(args) -> int:
    _, obligations = _resolve_specs(args.specs)
    matches = [o for o in obligations if o.id == args.id]
    if not matches:
        print(f"repro-gate: no obligation {args.id!r}; try 'repro-gate list'",
              file=sys.stderr)
        return 2
    o = matches[0]
    print(f"{o.id} [{o.severity}] — {o.title}")
    print(f"pack: {o.pack} ({o.path})")
    if o.tags:
        print(f"tags: {', '.join(o.tags)}")
    print(f"\ninvariant:\n  {o.invariant}")
    print("\nevidence recipes:")
    for i, r in enumerate(o.recipes, 1):
        print(f"  {i}. [{r.type}, timeout {r.timeout:g}s] {r.describe()}")
    if o.waiver is not None:
        state = "active" if o.waiver.active() else "EXPIRED"
        print(f"\nwaiver ({state}): {o.waiver.reason}"
              f" — expires {o.waiver.expires}"
              + (f", by {o.waiver.by}" if o.waiver.by else ""))
    else:
        print("\nwaiver: none — failures block the release")
    return 0


def _cmd_check(args) -> int:
    spec_dir, obligations = _resolve_specs(args.specs)
    if not args.ids and not getattr(args, "all", False):
        print("repro-gate: select obligation ids or pass --all", file=sys.stderr)
        return 2
    try:
        selected = select_obligations(obligations, args.ids or None)
    except KeyError as exc:
        print(f"repro-gate: {exc.args[0]}", file=sys.stderr)
        return 2
    root = Path(args.root) if args.root else spec_dir.parent

    def on_outcome(outcome: dict) -> None:
        duration = outcome.get("duration_s")
        shown = "n/a" if duration is None else f"{duration:.1f}s"
        print(f"  {outcome.get('obligation')} · {outcome.get('type')}"
              f" → {outcome.get('status')} ({shown})  {outcome.get('pointer', '')}")

    n_recipes = sum(len(o.recipes) for o in selected)
    print(f"repro-gate: checking {len(selected)} obligation(s), "
          f"{n_recipes} recipe(s), jobs={args.jobs}")
    report = check_obligations(
        selected, root, jobs=args.jobs, timeout_scale=args.timeout_scale,
        on_outcome=on_outcome,
    )
    manifest = build_manifest(report, spec_dir=spec_dir, argv=list(sys.argv))
    out = Path(args.out)
    write_manifest(out, manifest)
    print()
    print(render_manifest(manifest))
    print(f"\nevidence manifest: {out}")
    if not report["ok"]:
        print("repro-gate: FAIL — blocking obligations violated: "
              + ", ".join(report["blocking_failures"]), file=sys.stderr)
        return 1
    return 0


def _cmd_evidence(args) -> int:
    try:
        manifest = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"repro-gate: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(manifest, indent=2, sort_keys=True))
    else:
        print(render_manifest(manifest, only_id=args.id))
    return 0


_CHECK_INVOCATION_RE = re.compile(r"repro-gate\s+check\s+([^\n\\]*)")


def selfcheck(spec_dir: Path, ci_paths: list[Path]) -> list[str]:
    """Spec/CI consistency problems (empty list = healthy).

    Checks, in order:
    1. every pack parses and validates (:func:`load_specs` raising is
       reported, not propagated);
    2. every ``OBL-...`` id mentioned anywhere in the CI workflows
       exists in the packs (a renamed obligation cannot leave a stale
       CI reference behind);
    3. the workflows run ``repro-gate check`` at all, and their explicit
       id selections (or ``--all``) cover every release-blocking
       obligation (a new obligation cannot silently stay ungated).
    """
    problems: list[str] = []
    try:
        obligations = load_specs(spec_dir)
    except SpecError as exc:
        return [f"spec error: {exc}"]
    known = {o.id for o in obligations}
    blocking = {o.id for o in obligations if o.blocking}

    gated: set[str] = set()
    saw_check = False
    for path in ci_paths:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            problems.append(f"{path}: unreadable ({exc})")
            continue
        for mention in set(OBLIGATION_ID_RE.findall(text)):
            if mention not in known:
                problems.append(f"{path}: references unknown obligation {mention}")
        for invocation in _CHECK_INVOCATION_RE.findall(text):
            saw_check = True
            if "--all" in invocation.split():
                gated |= blocking
            gated |= set(OBLIGATION_ID_RE.findall(invocation))
    if ci_paths and not saw_check:
        problems.append("no workflow invokes 'repro-gate check'")
    for obl_id in sorted(blocking - gated):
        problems.append(f"release-blocking obligation {obl_id} is not gated by any workflow")
    return problems


def _cmd_selfcheck(args) -> int:
    spec_dir = Path(args.specs) if args.specs else default_spec_dir()
    root = Path(args.root) if args.root else spec_dir.parent
    ci_paths = sorted((root / ".github" / "workflows").glob("*.yml")) + sorted(
        (root / ".github" / "workflows").glob("*.yaml"))
    if args.ci:
        ci_paths = [Path(p) for p in args.ci]
    problems = selfcheck(spec_dir, ci_paths)
    if problems:
        for problem in problems:
            print(f"repro-gate selfcheck: {problem}", file=sys.stderr)
        return 1
    obligations = load_specs(spec_dir)
    print(f"repro-gate selfcheck: {len(obligations)} obligation(s) across "
          f"{len({o.pack for o in obligations})} pack(s); "
          f"{len(ci_paths)} workflow(s) cross-checked — consistent")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gate",
        description="Obligation-based release gate over the repo's reliability invariants.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_specs(p):
        p.add_argument("--specs", default=None,
                       help="obligations/ directory (default: found from cwd upward)")

    p_list = sub.add_parser("list", help="list every obligation")
    add_specs(p_list)
    p_list.add_argument("--format", choices=("text", "json"), default="text")

    p_check = sub.add_parser("check", help="run evidence recipes and emit the manifest")
    add_specs(p_check)
    p_check.add_argument("ids", nargs="*", help="obligation ids (omit with --all)")
    p_check.add_argument("--all", action="store_true", help="check every obligation")
    p_check.add_argument("--out", default="gate-evidence.json",
                         help="evidence manifest path (default: ./gate-evidence.json)")
    p_check.add_argument("--jobs", type=int, default=1,
                         help="recipe worker processes (default 1 = inline)")
    p_check.add_argument("--root", default=None,
                         help="checkout to run recipes against (default: specs' parent)")
    p_check.add_argument("--timeout-scale", type=float, default=1.0,
                         help="multiply every recipe timeout (slow runners)")

    p_evidence = sub.add_parser("evidence", help="render an evidence manifest")
    p_evidence.add_argument("manifest")
    p_evidence.add_argument("--id", default=None, help="show one obligation's evidence")
    p_evidence.add_argument("--format", choices=("text", "json"), default="text")

    p_explain = sub.add_parser("explain", help="show one obligation's spec")
    add_specs(p_explain)
    p_explain.add_argument("id")

    p_self = sub.add_parser("selfcheck", help="validate packs and CI cross-references")
    add_specs(p_self)
    p_self.add_argument("--root", default=None, help="repo root (default: specs' parent)")
    p_self.add_argument("--ci", nargs="*", default=None,
                        help="workflow files (default: .github/workflows/*.yml)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "list": _cmd_list,
        "check": _cmd_check,
        "evidence": _cmd_evidence,
        "explain": _cmd_explain,
        "selfcheck": _cmd_selfcheck,
    }
    try:
        return commands[args.command](args)
    except SpecError as exc:
        print(f"repro-gate: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head/less that exited early: not an error.
        # Swap in a closed-safe stdout so interpreter shutdown does not
        # complain about the broken one.
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
        return 0


if __name__ == "__main__":
    sys.exit(main())
