"""``python -m repro.gate`` — alias for the ``repro-gate`` entry point."""

import sys

from repro.gate.cli import main

if __name__ == "__main__":
    sys.exit(main())
