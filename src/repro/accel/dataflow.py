"""Analytical reuse model of the row-stationary dataflow.

The injector's buffer-fault scopes (:mod:`repro.accel.buffers`) follow
from how long each datum is resident and how many MACs read it.  This
module derives those counts per convolution layer — how often one weight,
one ifmap pixel or one partial sum is consumed — matching the qualitative
analysis of paper section 5.2.1 ("a faulty value in Img REG will only
affect a single row of fmap and only the next accumulation operation if
in PSum REG").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers import Conv2D
from repro.nn.network import Network

__all__ = ["ConvReuseStats", "analyze_conv_reuse", "network_reuse_report"]


@dataclass(frozen=True)
class ConvReuseStats:
    """Reuse counts for one convolution layer under row-stationary flow.

    Attributes:
        layer: Layer name.
        weight_uses: MACs consuming one resident weight during the layer
            (its Filter-SRAM residency): one per output pixel of its
            output channel.
        image_row_uses: MACs consuming one ifmap value during its Img-REG
            residency (one output row): horizontal window overlap times
            the number of filters reading the fmap.
        image_total_uses: Total MACs consuming one ifmap value across the
            layer (the Global-Buffer residency scope).
        psum_uses: Reads of one partial sum (always 1: consumed by the
            next accumulation).
        chain_length: MAC steps accumulated into one output element.
    """

    layer: str
    weight_uses: int
    image_row_uses: int
    image_total_uses: int
    psum_uses: int
    chain_length: int


def _window_cover(kernel: int, stride: int) -> int:
    """Max number of window positions along one axis covering one pixel."""
    return max(1, (kernel + stride - 1) // stride)


def analyze_conv_reuse(layer: Conv2D, in_shape: tuple[int, int, int]) -> ConvReuseStats:
    """Compute reuse counts for ``layer`` on an input of ``in_shape``.

    Args:
        layer: Convolution layer.
        in_shape: Unbatched input shape ``(c, h, w)``.
    """
    _, oh, ow = layer.out_shape(in_shape)
    cover = _window_cover(layer.kernel, layer.stride)
    return ConvReuseStats(
        layer=layer.name,
        weight_uses=oh * ow,
        image_row_uses=cover * layer.out_channels,
        image_total_uses=cover * cover * layer.out_channels,
        psum_uses=1,
        chain_length=layer.chain_length(in_shape),
    )


def network_reuse_report(network: Network) -> list[ConvReuseStats]:
    """Per-convolution-layer reuse statistics for a network."""
    stats = []
    for i in network.mac_layer_indices():
        layer = network.layers[i]
        if isinstance(layer, Conv2D):
            stats.append(analyze_conv_reuse(layer, network.shapes[i]))
    return stats
