"""Data-reuse taxonomy of DNN accelerators (paper Table 1).

The paper classifies dataflow localities into weight reuse, image reuse
and output reuse, and surveys which of nine accelerator families exploit
which.  This module encodes that taxonomy as queryable data; Eyeriss is
the only surveyed design exploiting all three, which is why it anchors
the buffer-fault case study.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReuseKind", "AcceleratorProfile", "ACCELERATOR_PROFILES", "table1_rows"]


@dataclass(frozen=True)
class ReuseKind:
    """One locality class of DNN dataflows."""

    name: str
    description: str


WEIGHT_REUSE = ReuseKind(
    "weight", "kernel weights reused across every window of each ifmap"
)
IMAGE_REUSE = ReuseKind(
    "image", "ifmap values reused across every kernel applied to the fmap"
)
OUTPUT_REUSE = ReuseKind(
    "output", "partial sums buffered and consumed on-PE without write-back"
)


@dataclass(frozen=True)
class AcceleratorProfile:
    """Reuse profile of one surveyed accelerator family (Table 1 row)."""

    name: str
    weight_reuse: bool
    image_reuse: bool
    output_reuse: bool

    @property
    def reuse_kinds(self) -> tuple[str, ...]:
        """Names of exploited reuse classes."""
        out = []
        if self.weight_reuse:
            out.append(WEIGHT_REUSE.name)
        if self.image_reuse:
            out.append(IMAGE_REUSE.name)
        if self.output_reuse:
            out.append(OUTPUT_REUSE.name)
        return tuple(out)

    @property
    def local_buffer_classes(self) -> tuple[str, ...]:
        """Eyeriss-style buffer classes implied by the exploited reuses.

        These per-PE structures are exactly the ones whose faults spread
        through reuse (Table 8): weight reuse implies a filter
        scratchpad, image reuse an ifmap register file, output reuse a
        partial-sum register file.
        """
        mapping = {
            "weight": "Filter SRAM",
            "image": "Img REG",
            "output": "PSum REG",
        }
        return tuple(mapping[k] for k in self.reuse_kinds)


#: Table 1 of the paper: nine accelerator families and their dataflow reuse.
ACCELERATOR_PROFILES: tuple[AcceleratorProfile, ...] = (
    AcceleratorProfile("Zhang et al. / DianNao / DaDianNao", False, False, False),
    AcceleratorProfile(
        "Chakradhar / Sriram / Sankaradas / nn-X / K-Brain / Origami", True, False, False
    ),
    AcceleratorProfile("Gupta et al. / ShiDianNao / Peemen et al.", False, False, True),
    AcceleratorProfile("Eyeriss", True, True, True),
)


def table1_rows() -> list[dict]:
    """Regenerate Table 1: reuse classes per accelerator family."""
    return [
        {
            "accelerator": p.name,
            "weight_reuse": p.weight_reuse,
            "image_reuse": p.image_reuse,
            "output_reuse": p.output_reuse,
        }
        for p in ACCELERATOR_PROFILES
    ]
