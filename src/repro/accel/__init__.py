"""Accelerator hardware models: datapath latches, buffers, Eyeriss, reuse."""

from repro.accel.buffers import FAULT_SCOPES, BufferSpec
from repro.accel.dataflow import ConvReuseStats, analyze_conv_reuse, network_reuse_report
from repro.accel.datapath import LATCH_CLASSES, DatapathModel, LatchClass
from repro.accel.occupancy import LayerExposure, OccupancyModel, build_occupancy
from repro.accel.mapping import (
    ArrayShape,
    MappingReport,
    array_shape_for,
    map_conv_layer,
    map_network,
)
from repro.accel.eyeriss import (
    EYERISS_16NM,
    EYERISS_65NM,
    EyerissConfig,
    scale_config,
    table7_rows,
)
from repro.accel.reuse import (
    ACCELERATOR_PROFILES,
    AcceleratorProfile,
    ReuseKind,
    table1_rows,
)

__all__ = [
    "FAULT_SCOPES",
    "BufferSpec",
    "ConvReuseStats",
    "analyze_conv_reuse",
    "network_reuse_report",
    "LATCH_CLASSES",
    "DatapathModel",
    "LatchClass",
    "LayerExposure",
    "OccupancyModel",
    "build_occupancy",
    "ArrayShape",
    "MappingReport",
    "array_shape_for",
    "map_conv_layer",
    "map_network",
    "EYERISS_16NM",
    "EYERISS_65NM",
    "EyerissConfig",
    "scale_config",
    "table7_rows",
    "ACCELERATOR_PROFILES",
    "AcceleratorProfile",
    "ReuseKind",
    "table1_rows",
]
