"""Time-weighted buffer occupancy: where and when a strike hits live data.

A particle strike lands uniformly in space (buffer bits) and time
(execution cycles).  The probability that it corrupts *live* data
belonging to layer L is therefore proportional to

    exposure(component, L) = live_bits(component, L) x cycles(L)

— the bit-cycles of residency.  This module computes those exposures
from the row-stationary mapping (:mod:`repro.accel.mapping`), giving

- per-layer sampling weights for buffer fault injection that reflect the
  *schedule* rather than just static data sizes (a slow layer keeps its
  weights exposed longer), and
- a per-component ``live_fraction``: the average share of the buffer
  holding live data at all.  The paper conditions SDC probability on the
  fault being activated; strikes on dead bits are unactivated, so the
  live fraction is the principled de-rating factor between a raw-FIT
  calculation over the full capacity and the activated-fault SDC
  probabilities the campaigns measure.

Fully-connected layers do not map onto the row-stationary PE sets; they
are modelled as weight-streaming matrix-vector products (one MAC per PE
per cycle, weights resident only while streaming through).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.eyeriss import EyerissConfig
from repro.accel.mapping import array_shape_for, map_conv_layer
from repro.nn.layers import Conv2D, Dense
from repro.nn.network import Network

__all__ = ["LayerExposure", "OccupancyModel", "build_occupancy"]


@dataclass(frozen=True)
class LayerExposure:
    """Bit-cycle exposure of one layer's data in each buffer class."""

    layer_index: int
    layer_name: str
    cycles: int
    #: live bit-cycles per component name
    exposure: dict[str, float]


@dataclass
class OccupancyModel:
    """Per-layer, per-component live-data exposure of one network."""

    network_name: str
    config: EyerissConfig
    layers: list[LayerExposure]

    @property
    def total_cycles(self) -> int:
        return sum(l.cycles for l in self.layers)

    def layer_weights(self, component: str) -> dict[int, float]:
        """Sampling weights (layer index -> exposure share) for faults in
        ``component``; empty when the component is never live."""
        weights = {
            l.layer_index: l.exposure.get(component, 0.0)
            for l in self.layers
            if l.exposure.get(component, 0.0) > 0
        }
        total = sum(weights.values())
        return {k: v / total for k, v in weights.items()} if total else {}

    def live_fraction(self, component: str) -> float:
        """Average fraction of the component's bits holding live data."""
        spec = self.config.buffer_named(component)
        capacity_cycles = spec.total_bits * max(1, self.total_cycles)
        live = sum(l.exposure.get(component, 0.0) for l in self.layers)
        return min(1.0, live / capacity_cycles)

    def derated_sdc(self, component: str, measured_sdc: float) -> float:
        """Whole-buffer SDC probability: measured activated-fault SDC
        times the probability the strike hit live data at all."""
        if not 0.0 <= measured_sdc <= 1.0:
            raise ValueError("measured_sdc must be in [0, 1]")
        return measured_sdc * self.live_fraction(component)


def _conv_exposure(
    layer: Conv2D,
    in_shape: tuple[int, int, int],
    config: EyerissConfig,
    data_width: int,
) -> tuple[int, dict[str, float]]:
    report = map_conv_layer(layer, in_shape, array_shape_for(config))
    out_shape = layer.out_shape(in_shape)
    in_bits = int(_prod(in_shape)) * data_width
    out_bits = int(_prod(out_shape)) * data_width
    weight_bits = int(layer.weight.size) * data_width

    gb = config.global_buffer.total_bits
    fs = config.filter_sram.total_bits
    img = config.img_reg.total_bits
    ps = config.psum_reg.total_bits

    active_pes = config.n_pes * report.utilization
    exposure = {
        # ifmaps + ofmaps staged in the global buffer for the layer.
        "Global Buffer": min(in_bits + out_bits, gb) * report.cycles,
        # weights resident in the filter scratchpads all layer long.
        "Filter SRAM": min(weight_bits, fs) * report.cycles,
        # sliding ifmap rows: one window per active PE, live during the
        # row sweep each pass.
        "Img REG": min(active_pes * layer.kernel * data_width, img)
        * min(report.cycles, report.img_residency_cycles * report.passes),
        # one partial sum per active PE, live for R accumulations.
        "PSum REG": min(active_pes * data_width, ps) * report.cycles,
    }
    return report.cycles, exposure


def _fc_exposure(
    layer: Dense,
    in_shape: tuple[int, ...],
    config: EyerissConfig,
    data_width: int,
) -> tuple[int, dict[str, float]]:
    macs = layer.mac_count(in_shape)
    cycles = max(1, macs // config.n_pes)
    in_bits = int(_prod(in_shape)) * data_width
    out_bits = layer.out_features * data_width
    weight_bits = int(layer.weight.size) * data_width
    gb = config.global_buffer.total_bits
    fs = config.filter_sram.total_bits
    exposure = {
        "Global Buffer": min(in_bits + out_bits, gb) * cycles,
        # FC weights stream: at any instant only a scratchpad-full is live.
        "Filter SRAM": min(weight_bits, fs) * cycles,
        "Img REG": 0.0,  # no sliding-window reuse in matrix-vector
        "PSum REG": min(config.n_pes * data_width, config.psum_reg.total_bits) * cycles,
    }
    return cycles, exposure


def _prod(shape) -> float:
    out = 1
    for s in shape:
        out *= int(s)
    return out


def build_occupancy(network: Network, config: EyerissConfig) -> OccupancyModel:
    """Compute the occupancy model of ``network`` on ``config``."""
    layers: list[LayerExposure] = []
    width = config.data_width
    for i in network.mac_layer_indices():
        layer = network.layers[i]
        if isinstance(layer, Conv2D):
            cycles, exposure = _conv_exposure(layer, network.shapes[i], config, width)
        elif isinstance(layer, Dense):
            cycles, exposure = _fc_exposure(layer, network.shapes[i], config, width)
        else:  # pragma: no cover - no other MAC layers exist
            continue
        layers.append(LayerExposure(i, layer.name, cycles, exposure))
    return OccupancyModel(network.name, config, layers)
