"""Canonical DNN-accelerator datapath model (paper Figure 1b).

Every surveyed accelerator computes MACs on an array of processing
engines whose ALU is a multiplier feeding an adder.  The paper abstracts
the datapath fault sites as the *minimum set of latches* needed to
implement that ALU; per PE and per data width ``w`` these are:

==================  ====  =====================================================
latch class         bits  role (what a bit flip corrupts)
==================  ====  =====================================================
``weight_operand``  w     the weight entering the multiplier
``input_operand``   w     the ifmap activation entering the multiplier
``product``         w     the multiplier output entering the adder
``psum``            w     the running partial sum entering the adder
``accumulator``     w     the adder output written back to the psum register
==================  ====  =====================================================

Datapath faults are read **once**: the corrupted latch value feeds exactly
one MAC step of one output element (section 2.2), unlike buffer faults
which spread through reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LatchClass", "LATCH_CLASSES", "DatapathModel"]


@dataclass(frozen=True)
class LatchClass:
    """One class of datapath latch.

    Attributes:
        name: Latch-class identifier (see module docstring).
        words: Latched words of datapath width per PE.
        description: Human-readable role.
    """

    name: str
    words: int
    description: str


#: The canonical per-PE latch inventory of Figure 1b.
LATCH_CLASSES: tuple[LatchClass, ...] = (
    LatchClass("weight_operand", 1, "weight operand register of the multiplier"),
    LatchClass("input_operand", 1, "activation operand register of the multiplier"),
    LatchClass("product", 1, "multiplier output register"),
    LatchClass("psum", 1, "partial-sum operand register of the adder"),
    LatchClass("accumulator", 1, "adder output / accumulation register"),
)


@dataclass(frozen=True)
class DatapathModel:
    """Latch population of a PE array.

    Args:
        n_pes: Number of processing engines.
        data_width: Datapath width in bits (the data type's width).
    """

    n_pes: int
    data_width: int

    def __post_init__(self) -> None:
        if self.n_pes < 1 or self.data_width < 1:
            raise ValueError("n_pes and data_width must be positive")

    @property
    def latch_bits_per_pe(self) -> int:
        """Total latch bits in one PE's ALU."""
        return sum(lc.words for lc in LATCH_CLASSES) * self.data_width

    @property
    def total_latch_bits(self) -> int:
        """Total datapath latch bits across the PE array."""
        return self.latch_bits_per_pe * self.n_pes

    def bits_of(self, latch_name: str) -> int:
        """Total bits of one latch class across the array."""
        for lc in LATCH_CLASSES:
            if lc.name == latch_name:
                return lc.words * self.data_width * self.n_pes
        raise KeyError(f"unknown latch class {latch_name!r}")

    @property
    def size_mbit(self) -> float:
        """Datapath latch population in megabits (for Eq. 1)."""
        return self.total_latch_bits / 1e6
