"""Row-stationary mapping of convolution layers onto the Eyeriss PE array.

The buffer-fault scopes in :mod:`repro.accel.buffers` summarize *what* a
corrupted entry reaches; this module models *why*, by actually mapping a
layer onto the physical array the way Eyeriss's row-stationary dataflow
does (Chen et al., ISCA'16):

- a logical **PE set** of ``R x E`` engines (filter rows x output rows)
  computes one (input-channel, filter) pair; filter rows stay put
  (weight reuse), ifmap rows slide diagonally (image reuse) and partial
  sums flow up each column (output reuse);
- the physical array fits ``floor(H/R) * floor(W/E_t)`` sets per pass
  (with the output extent strip-mined to ``E_t`` columns when E exceeds
  the array width), and the layer needs however many passes it takes to
  cover every (channel, filter, strip) combination;
- from the mapping follow utilization, an ideal cycle count, and the
  residency length of each buffered datum — the quantities that make
  Filter-SRAM faults whole-layer events but PSum-REG faults single-read
  events.

The physical array shape is Eyeriss's 12 x 14 at 65nm, widened
proportionally for the 16nm projection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.eyeriss import EyerissConfig
from repro.nn.layers import Conv2D
from repro.nn.network import Network

__all__ = ["ArrayShape", "MappingReport", "array_shape_for", "map_conv_layer", "map_network"]

#: Eyeriss's physical PE grid at 65nm.
BASE_ARRAY = (12, 14)  # (height = filter-row axis, width = output-row axis)


@dataclass(frozen=True)
class ArrayShape:
    """Physical PE grid dimensions."""

    height: int
    width: int

    @property
    def pes(self) -> int:
        return self.height * self.width


def array_shape_for(config: EyerissConfig) -> ArrayShape:
    """Derive the PE grid of a (possibly scaled) Eyeriss configuration.

    Scaling multiplies the PE count; the grid grows by the same factor,
    split as evenly as possible across the two axes (x8 -> x4 height,
    x2 width: 48 x 28 = 1,344 PEs at 16nm).
    """
    base_h, base_w = BASE_ARRAY
    factor = config.n_pes // (base_h * base_w)
    if factor * base_h * base_w != config.n_pes or factor < 1:
        raise ValueError(f"PE count {config.n_pes} is not a multiple of the base array")
    h_mult = 1
    while h_mult * h_mult * 2 <= factor:
        h_mult *= 2
    w_mult = factor // h_mult
    return ArrayShape(base_h * h_mult, base_w * w_mult)


@dataclass(frozen=True)
class MappingReport:
    """Row-stationary mapping of one convolution layer.

    Attributes:
        layer: Layer name.
        pe_set: Logical set shape ``(R, E_t)`` (filter rows x output-row
            strip width).
        sets_per_pass: Logical sets resident simultaneously.
        passes: Array reloads needed to cover channels x filters x strips.
        utilization: Fraction of physical PEs doing work during a pass.
        cycles: Ideal MAC-limited cycle count for the layer.
        weight_residency_cycles: How long one Filter-SRAM word stays
            live (the whole layer: weights are reloaded only per layer).
        img_residency_cycles: How long one Img-REG word stays live (one
            row sweep).
        psum_residency_cycles: How long one PSum-REG word stays live
            (one cross-row accumulation).
    """

    layer: str
    pe_set: tuple[int, int]
    sets_per_pass: int
    passes: int
    utilization: float
    cycles: int
    weight_residency_cycles: int
    img_residency_cycles: int
    psum_residency_cycles: int


def map_conv_layer(
    layer: Conv2D, in_shape: tuple[int, int, int], array: ArrayShape
) -> MappingReport:
    """Map one convolution layer onto the PE array.

    Args:
        layer: Convolution layer.
        in_shape: Unbatched input fmap shape ``(c, h, w)``.
        array: Physical PE grid.

    Raises:
        ValueError: when a filter is taller than the array (cannot be
            mapped without folding filter rows, which Eyeriss does not
            do for the layer sizes considered here).
    """
    c, h, w = in_shape
    _, oh, ow = layer.out_shape(in_shape)
    r = layer.kernel
    if r > array.height:
        raise ValueError(f"{layer.name}: filter rows {r} exceed array height {array.height}")

    e_t = min(oh, array.width)  # output-row strip width
    strips = -(-oh // e_t)  # ceil
    vertical_sets = array.height // r
    horizontal_sets = array.width // e_t
    sets_per_pass = max(1, vertical_sets * horizontal_sets)

    logical_sets = layer.in_channels * layer.out_channels * strips
    passes = -(-logical_sets // sets_per_pass)

    used_pes = min(logical_sets, sets_per_pass) * r * e_t
    utilization = used_pes / array.pes

    # One PE performs a 1-D convolution of a W-wide ifmap row per output
    # row it serves: ~ow MACs per row pair.  A pass therefore takes
    # ~ow * r cycles (r taps per output pixel, pipelined across the set),
    # and the layer's ideal cycle count is MAC-limited:
    macs = layer.mac_count(in_shape)
    cycles = max(1, -(-macs // max(1, int(array.pes * utilization))))

    pass_cycles = max(1, cycles // passes)
    return MappingReport(
        layer=layer.name,
        pe_set=(r, e_t),
        sets_per_pass=sets_per_pass,
        passes=passes,
        utilization=utilization,
        cycles=cycles,
        # Weights are fetched once per layer and stay in the Filter SRAM
        # across every pass (weight reuse): whole-layer residency.
        weight_residency_cycles=cycles,
        # An ifmap row slides through the Img REG during one row sweep.
        img_residency_cycles=max(1, min(pass_cycles, ow * r)),
        # A partial sum lives from its first to its last accumulation
        # within one column of the set: r cross-row additions.
        psum_residency_cycles=r,
    )


def map_network(network: Network, config: EyerissConfig) -> list[MappingReport]:
    """Map every convolution layer of ``network`` onto ``config``'s array."""
    array = array_shape_for(config)
    reports = []
    for i in network.mac_layer_indices():
        layer = network.layers[i]
        if isinstance(layer, Conv2D):
            reports.append(map_conv_layer(layer, network.shapes[i], array))
    return reports
