"""Buffer components of DNN accelerators and their fault semantics.

The paper separates buffer faults from datapath faults because buffered
values are *read many times* within their residency window, spreading a
single upset to many MACs (section 2.2).  Each buffer class carries a
``fault_scope`` tag that tells the injector how far one corrupted entry
spreads:

=================  ==============================================================
fault scope        spread of one corrupted bit
=================  ==============================================================
``layer_weight``   a weight used by every MAC of the layer invocation
                   (Filter SRAM: weights stay resident for the whole layer)
``row_activation`` an ifmap value consumed by every window in one fmap row
                   (Img REG: "a faulty value in Img REG will only affect a
                   single row of fmap")
``next_layer``     an inter-layer ACT read by all consumers in the next layer
                   (Global Buffer: ofmaps stay resident during the whole next
                   layer)
``single_read``    one partial sum read once by the next accumulation
                   (PSum REG)
=================  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BufferSpec", "FAULT_SCOPES"]

#: Valid fault-scope tags (see module docstring).
FAULT_SCOPES = ("layer_weight", "row_activation", "next_layer", "single_read")


@dataclass(frozen=True)
class BufferSpec:
    """One buffer component of an accelerator.

    Attributes:
        name: Component name (e.g. ``"Filter SRAM"``).
        kbytes_per_instance: Capacity of one instance in KB.
        instances: Number of instances (1 for shared structures, one per
            PE for local scratchpads).
        fault_scope: How one corrupted entry spreads (see module doc).
        description: Role of the buffer in the dataflow.
    """

    name: str
    kbytes_per_instance: float
    instances: int
    fault_scope: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.fault_scope not in FAULT_SCOPES:
            raise ValueError(
                f"{self.name}: fault_scope {self.fault_scope!r} not in {FAULT_SCOPES}"
            )
        if self.kbytes_per_instance <= 0 or self.instances < 1:
            raise ValueError(f"{self.name}: invalid size/instances")

    @property
    def total_kbytes(self) -> float:
        """Aggregate capacity across instances in KB."""
        return self.kbytes_per_instance * self.instances

    @property
    def total_bits(self) -> float:
        """Aggregate capacity in bits."""
        return self.total_kbytes * 1024 * 8

    @property
    def size_mbit(self) -> float:
        """Aggregate capacity in megabits (for Eq. 1)."""
        return self.total_bits / 1e6

    def scaled(self, size_factor: float, instance_factor: float) -> "BufferSpec":
        """Return a technology-scaled copy (Table 7 projection)."""
        return BufferSpec(
            self.name,
            self.kbytes_per_instance * size_factor,
            round(self.instances * instance_factor),
            self.fault_scope,
            self.description,
        )
