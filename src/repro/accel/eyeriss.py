"""Eyeriss accelerator model (paper section 5.2, Table 7).

Eyeriss (Chen et al., ISCA'16) is the case-study accelerator because its
row-stationary dataflow exercises all three reuse classes (Table 1) and
its microarchitectural parameters are public.  The paper takes the 65nm
silicon parameters and projects them to 16nm by scaling the PE count and
per-instance buffer sizes by 8x (a factor of 2 per technology generation
across the 65 -> 16nm node path); data width is 16 bits at both nodes.

The resulting 16nm configuration (Table 7): 1,344 PEs, a 784KB global
buffer, and per-PE 3.52KB Filter SRAM, 0.19KB Img REG and 0.38KB PSum
REG.  (The 65nm per-PE filter scratchpad is 0.44KB = 224 words x 16b.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.buffers import BufferSpec
from repro.accel.datapath import DatapathModel

__all__ = ["EyerissConfig", "EYERISS_65NM", "EYERISS_16NM", "scale_config", "table7_rows"]

#: Per-generation scale factor assumed by the paper.
SCALE_PER_GENERATION = 2
#: Effective scaling steps between the 65nm silicon and the 16nm
#: projection (2**3 = the paper's overall factor of 8).
GENERATION_STEPS_65_TO_16 = 3


@dataclass(frozen=True)
class EyerissConfig:
    """One technology-node instantiation of Eyeriss.

    Attributes:
        feature_nm: Technology node in nanometres.
        n_pes: Processing-engine count.
        data_width: Datapath word width in bits (16 for Eyeriss).
        global_buffer: Shared on-chip buffer spec.
        filter_sram: Per-PE weight scratchpad spec.
        img_reg: Per-PE ifmap register spec.
        psum_reg: Per-PE partial-sum register spec.
    """

    feature_nm: int
    n_pes: int
    data_width: int
    global_buffer: BufferSpec
    filter_sram: BufferSpec
    img_reg: BufferSpec
    psum_reg: BufferSpec

    @property
    def datapath(self) -> DatapathModel:
        """Canonical latch model of the PE array."""
        return DatapathModel(n_pes=self.n_pes, data_width=self.data_width)

    def buffers(self) -> tuple[BufferSpec, ...]:
        """All buffer components, Table 8 order."""
        return (self.global_buffer, self.filter_sram, self.img_reg, self.psum_reg)

    def buffer_named(self, name: str) -> BufferSpec:
        """Look up a buffer component by name."""
        for spec in self.buffers():
            if spec.name == name:
                return spec
        raise KeyError(f"no buffer named {name!r}")

    @property
    def total_buffer_kbytes(self) -> float:
        """Aggregate buffer capacity in KB."""
        return sum(spec.total_kbytes for spec in self.buffers())


#: Eyeriss as fabricated at 65nm (Chen et al., ISCA'16).
EYERISS_65NM = EyerissConfig(
    feature_nm=65,
    n_pes=168,
    data_width=16,
    global_buffer=BufferSpec(
        "Global Buffer", 98.0, 1, "next_layer", "shared ifmap/ofmap/weight staging buffer"
    ),
    filter_sram=BufferSpec(
        "Filter SRAM", 0.44, 168, "layer_weight", "per-PE filter-row scratchpad (weight reuse)"
    ),
    # Img/PSum scratchpads are 12 and 24 16-bit words (the paper's table
    # rounds them to 0.02KB / 0.05KB at 65nm and 0.19KB / 0.38KB at 16nm).
    img_reg=BufferSpec(
        "Img REG", 0.0234375, 168, "row_activation", "per-PE ifmap sliding-window registers (image reuse)"
    ),
    psum_reg=BufferSpec(
        "PSum REG", 0.046875, 168, "single_read", "per-PE partial-sum registers (output reuse)"
    ),
)


def scale_config(base: EyerissConfig, target_nm: int, steps: int) -> EyerissConfig:
    """Project a configuration across technology generations.

    The PE count and the buffer *capacities* each scale by
    ``SCALE_PER_GENERATION ** steps`` (the paper scales "the number of
    PEs and the sizes of buffers by a factor of 8").  Capacity scaling is
    expressed as per-instance size x factor with the 65nm instance
    organisation kept — this reproduces both Table 7's displayed
    per-instance sizes (e.g. 3.52KB Filter SRAM) and the total megabits
    that back-solve from the paper's Table 8 FIT values.
    """
    factor = SCALE_PER_GENERATION**steps
    return EyerissConfig(
        feature_nm=target_nm,
        n_pes=base.n_pes * factor,
        data_width=base.data_width,
        global_buffer=base.global_buffer.scaled(factor, 1),
        filter_sram=base.filter_sram.scaled(factor, 1),
        img_reg=base.img_reg.scaled(factor, 1),
        psum_reg=base.psum_reg.scaled(factor, 1),
    )


#: The paper's 16nm projection used in every FIT calculation (Table 7).
EYERISS_16NM = scale_config(EYERISS_65NM, 16, GENERATION_STEPS_65_TO_16)


def table7_rows() -> list[dict]:
    """Regenerate Table 7: microarchitecture parameters per node."""
    rows = []
    for cfg in (EYERISS_65NM, EYERISS_16NM):
        rows.append(
            {
                "feature_size": f"{cfg.feature_nm}nm",
                "n_pe": cfg.n_pes,
                "global_buffer_kb": cfg.global_buffer.kbytes_per_instance,
                "filter_sram_kb": cfg.filter_sram.kbytes_per_instance,
                "img_reg_kb": cfg.img_reg.kbytes_per_instance,
                "psum_reg_kb": cfg.psum_reg.kbytes_per_instance,
            }
        )
    return rows
