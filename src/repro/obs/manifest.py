"""Run manifests and structured JSONL run logs for campaign runs.

Every observed run produces two artifacts, written next to its
checkpoint / output artifact:

- ``<stem>.manifest.json`` — one atomic JSON document answering "what
  ran, on what code, with what result": spec fingerprint, git revision,
  seed/dtype/network, start/end timestamps, execution stats, the merged
  metric snapshot, and the tail of the supervision event stream.  It is
  written once with ``status: "running"`` when the run starts and
  rewritten (atomically, pid-unique temp + ``os.replace``) with the
  final status when it ends — a SIGKILLed run leaves a manifest that
  says so.
- ``<stem>.runlog.jsonl`` — an append-only structured log: a ``begin``
  line, one line per supervision event (relative-time stamped), and a
  final ``manifest`` line embedding the finished manifest, so the run
  log alone is enough for ``repro-obs summarize``.

Wall-clock reads are deliberately confined to this module: campaign code
(``repro/core``, RP103-scoped) calls in here for timestamps instead of
touching ``time.time`` itself, keeping trial behaviour a function of
seeds only.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "RUNLOG_FORMAT",
    "RunObserver",
    "default_obs_paths",
    "environment_info",
    "git_revision",
    "load_run",
]

MANIFEST_FORMAT = "repro-run-manifest"
RUNLOG_FORMAT = "repro-run-log"
MANIFEST_VERSION = 1

#: Supervision events kept verbatim in the manifest's ``events.tail``.
_EVENT_TAIL = 50


def git_revision() -> str | None:
    """The working tree's HEAD commit, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def environment_info() -> dict:
    """Provenance block: interpreter, libraries, host, git revision."""
    import numpy

    from repro import __version__

    return {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "hostname": platform.node(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
        "git_rev": git_revision(),
    }


def default_obs_paths(artifact: str | Path) -> tuple[Path, Path]:
    """Manifest and run-log paths derived from a checkpoint/artifact path."""
    artifact = Path(artifact)
    return (
        artifact.with_name(artifact.name + ".manifest.json"),
        artifact.with_name(artifact.name + ".runlog.jsonl"),
    )


def _utc_now_iso() -> str:
    return _dt.datetime.now(_dt.timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%fZ")


def _atomic_write_json(path: Path, payload: dict) -> None:
    # Lazy import: repro.core.checkpoint imports repro.core.campaign,
    # which imports repro.obs.metrics — a module-level import here would
    # close that cycle during package initialisation.
    from repro.core.checkpoint import atomic_write_text

    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


class RunObserver:
    """Owns the manifest + run-log lifecycle for one observed run.

    Args:
        manifest_path: Where the manifest JSON is (re)written; None
            disables the manifest.
        run_log_path: Where run-log lines are appended; None disables
            the log.  An existing file is truncated at :meth:`begin` —
            a resumed campaign is a new run with its own log.
        kind: ``"campaign"`` or ``"experiment"``.
        meta: Identity of the run (fingerprint, spec, network, dtype,
            seed, n_trials, jobs, resumed...), JSON-safe.

    The observer is inert until :meth:`begin`; every method is safe to
    call when both paths are None, so callers need no conditionals.
    """

    def __init__(
        self,
        manifest_path: str | Path | None = None,
        run_log_path: str | Path | None = None,
        kind: str = "campaign",
        meta: dict | None = None,
    ):
        self.manifest_path = Path(manifest_path) if manifest_path is not None else None
        self.run_log_path = Path(run_log_path) if run_log_path is not None else None
        self.kind = kind
        self.meta = dict(meta or {})
        self.manifest: dict | None = None
        self._log_fh = None
        self._t0 = time.perf_counter()
        self._started_at = _utc_now_iso()

    @property
    def active(self) -> bool:
        """Whether this observer writes anything at all."""
        return self.manifest_path is not None or self.run_log_path is not None

    # -- lifecycle --------------------------------------------------------- #
    def begin(self) -> None:
        """Open the run: truncate the log, publish a ``running`` manifest."""
        self._t0 = time.perf_counter()
        self._started_at = _utc_now_iso()
        if self.run_log_path is not None:
            self.run_log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log_fh = open(self.run_log_path, "w", encoding="utf-8")
            self._append({
                "kind": "begin",
                "format": RUNLOG_FORMAT,
                "version": MANIFEST_VERSION,
                "run_kind": self.kind,
                "started_at": self._started_at,
                **self.meta,
            })
        if self.manifest_path is not None:
            self._write_manifest(self._build(status="running"))

    def event_sink(self, event) -> None:
        """``EventRecorder`` sink: append one supervision event line."""
        if self._log_fh is None:
            return
        self._append({
            "kind": "event",
            "seq": event.seq,
            "event": event.kind,
            "t": round(time.perf_counter() - self._t0, 6),
            "detail": event.detail,
        })

    def finish(
        self,
        status: str = "completed",
        stats: dict | None = None,
        metrics: dict | None = None,
        events: dict | None = None,
        event_tail: list | None = None,
        summary: dict | None = None,
    ) -> dict:
        """Seal the run: final manifest, atomically + as the log's last line.

        Args:
            status: ``"completed"`` / ``"aborted"`` / ``"failed"``.
            stats: JSON-safe ``ExecutionStats`` dict.
            metrics: Merged metric snapshot; its ``timing`` section is
                lifted into the manifest's ``timing.spans``.
            events: Event-kind -> emission-count totals.
            event_tail: Most recent events, JSON-safe.
            summary: Optional outcome digest (SDC rates, masked frac).

        Returns the manifest dict (also kept as ``self.manifest``).
        """
        manifest = self._build(
            status=status, stats=stats, metrics=metrics,
            events=events, event_tail=event_tail, summary=summary,
        )
        if self.manifest_path is not None:
            self._write_manifest(manifest)
        if self._log_fh is not None:
            self._append({"kind": "manifest", "manifest": manifest})
            self._log_fh.close()
            self._log_fh = None
        self.manifest = manifest
        return manifest

    # -- internals --------------------------------------------------------- #
    def _append(self, line: dict) -> None:
        assert self._log_fh is not None
        self._log_fh.write(json.dumps(line, sort_keys=True) + "\n")
        self._log_fh.flush()

    def _build(
        self,
        status: str,
        stats: dict | None = None,
        metrics: dict | None = None,
        events: dict | None = None,
        event_tail: list | None = None,
        summary: dict | None = None,
    ) -> dict:
        metrics = dict(metrics or {})
        spans = metrics.pop("timing", {})
        running = status == "running"
        duration = None if running else round(time.perf_counter() - self._t0, 6)
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "kind": self.kind,
            "status": status,
            "run": dict(self.meta),
            "env": environment_info(),
            "timing": {
                "started_at": self._started_at,
                "finished_at": None if running else _utc_now_iso(),
                "duration_s": duration,
                "spans": spans,
            },
            "execution": dict(stats or {}),
            "metrics": metrics,
            "events": {"counts": dict(events or {}), "tail": list(event_tail or [])},
            "summary": dict(summary or {}),
        }

    def _write_manifest(self, manifest: dict) -> None:
        assert self.manifest_path is not None
        _atomic_write_json(self.manifest_path, manifest)


def load_run(path: str | Path) -> dict:
    """Load a run from a manifest JSON *or* a run-log JSONL file.

    Returns ``{"manifest": dict | None, "begin": dict | None,
    "events": list[dict], "path": str}``.  For a manifest file the event
    list is the manifest's stored tail; for a run log it is every event
    line in the file.  Torn trailing lines (a SIGKILLed writer) are
    skipped, never fatal.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict) and whole.get("format") == MANIFEST_FORMAT:
        return {
            "manifest": whole,
            "begin": None,
            "events": list(whole.get("events", {}).get("tail", [])),
            "path": str(path),
        }
    begin: dict | None = None
    manifest: dict | None = None
    events: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from a killed writer
        if not isinstance(data, dict):
            continue
        kind = data.get("kind")
        if kind == "begin":
            begin = data
        elif kind == "event":
            events.append(data)
        elif kind == "manifest" and isinstance(data.get("manifest"), dict):
            manifest = data["manifest"]
    return {"manifest": manifest, "begin": begin, "events": events, "path": str(path)}
