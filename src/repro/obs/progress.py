"""Live progress reporting for long campaigns.

The campaign runner emits a periodic ``progress`` event through its
:class:`~repro.core.tracing.EventRecorder`; attaching a
:class:`ProgressReporter` as a recorder sink turns that stream into
single-line status updates on stderr::

    [progress] 1280/3000 (42.7%) | 96.4 trials/s | eta 18s | retries 2 quarantined 0 | rss 412 MB

Throughput and ETA are computed from a monotonic clock; memory is the
process's peak RSS (``getrusage``), which is what an operator sizing a
pool actually needs.  The reporter is display-only: it never feeds
anything back into trial execution, so attaching it cannot perturb a
seeded campaign.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["ProgressReporter", "rss_mb"]

#: Event kinds worth echoing immediately even between progress ticks.
_NOTEWORTHY = frozenset({"quarantine", "degrade", "abort", "resume"})


def rss_mb() -> float | None:
    """Peak resident set size of this process in MiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return usage / (1024.0 * 1024.0)
    return usage / 1024.0


class ProgressReporter:
    """EventRecorder sink rendering live campaign status lines.

    Args:
        stream: Output stream (default stderr).
        min_interval: Minimum seconds between rendered progress lines;
            ``progress`` events arriving faster are coalesced.

    Use as ``recorder.add_sink(ProgressReporter())``; the campaign's
    periodic ``progress`` events carry ``completed`` / ``total`` /
    ``quarantined`` counts, and supervision events (retry, rebuild,
    timeout, quarantine...) are tallied as they stream past.
    """

    def __init__(self, stream: TextIO | None = None, min_interval: float = 0.5):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._t0 = time.perf_counter()
        self._last_render = 0.0
        self._counts: dict[str, int] = {}

    def __call__(self, event) -> None:
        """Consume one :class:`~repro.core.tracing.CampaignEvent`."""
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
        if event.kind == "progress":
            now = time.perf_counter()
            final = event.detail.get("final", False)
            if final or now - self._last_render >= self.min_interval:
                self._last_render = now
                self._render(event.detail, now - self._t0)
        elif event.kind in _NOTEWORTHY:
            print(f"[campaign:{event.kind}] "
                  + " ".join(f"{k}={v}" for k, v in sorted(event.detail.items())),
                  file=self.stream)

    def _render(self, detail: dict, elapsed: float) -> None:
        completed = int(detail.get("completed", 0))
        total = int(detail.get("total", 0)) or None
        done_here = int(detail.get("completed_here", completed))
        skipped = int(detail.get("skipped", 0))
        skipped_here = int(detail.get("skipped_here", skipped))
        # Early-stopped skips are resolved indices: they count toward
        # completion (and hence the ETA's notion of remaining work) but
        # not toward trials/s, which reports trials that actually
        # propagated — otherwise a run skipping whole closed strata
        # would claim an inflated injection throughput.
        executed_rate = max(0, done_here - skipped_here) / elapsed if elapsed > 0 else 0.0
        completion_rate = done_here / elapsed if elapsed > 0 else 0.0
        parts = []
        if total:
            parts.append(f"{completed}/{total} ({100.0 * completed / total:.1f}%)")
        else:
            parts.append(str(completed))
        parts.append(f"{executed_rate:.1f} trials/s")
        if total and completion_rate > 0:
            parts.append(f"eta {max(0.0, (total - completed) / completion_rate):.0f}s")
        retries = self._counts.get("retry", 0)
        quarantined = self._counts.get("quarantine", 0)
        if skipped:
            parts.append(f"skipped {skipped}")
        parts.append(f"retries {retries} quarantined {quarantined}")
        rss = rss_mb()
        if rss is not None:
            parts.append(f"rss {rss:.0f} MB")
        print("[progress] " + " | ".join(parts), file=self.stream)
