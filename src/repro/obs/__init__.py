"""Observability for fault-injection campaigns: metrics, spans, manifests.

A multi-million-trial campaign (the paper runs ~3,000 injections per
configuration across dozens of configurations) cannot be tuned or
trusted without measurement.  This package provides the measurement
layer:

- :mod:`repro.obs.metrics` — a deterministic metrics registry (counters,
  gauges, fixed-bucket histograms) whose snapshots are plain-dict
  serializable and mergeable across worker processes;
- :mod:`repro.obs.spans` — hierarchical timing spans with a low-overhead
  no-op path, safe to leave compiled into hot loops;
- :mod:`repro.obs.manifest` — run manifests and structured JSONL run
  logs written atomically next to each campaign artifact;
- :mod:`repro.obs.progress` — a live progress reporter (trials/s, ETA,
  quarantine/retry counts, memory RSS) driven off campaign events;
- :mod:`repro.obs.cli` — the ``repro-obs`` command (``summarize`` /
  ``tail`` / ``diff``).

Import discipline: this ``__init__`` pulls in only :mod:`metrics` and
:mod:`spans`, which import nothing from the rest of ``repro`` — so the
hot paths (``repro.utils.parallel``, ``repro.nn.network``,
``repro.core.campaign``) can import them without cycles.  ``manifest``,
``progress`` and ``cli`` are imported explicitly by their users.
"""

from repro.obs.metrics import (
    DEFAULT_MAGNITUDE_BUCKETS,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
)
from repro.obs.spans import span, spans_enabled, enable_spans, disable_spans

__all__ = [
    "DEFAULT_MAGNITUDE_BUCKETS",
    "MetricsRegistry",
    "empty_snapshot",
    "merge_snapshots",
    "span",
    "spans_enabled",
    "enable_spans",
    "disable_spans",
]
