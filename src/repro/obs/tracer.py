"""Propagation flight recorder: deterministic per-layer fault traces.

The paper's central argument (sections 5.1.4 and 6) is a *propagation
narrative*: a flipped bit either dies in a ReLU zero-kill or a pool
absorb, is clipped away by quantization, or survives — growing or
shrinking in magnitude — all the way to the final fmap.  Campaigns so
far recorded only the endpoints of that story (outcome class, detector
verdict, reached-output flag).  This module records the story itself:
for a deterministically sampled subset of trials, a structured
per-layer trace of how far the corruption travelled, how many elements
it touched, and which mechanism finally erased it.

Determinism contract (the same one checkpoints obey): a trace row is a
pure function of the trial index.  Trial selection is by index
(``CampaignSpec.trace_mode`` / ``trace_every`` — part of the campaign
identity, so two runs that trace different subsets have different
fingerprints), the faulty activations a row is derived from are
bit-identical across serial / ``--jobs N`` / ``--batch N`` / ``--shm``
executions (the engine's bit-exactness contract), and the derived
statistics use bitwise comparison (NaN- and ``-0.0``-safe, mirroring
``repro.nn.network._bits_equal``).  The trace file is therefore
byte-identical across every execution shape, including kill/resume —
the batched path's dead-trial collapse retires a trial by patching
golden rows back in exactly when its activation bits equal golden, so
it reports the same masking layer as the serial path.

The on-disk form is JSONL next to the checkpoint
(``<checkpoint>.trace.jsonl``): a header line followed by one row per
traced trial, in index order, republished atomically on every flush
(full-rewrite snapshot via ``atomic_write_text``, like the checkpoint
writer — an ``open(..., "a")`` append stream could tear on SIGKILL and
is what lint rule RP108 exists to catch).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = [
    "TRACE_MODES",
    "TraceWriter",
    "build_trace",
    "default_trace_path",
    "load_trace",
    "trace_depth_histogram",
    "trace_layer_matrix",
    "trace_deviation_by_depth",
]

#: Trial-selection policies: ``off`` (no traces), ``sample`` (trial
#: indices divisible by ``trace_every``), ``all`` (every trial).
TRACE_MODES = ("off", "sample", "all")

TRACE_VERSION = 1
_FORMAT = "repro-campaign-trace"

#: Relative-deviation guard against golden values that are exactly zero.
_REL_EPS = 1e-12


def default_trace_path(checkpoint: str | Path) -> Path:
    """Trace path derived from a checkpoint path (next to it)."""
    checkpoint = Path(checkpoint)
    return checkpoint.with_name(checkpoint.name + ".trace.jsonl")


def _bit_diff_mask(faulty: np.ndarray, golden: np.ndarray) -> np.ndarray:
    """Elementwise "bits differ" mask (NaN- and ``-0.0``-exact).

    Same comparison the delta engine's ``_bits_equal`` uses: value
    equality would call NaN != NaN corrupted forever and -0.0 == 0.0
    clean, neither of which matches what the hardware latched.
    """
    a = np.ascontiguousarray(faulty, dtype=np.float64)
    b = np.ascontiguousarray(golden, dtype=np.float64)
    return a.view(np.uint64) != b.view(np.uint64)


def _delta_stats(faulty: np.ndarray, golden: np.ndarray) -> dict:
    """Corruption statistics of one activation vs its golden twin.

    ``dirty_rows`` is the half-open row span ``[lo, hi)`` along the
    feature-map row axis (axis ``-2``) touched by the corruption — the
    same geometry the delta engine's row spans use — and None for
    activations without a row axis (FC/softmax vectors).  Deviations are
    computed over corrupted elements only; non-finite faulty values
    propagate into the stats as ``nan``/``inf`` (serialized to strings
    by ``to_jsonable``), which is itself a deterministic fact.
    """
    mask = _bit_diff_mask(faulty, golden)
    corrupted = int(np.count_nonzero(mask))
    stats: dict = {
        "corrupted": corrupted,
        "dirty_rows": None,
        "max_abs_dev": 0.0,
        "mean_abs_dev": 0.0,
        "max_rel_dev": 0.0,
    }
    if not corrupted:
        return stats
    f = np.asarray(faulty, dtype=np.float64)[mask]
    g = np.asarray(golden, dtype=np.float64)[mask]
    dev = np.abs(f - g)
    stats["max_abs_dev"] = float(np.max(dev))
    stats["mean_abs_dev"] = float(np.mean(dev))
    stats["max_rel_dev"] = float(np.max(dev / (np.abs(g) + _REL_EPS)))
    if mask.ndim >= 2:
        row_axis = mask.ndim - 2
        other = tuple(ax for ax in range(mask.ndim) if ax != row_axis)
        rows = np.nonzero(np.any(mask, axis=other) if other else mask)[0]
        stats["dirty_rows"] = [int(rows[0]), int(rows[-1]) + 1]
    return stats


def _masking_kind(layer_kind: str) -> str:
    """Paper-level masking mechanism for the layer that erased a fault."""
    if layer_kind == "relu":
        return "relu_zero_kill"
    if layer_kind == "pool":
        return "pool_absorb"
    # Conv/FC/LRN arithmetic plus the (storage-)dtype round-trip: the
    # corruption fell below quantization resolution or saturated back
    # onto the golden value.
    return "quantization_clip"


def build_trace(
    *,
    trial: int,
    meta: dict,
    injection,
    record,
    network,
    detector=None,
    detector_checkpoints: dict[int, int] | None = None,
) -> dict:
    """Derive one trial's propagation-trace row (JSON-safe dict).

    Pure function of the trial's injection artifacts: ``meta`` is
    ``_CampaignTask.sample_trial``'s dict (golden / site / block / bit),
    ``injection`` the propagated :class:`~repro.core.injector.InjectionResult`
    with recorded activations, ``record`` the classified
    :class:`~repro.core.campaign.TrialRecord`.  Layer rows compare
    ``faulty_activations[j]`` (output of layer ``resume_index + j - 1``)
    against ``golden.activations[resume_index + j]`` and stop at the
    first all-clean layer — forward propagation is deterministic, so a
    corruption that reaches golden bits once stays golden forever.
    """
    # Lazy import: serialize imports campaign at module level; importing
    # it eagerly here would close a cycle through campaign -> tracer.
    from repro.core.serialize import to_jsonable

    golden = meta["golden"]
    resume = int(injection.resume_index)
    faulty = injection.faulty_activations
    layers: list[dict] = []
    injected: dict | None = None
    masking: dict | None = None
    detector_layer: int | None = None
    if not injection.masked and faulty:
        injected = _delta_stats(faulty[0], golden.activations[resume])
        for j in range(1, len(faulty)):
            li = resume + j - 1
            layer = network.layers[li]
            stats = _delta_stats(faulty[j], golden.activations[resume + j])
            layers.append({"layer": li, "name": layer.name, "kind": layer.kind, **stats})
            if stats["corrupted"] == 0:
                masking = {"layer": li, "name": layer.name, "kind": _masking_kind(layer.kind)}
                break
            if (
                detector is not None
                and detector_checkpoints
                and detector_layer is None
            ):
                block = detector_checkpoints.get(li)
                if block is not None and detector.check(block, faulty[j]):
                    detector_layer = li
    row = {
        "index": int(trial),
        "site": meta["site"],
        "block": meta["block"],
        "bit": meta["bit"],
        "resume_layer": resume,
        "value_before": injection.value_before,
        "value_after": injection.value_after,
        "masked_at_injection": bool(injection.masked),
        "injected": injected,
        "layers": layers,
        "depth": sum(1 for entry in layers if entry["corrupted"]),
        "masking": masking,
        "detector_layer": detector_layer,
        "outcome": record.outcome,
        "detected": record.detected,
        "reached_output": record.reached_output,
    }
    return to_jsonable(row)


class TraceWriter:
    """Accumulates trace rows and snapshots them atomically.

    Mirrors :class:`~repro.core.checkpoint.CheckpointWriter`: rows are
    keyed by trial index (re-runs after a resume overwrite themselves
    with identical bytes), each flush rewrites header + rows in index
    order to a pid-unique temp file and publishes it with
    ``os.replace``.  The header carries no path or wall-clock, so two
    runs of the same spec produce byte-identical files — the
    ``OBL-TRACE-PARITY`` gate compares them with ``read_bytes``.
    """

    def __init__(self, path: str | Path, fingerprint: str, mode: str, every: int):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._header = {
            "format": _FORMAT,
            "version": TRACE_VERSION,
            "fingerprint": fingerprint,
            "trace": {"mode": mode, "every": int(every)},
        }
        self._rows: dict[int, dict] = {}
        self._dirty = False

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> dict[int, dict]:
        return dict(self._rows)

    def add_row(self, row: dict) -> None:
        self._rows[int(row["index"])] = row
        self._dirty = True

    def preload(self, rows: dict[int, dict]) -> None:
        """Carry a resumed run's prior trace rows into later snapshots."""
        for index, row in rows.items():
            self._rows[int(index)] = row
        self._dirty = self._dirty or bool(rows)

    def flush(self) -> Path:
        """Publish an atomic snapshot of every row added so far."""
        if not self._dirty and self.path.exists():
            return self.path
        # Lazy import (cycle: checkpoint imports campaign).
        from repro.core.checkpoint import atomic_write_text

        lines = [json.dumps(self._header, sort_keys=True)]
        lines.extend(
            json.dumps(self._rows[index], sort_keys=True) for index in sorted(self._rows)
        )
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._dirty = False
        return self.path


def load_trace(path: str | Path) -> tuple[dict | None, dict[int, dict]]:
    """Load ``(header, rows_by_index)`` from a trace file.

    Tolerant the same way checkpoint loading is: a torn tail line (the
    writer is atomic, but users copy files around) is skipped rather
    than fatal, and a missing file loads as an empty trace.  Returns a
    None header when the file does not start with a recognizable trace
    header — callers treat that as "not a trace file".
    """
    path = Path(path)
    if not path.exists():
        return None, {}
    header: dict | None = None
    rows: dict[int, dict] = {}
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if lineno == 0:
                if (
                    not isinstance(payload, dict)
                    or payload.get("format") != _FORMAT
                ):
                    return None, {}
                header = payload
                continue
            if isinstance(payload, dict) and "index" in payload:
                rows[int(payload["index"])] = payload
    return header, rows


# -- cross-trial aggregation (repro-obs trace, ext_propagation) ---------- #

def trace_depth_histogram(rows: dict[int, dict]) -> dict[int, int]:
    """Propagation-depth histogram: depth -> number of traced trials.

    Depth 0 covers faults masked at the injection site itself (the
    corrupted word quantized back onto the golden value before any
    propagation) and faults erased by the first layer they met.
    """
    hist: dict[int, int] = {}
    for row in rows.values():
        depth = int(row.get("depth", 0))
        hist[depth] = hist.get(depth, 0) + 1
    return dict(sorted(hist.items()))


def trace_layer_matrix(rows: dict[int, dict]) -> dict[int, dict]:
    """Per-layer kill/survival matrix.

    For each layer index: how many traced corruptions *entered* it still
    live, how many it killed (masking row), and how many survived
    through it — the instrumented form of the paper's Table 5 masking
    argument.  Keys are layer indices; each value carries the layer's
    name/kind plus ``entered`` / ``killed`` / ``survived`` counts.
    """
    matrix: dict[int, dict] = {}
    for row in rows.values():
        for entry in row.get("layers") or []:
            li = int(entry["layer"])
            cell = matrix.setdefault(
                li,
                {"name": entry["name"], "kind": entry["kind"],
                 "entered": 0, "killed": 0, "survived": 0},
            )
            cell["entered"] += 1
            if entry["corrupted"]:
                cell["survived"] += 1
            else:
                cell["killed"] += 1
    return dict(sorted(matrix.items()))


def trace_deviation_by_depth(rows: dict[int, dict]) -> dict[int, dict]:
    """Deviation-vs-depth table: propagation step -> deviation stats.

    Step ``d`` aggregates the ``d``-th still-corrupted layer row of
    every trace (finite deviations only): how many traces were still
    live at that step, and the max / mean of their max-abs-deviation —
    the "does the corruption blow up or decay as it travels" view the
    paper uses to argue for value-range symptom detection.
    """
    table: dict[int, dict] = {}
    for row in rows.values():
        step = 0
        for entry in row.get("layers") or []:
            if not entry["corrupted"]:
                break
            step += 1
            dev = entry["max_abs_dev"]
            cell = table.setdefault(step, {"live": 0, "max_abs_dev": 0.0, "_sum": 0.0, "_n": 0})
            cell["live"] += 1
            if isinstance(dev, (int, float)) and np.isfinite(dev):
                cell["max_abs_dev"] = max(cell["max_abs_dev"], float(dev))
                cell["_sum"] += float(dev)
                cell["_n"] += 1
    out: dict[int, dict] = {}
    for step in sorted(table):
        cell = table[step]
        out[step] = {
            "live": cell["live"],
            "max_abs_dev": cell["max_abs_dev"],
            "mean_abs_dev": cell["_sum"] / cell["_n"] if cell["_n"] else 0.0,
        }
    return out
