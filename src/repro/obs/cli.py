"""``repro-obs``: inspect campaign run manifests and run logs.

Three subcommands over the artifacts :mod:`repro.obs.manifest` writes:

- ``summarize <run>`` — render a run's manifest (identity, timing,
  metric counters, span time split, event tallies) as tables; accepts a
  ``.manifest.json`` or a ``.runlog.jsonl``.
- ``tail <run>`` — print the last N supervision events of a run log.
- ``diff <a> <b>`` — compare two runs: throughput, error rates, and
  per-phase time split, with deltas.  Exit status is the comparison
  verdict: 0 when the runs agree on every deterministic fact, 1 when
  they diverge — so CI jobs and ``repro-gate`` recipes can consume the
  command as a pass/fail check instead of parsing its tables.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs.manifest import load_run
from repro.utils.tables import format_table

__all__ = [
    "compare_runs",
    "main",
    "render_diff",
    "render_summary",
    "render_tail",
    "run_identity",
]


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "n/a"
    if value >= 60.0:
        return f"{value / 60.0:.1f} min"
    return f"{value:.2f} s"


def _run_facts(run: dict) -> dict:
    """Flatten a loaded run into the fields summarize/diff print."""
    manifest = run.get("manifest") or {}
    meta = manifest.get("run", {}) or (run.get("begin") or {})
    timing = manifest.get("timing", {})
    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    execution = manifest.get("execution", {})
    summary = manifest.get("summary", {})
    duration = timing.get("duration_s")
    trials = counters.get("trials", meta.get("n_trials"))
    throughput = None
    if duration and trials:
        throughput = trials / duration
    return {
        "status": manifest.get("status", "unknown"),
        "kind": manifest.get("kind", "campaign"),
        "meta": meta,
        "timing": timing,
        "spans": timing.get("spans", {}),
        "counters": counters,
        "gauges": metrics.get("gauges", {}),
        "histograms": metrics.get("histograms", {}),
        "execution": execution,
        "events": manifest.get("events", {}),
        "summary": summary,
        "env": manifest.get("env", {}),
        "duration_s": duration,
        "trials": trials,
        "throughput": throughput,
    }


def _identity_rows(facts: dict) -> list[list[str]]:
    meta, env, timing = facts["meta"], facts["env"], facts["timing"]
    rows = []
    for key in ("fingerprint", "network", "dtype", "target", "n_trials",
                "seed", "jobs", "resumed", "resumed_trials", "experiment"):
        if key in meta and meta[key] is not None:
            rows.append([key, str(meta[key])])
    rows.append(["status", facts["status"]])
    if timing.get("started_at"):
        rows.append(["started", str(timing["started_at"])])
    rows.append(["duration", _fmt_seconds(facts["duration_s"])])
    if facts["throughput"] is not None:
        rows.append(["throughput", f"{facts['throughput']:.1f} trials/s"])
    if env.get("git_rev"):
        rows.append(["git", str(env["git_rev"])[:12]])
    if env.get("python"):
        rows.append(["python / numpy", f"{env.get('python')} / {env.get('numpy')}"])
    return rows


def _span_rows(spans: dict) -> list[list[str]]:
    total = sum(t.get("total_s", 0.0) for t in spans.values()) or 1.0
    rows = []
    for path in sorted(spans, key=lambda p: -spans[p].get("total_s", 0.0)):
        t = spans[path]
        count = t.get("count", 0)
        total_s = t.get("total_s", 0.0)
        mean_ms = 1000.0 * total_s / count if count else 0.0
        rows.append([
            path, str(count), f"{total_s:.3f}", f"{mean_ms:.2f}",
            f"{1000.0 * t.get('max_s', 0.0):.2f}", f"{100.0 * total_s / total:.1f}%",
        ])
    return rows


def render_summary(run: dict) -> str:
    """Tables describing one loaded run (see :func:`load_run`)."""
    facts = _run_facts(run)
    if not run.get("manifest"):
        lines = [f"{run['path']}: no manifest found "
                 "(run still in flight, or killed before its first flush)"]
        if run.get("begin"):
            lines.append(format_table(
                ["key", "value"],
                [[k, str(v)] for k, v in sorted(run["begin"].items()) if k != "kind"],
                title="begin record",
            ))
        if run.get("events"):
            lines.append(f"{len(run['events'])} events logged; try 'repro-obs tail'")
        return "\n\n".join(lines)
    blocks = [format_table(["key", "value"], _identity_rows(facts),
                           title=f"run: {facts['kind']} ({run['path']})")]
    if facts["counters"]:
        blocks.append(format_table(
            ["counter", "value"],
            [[k, str(v)] for k, v in sorted(facts["counters"].items())],
            title="metrics",
        ))
    for name, hist in sorted(facts["histograms"].items()):
        edges, counts = hist.get("edges", []), hist.get("counts", [])
        labels = [f"<= {e:g}" for e in edges] + ["overflow"]
        rows = [[lab, str(c)] for lab, c in zip(labels, counts) if c]
        if rows:
            blocks.append(format_table(["bucket", "count"], rows, title=f"histogram: {name}"))
    if facts["spans"]:
        blocks.append(format_table(
            ["span", "count", "total s", "mean ms", "max ms", "share"],
            _span_rows(facts["spans"]), title="time split",
        ))
    execution = {k: v for k, v in facts["execution"].items() if v}
    if execution:
        blocks.append(format_table(
            ["stat", "value"], [[k, str(v)] for k, v in sorted(execution.items())],
            title="execution",
        ))
    counts = facts["events"].get("counts", {})
    if counts:
        blocks.append(format_table(
            ["event", "count"], [[k, str(v)] for k, v in sorted(counts.items())],
            title="events",
        ))
    sdc = facts["summary"].get("sdc", {})
    if sdc:
        blocks.append(format_table(
            ["class", "probability"], [[k, f"{v:.4f}"] for k, v in sorted(sdc.items())],
            title="outcomes",
        ))
    return "\n\n".join(blocks)


def render_tail(run: dict, n: int = 20, kind: str | None = None) -> str:
    """The last ``n`` event lines of a run (optionally one kind only)."""
    events = run.get("events", [])
    if kind is not None:
        events = [e for e in events if e.get("event") == kind]
    events = events[-n:]
    if not events:
        return "no matching events"
    rows = []
    for e in events:
        detail = e.get("detail", {})
        rows.append([
            str(e.get("seq", "")),
            f"{e['t']:.2f}" if isinstance(e.get("t"), (int, float)) else "",
            str(e.get("event", "")),
            " ".join(f"{k}={v}" for k, v in sorted(detail.items())),
        ])
    return format_table(["seq", "t+s", "event", "detail"], rows)


#: ``run`` meta keys that describe *how* a run executed, not *what* it
#: computed: two byte-identical campaigns may legitimately differ here.
_EXECUTION_META = ("jobs", "resumed", "resumed_trials", "shared_golden")


def run_identity(run: dict) -> dict:
    """The deterministic projection of a loaded run.

    Everything the repo's byte-identity promise covers: spec identity,
    final status, metric counters/gauges/histograms, and the outcome
    summary.  Wall-clock sections (timing, spans, throughput), harness
    accounting (``execution``, event counts) and environment provenance
    are excluded — they differ between equivalent runs by design.
    """
    manifest = run.get("manifest") or {}
    metrics = manifest.get("metrics", {})
    meta = dict(manifest.get("run", {}) or {})
    for key in _EXECUTION_META:
        meta.pop(key, None)
    return {
        "run": meta,
        "status": manifest.get("status", "unknown"),
        "counters": metrics.get("counters", {}),
        "gauges": metrics.get("gauges", {}),
        "histograms": metrics.get("histograms", {}),
        "summary": manifest.get("summary", {}),
    }


def _flatten(value, prefix: str, out: dict) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key), out)
    else:
        out[prefix] = value


def compare_runs(run_a: dict, run_b: dict) -> list[str]:
    """Divergences between two runs' deterministic facts (empty = agree).

    Each entry is a human- and machine-readable line of the form
    ``<dotted.path>: <a-value> != <b-value>`` (or ``only in a/b``).
    """
    flat_a: dict = {}
    flat_b: dict = {}
    _flatten(run_identity(run_a), "", flat_a)
    _flatten(run_identity(run_b), "", flat_b)
    diverged = []
    for key in sorted(set(flat_a) | set(flat_b)):
        if key not in flat_a:
            diverged.append(f"{key}: only in b ({flat_b[key]!r})")
        elif key not in flat_b:
            diverged.append(f"{key}: only in a ({flat_a[key]!r})")
        elif flat_a[key] != flat_b[key]:
            diverged.append(f"{key}: {flat_a[key]!r} != {flat_b[key]!r}")
    return diverged


def _diff_row(label: str, a, b, fmt: str = "{:.2f}") -> list[str]:
    def show(v):
        return fmt.format(v) if isinstance(v, (int, float)) else "n/a"

    delta = ""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        delta = fmt.format(b - a)
        if a:
            delta += f" ({100.0 * (b - a) / a:+.1f}%)"
    return [label, show(a), show(b), delta]


def render_diff(run_a: dict, run_b: dict) -> str:
    """Compare two loaded runs: throughput, errors, per-phase time split."""
    fa, fb = _run_facts(run_a), _run_facts(run_b)
    rows = [
        _diff_row("duration_s", fa["duration_s"], fb["duration_s"]),
        _diff_row("trials", fa["trials"], fb["trials"], fmt="{:d}"),
        _diff_row("trials/s", fa["throughput"], fb["throughput"]),
    ]
    for key in ("quarantined", "retries", "rebuilds", "timeouts"):
        rows.append(_diff_row(
            key, fa["execution"].get(key, 0), fb["execution"].get(key, 0), fmt="{:d}"))
    sdc_keys = sorted(set(fa["summary"].get("sdc", {})) | set(fb["summary"].get("sdc", {})))
    for key in sdc_keys:
        rows.append(_diff_row(
            f"sdc:{key}",
            fa["summary"].get("sdc", {}).get(key),
            fb["summary"].get("sdc", {}).get(key),
            fmt="{:.4f}",
        ))
    blocks = [format_table(
        ["metric", run_a["path"], run_b["path"], "delta"], rows, title="run diff")]
    paths = sorted(set(fa["spans"]) | set(fb["spans"]))
    if paths:
        span_rows = []
        for path in paths:
            ta = fa["spans"].get(path, {}).get("total_s")
            tb = fb["spans"].get(path, {}).get("total_s")
            span_rows.append(_diff_row(path, ta, tb, fmt="{:.3f}"))
        blocks.append(format_table(
            ["span", "a total s", "b total s", "delta"], span_rows,
            title="per-phase time split"))
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect fault-injection run manifests and run logs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="render a run's manifest and metrics")
    p_sum.add_argument("run", help="a .manifest.json or .runlog.jsonl file")
    p_tail = sub.add_parser("tail", help="print the last events of a run log")
    p_tail.add_argument("run", help="a .runlog.jsonl (or manifest with an event tail)")
    p_tail.add_argument("-n", type=int, default=20, help="events to show")
    p_tail.add_argument("--kind", default=None, help="only this event kind")
    p_diff = sub.add_parser(
        "diff", help="compare two runs (exit 1 when deterministic facts diverge)")
    p_diff.add_argument("run_a")
    p_diff.add_argument("run_b")
    args = parser.parse_args(argv)

    try:
        if args.command == "summarize":
            print(render_summary(load_run(args.run)))
        elif args.command == "tail":
            print(render_tail(load_run(args.run), n=args.n, kind=args.kind))
        else:
            run_a, run_b = load_run(args.run_a), load_run(args.run_b)
            print(render_diff(run_a, run_b))
            diverged = compare_runs(run_a, run_b)
            if diverged:
                print(f"\nDIVERGED: {len(diverged)} deterministic fact(s) differ")
                for line in diverged:
                    print(f"  {line}")
                return 1
            print("\nruns agree on every deterministic fact")
    except FileNotFoundError as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head/less that exited early: not an error.
        # Swap in a closed-safe stdout so interpreter shutdown does not
        # complain about the broken one.
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
