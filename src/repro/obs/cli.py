"""``repro-obs``: inspect campaign run manifests, run logs and traces.

Four subcommands over the artifacts :mod:`repro.obs.manifest` and
:mod:`repro.obs.tracer` write:

- ``summarize <run>`` — render a run's manifest (identity, timing,
  metric counters, span time split, event tallies) as tables; accepts a
  ``.manifest.json`` or a ``.runlog.jsonl``.
- ``tail <run>`` — print the last N supervision events of a run log.
- ``diff <a> <b>`` — compare two runs: throughput, error rates, and
  per-phase time split, with deltas.  Exit status is the comparison
  verdict: 0 when the runs agree on every deterministic fact, 1 when
  they diverge — so CI jobs and ``repro-gate`` recipes can consume the
  command as a pass/fail check instead of parsing its tables.
  Execution knobs (jobs, batch, shared memory, trace path) are *flagged*
  when they differ but never count as divergence.
- ``trace <run|tracefile>`` — render a campaign's propagation traces:
  cross-trial aggregation by default (depth histogram, per-layer
  kill/survival matrix, deviation-vs-depth), or one trial's layer-by-
  layer narrative with ``--trial N``.  Accepts the ``.trace.jsonl``
  itself, or a manifest/runlog/checkpoint it can be resolved from.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.obs.manifest import load_run
from repro.utils.tables import format_table

__all__ = [
    "compare_runs",
    "main",
    "render_diff",
    "render_summary",
    "render_tail",
    "render_trace",
    "render_trace_trial",
    "run_identity",
]


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "n/a"
    if value >= 60.0:
        return f"{value / 60.0:.1f} min"
    return f"{value:.2f} s"


def _run_facts(run: dict) -> dict:
    """Flatten a loaded run into the fields summarize/diff print."""
    manifest = run.get("manifest") or {}
    meta = manifest.get("run", {}) or (run.get("begin") or {})
    timing = manifest.get("timing", {})
    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    execution = manifest.get("execution", {})
    summary = manifest.get("summary", {})
    duration = timing.get("duration_s")
    trials = counters.get("trials", meta.get("n_trials"))
    throughput = None
    if duration and trials:
        throughput = trials / duration
    return {
        "status": manifest.get("status", "unknown"),
        "kind": manifest.get("kind", "campaign"),
        "meta": meta,
        "timing": timing,
        "spans": timing.get("spans", {}),
        "counters": counters,
        "gauges": metrics.get("gauges", {}),
        "histograms": metrics.get("histograms", {}),
        "execution": execution,
        "events": manifest.get("events", {}),
        "summary": summary,
        "env": manifest.get("env", {}),
        "duration_s": duration,
        "trials": trials,
        "throughput": throughput,
    }


def _identity_rows(facts: dict) -> list[list[str]]:
    meta, env, timing = facts["meta"], facts["env"], facts["timing"]
    rows = []
    for key in ("fingerprint", "network", "dtype", "target", "n_trials",
                "seed", "jobs", "batch", "resumed", "resumed_trials", "experiment"):
        if key in meta and meta[key] is not None:
            rows.append([key, str(meta[key])])
    trace = meta.get("trace") or {}
    if trace.get("mode") and trace["mode"] != "off":
        rows.append(["trace", f"{trace['mode']} (every={trace.get('every')})"])
    rows.append(["status", facts["status"]])
    if timing.get("started_at"):
        rows.append(["started", str(timing["started_at"])])
    rows.append(["duration", _fmt_seconds(facts["duration_s"])])
    if facts["throughput"] is not None:
        rows.append(["throughput", f"{facts['throughput']:.1f} trials/s"])
    if env.get("git_rev"):
        rows.append(["git", str(env["git_rev"])[:12]])
    if env.get("python"):
        rows.append(["python / numpy", f"{env.get('python')} / {env.get('numpy')}"])
    return rows


def _span_rows(spans: dict) -> list[list[str]]:
    total = sum(t.get("total_s", 0.0) for t in spans.values()) or 1.0
    rows = []
    for path in sorted(spans, key=lambda p: -spans[p].get("total_s", 0.0)):
        t = spans[path]
        count = t.get("count", 0)
        total_s = t.get("total_s", 0.0)
        mean_ms = 1000.0 * total_s / count if count else 0.0
        rows.append([
            path, str(count), f"{total_s:.3f}", f"{mean_ms:.2f}",
            f"{1000.0 * t.get('max_s', 0.0):.2f}", f"{100.0 * total_s / total:.1f}%",
        ])
    return rows


def render_summary(run: dict) -> str:
    """Tables describing one loaded run (see :func:`load_run`)."""
    facts = _run_facts(run)
    if not run.get("manifest"):
        lines = [f"{run['path']}: no manifest found "
                 "(run still in flight, or killed before its first flush)"]
        if run.get("begin"):
            lines.append(format_table(
                ["key", "value"],
                [[k, str(v)] for k, v in sorted(run["begin"].items()) if k != "kind"],
                title="begin record",
            ))
        if run.get("events"):
            lines.append(f"{len(run['events'])} events logged; try 'repro-obs tail'")
        return "\n\n".join(lines)
    blocks = [format_table(["key", "value"], _identity_rows(facts),
                           title=f"run: {facts['kind']} ({run['path']})")]
    if facts["counters"]:
        blocks.append(format_table(
            ["counter", "value"],
            [[k, str(v)] for k, v in sorted(facts["counters"].items())],
            title="metrics",
        ))
    for name, hist in sorted(facts["histograms"].items()):
        edges, counts = hist.get("edges", []), hist.get("counts", [])
        labels = [f"<= {e:g}" for e in edges] + ["overflow"]
        rows = [[lab, str(c)] for lab, c in zip(labels, counts) if c]
        if rows:
            blocks.append(format_table(["bucket", "count"], rows, title=f"histogram: {name}"))
    if facts["spans"]:
        blocks.append(format_table(
            ["span", "count", "total s", "mean ms", "max ms", "share"],
            _span_rows(facts["spans"]), title="time split",
        ))
    execution = {k: v for k, v in facts["execution"].items() if v}
    if execution:
        blocks.append(format_table(
            ["stat", "value"], [[k, str(v)] for k, v in sorted(execution.items())],
            title="execution",
        ))
    counts = facts["events"].get("counts", {})
    if counts:
        blocks.append(format_table(
            ["event", "count"], [[k, str(v)] for k, v in sorted(counts.items())],
            title="events",
        ))
    sdc = facts["summary"].get("sdc", {})
    if sdc:
        blocks.append(format_table(
            ["class", "probability"], [[k, f"{v:.4f}"] for k, v in sorted(sdc.items())],
            title="outcomes",
        ))
    return "\n\n".join(blocks)


def render_tail(run: dict, n: int = 20, kind: str | None = None) -> str:
    """The last ``n`` event lines of a run (optionally one kind only)."""
    events = run.get("events", [])
    if kind is not None:
        events = [e for e in events if e.get("event") == kind]
    events = events[-n:]
    if not events:
        return "no matching events"
    rows = []
    for e in events:
        detail = e.get("detail", {})
        rows.append([
            str(e.get("seq", "")),
            f"{e['t']:.2f}" if isinstance(e.get("t"), (int, float)) else "",
            str(e.get("event", "")),
            " ".join(f"{k}={v}" for k, v in sorted(detail.items())),
        ])
    return format_table(["seq", "t+s", "event", "detail"], rows)


#: ``run`` meta keys that describe *how* a run executed, not *what* it
#: computed: two byte-identical campaigns may legitimately differ here.
#: ``trace`` is the *effective* trace config dict — its mode/stride are
#: identity (they live in the spec and the fingerprint), but the dict
#: also records the trace file path, which differs between equivalent
#: runs, so the whole meta entry is an execution knob for diffing.
_EXECUTION_META = ("jobs", "batch", "resumed", "resumed_trials", "shared_golden", "trace")


def run_identity(run: dict) -> dict:
    """The deterministic projection of a loaded run.

    Everything the repo's byte-identity promise covers: spec identity,
    final status, metric counters/gauges/histograms, and the outcome
    summary.  Wall-clock sections (timing, spans, throughput), harness
    accounting (``execution``, event counts) and environment provenance
    are excluded — they differ between equivalent runs by design.
    """
    manifest = run.get("manifest") or {}
    metrics = manifest.get("metrics", {})
    meta = dict(manifest.get("run", {}) or {})
    for key in _EXECUTION_META:
        meta.pop(key, None)
    return {
        "run": meta,
        "status": manifest.get("status", "unknown"),
        "counters": metrics.get("counters", {}),
        "gauges": metrics.get("gauges", {}),
        "histograms": metrics.get("histograms", {}),
        "summary": manifest.get("summary", {}),
    }


def _flatten(value, prefix: str, out: dict) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key), out)
    else:
        out[prefix] = value


def compare_runs(run_a: dict, run_b: dict) -> list[str]:
    """Divergences between two runs' deterministic facts (empty = agree).

    Each entry is a human- and machine-readable line of the form
    ``<dotted.path>: <a-value> != <b-value>`` (or ``only in a/b``).
    """
    flat_a: dict = {}
    flat_b: dict = {}
    _flatten(run_identity(run_a), "", flat_a)
    _flatten(run_identity(run_b), "", flat_b)
    diverged = []
    for key in sorted(set(flat_a) | set(flat_b)):
        if key not in flat_a:
            diverged.append(f"{key}: only in b ({flat_b[key]!r})")
        elif key not in flat_b:
            diverged.append(f"{key}: only in a ({flat_a[key]!r})")
        elif flat_a[key] != flat_b[key]:
            diverged.append(f"{key}: {flat_a[key]!r} != {flat_b[key]!r}")
    return diverged


def _diff_row(label: str, a, b, fmt: str = "{:.2f}") -> list[str]:
    def show(v):
        return fmt.format(v) if isinstance(v, (int, float)) else "n/a"

    delta = ""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        delta = fmt.format(b - a)
        if a:
            delta += f" ({100.0 * (b - a) / a:+.1f}%)"
    return [label, show(a), show(b), delta]


def render_diff(run_a: dict, run_b: dict) -> str:
    """Compare two loaded runs: throughput, errors, per-phase time split."""
    fa, fb = _run_facts(run_a), _run_facts(run_b)
    rows = [
        _diff_row("duration_s", fa["duration_s"], fb["duration_s"]),
        _diff_row("trials", fa["trials"], fb["trials"], fmt="{:d}"),
        _diff_row("trials/s", fa["throughput"], fb["throughput"]),
    ]
    for key in ("quarantined", "retries", "rebuilds", "timeouts"):
        rows.append(_diff_row(
            key, fa["execution"].get(key, 0), fb["execution"].get(key, 0), fmt="{:d}"))
    sdc_keys = sorted(set(fa["summary"].get("sdc", {})) | set(fb["summary"].get("sdc", {})))
    for key in sdc_keys:
        rows.append(_diff_row(
            f"sdc:{key}",
            fa["summary"].get("sdc", {}).get(key),
            fb["summary"].get("sdc", {}).get(key),
            fmt="{:.4f}",
        ))
    blocks = [format_table(
        ["metric", run_a["path"], run_b["path"], "delta"], rows, title="run diff")]
    paths = sorted(set(fa["spans"]) | set(fb["spans"]))
    if paths:
        span_rows = []
        for path in paths:
            ta = fa["spans"].get(path, {}).get("total_s")
            tb = fb["spans"].get(path, {}).get("total_s")
            span_rows.append(_diff_row(path, ta, tb, fmt="{:.3f}"))
        blocks.append(format_table(
            ["span", "a total s", "b total s", "delta"], span_rows,
            title="per-phase time split"))
    knobs_a = {k: (run_a.get("manifest") or {}).get("run", {}).get(k) for k in _EXECUTION_META}
    knobs_b = {k: (run_b.get("manifest") or {}).get("run", {}).get(k) for k in _EXECUTION_META}
    knob_rows = [
        [key, str(knobs_a[key]), str(knobs_b[key])]
        for key in _EXECUTION_META
        if knobs_a[key] != knobs_b[key]
    ]
    if knob_rows:
        blocks.append(format_table(
            ["knob", run_a["path"], run_b["path"]], knob_rows,
            title="execution knobs differ (informational, not fact divergence)"))
    return "\n\n".join(blocks)


# -- propagation traces -------------------------------------------------- #

def _load_trace_rows(path: str) -> tuple[dict, dict[int, dict]]:
    """Resolve ``path`` to a propagation trace: the file itself, or a
    manifest/runlog/checkpoint it can be derived from."""
    from repro.obs.tracer import default_trace_path, load_trace

    target = Path(path)
    if not target.exists():
        raise FileNotFoundError(f"no such file: {path}")
    header, rows = load_trace(target)
    if header is not None:
        return header, rows
    sibling = default_trace_path(target)
    if sibling.exists():
        header, rows = load_trace(sibling)
        if header is not None:
            return header, rows
    run = load_run(path)
    meta = (run.get("manifest") or {}).get("run", {}) or (run.get("begin") or {})
    recorded = (meta.get("trace") or {}).get("path")
    if recorded:
        header, rows = load_trace(recorded)
        if header is not None:
            return header, rows
        raise FileNotFoundError(
            f"trace file recorded in manifest does not exist: {recorded}")
    raise FileNotFoundError(
        f"no propagation trace found for {path} "
        "(was the campaign run with trace_mode off?)")


def _fmt_dev(value) -> str:
    if isinstance(value, (int, float)):
        return f"{value:.4g}"
    return str(value)  # "nan"/"inf" survive serialization as strings


def _outcome_label(row: dict) -> str:
    outcome = row.get("outcome") or {}
    flags = [cls for cls in ("sdc1", "sdc5", "sdc10", "sdc20") if outcome.get(cls)]
    if flags:
        return ",".join(flags)
    return "masked" if outcome.get("masked") else "benign"


def render_trace_trial(header: dict, row: dict) -> str:
    """One traced trial's layer-by-layer propagation narrative."""
    facts = [
        ["trial", str(row.get("index"))],
        ["fingerprint", str(header.get("fingerprint", "?"))],
        ["site / block / bit",
         f"{row.get('site')} / {row.get('block')} / {row.get('bit')}"],
        ["resume layer", str(row.get("resume_layer"))],
        ["value", f"{_fmt_dev(row.get('value_before'))} -> {_fmt_dev(row.get('value_after'))}"],
        ["outcome", _outcome_label(row)],
        ["depth", str(row.get("depth"))],
    ]
    if row.get("detected") is not None:
        facts.append(["detected", str(row["detected"])])
    if row.get("detector_layer") is not None:
        facts.append(["detector fired at layer", str(row["detector_layer"])])
    blocks = [format_table(["key", "value"], facts, title="traced trial")]
    layers = row.get("layers") or []
    if layers:
        layer_rows = []
        for entry in layers:
            span_txt = "-"
            if entry.get("dirty_rows"):
                lo, hi = entry["dirty_rows"]
                span_txt = f"[{lo}, {hi})"
            layer_rows.append([
                str(entry["layer"]), entry["name"], entry["kind"],
                str(entry["corrupted"]), span_txt,
                _fmt_dev(entry["max_abs_dev"]), _fmt_dev(entry["mean_abs_dev"]),
                _fmt_dev(entry["max_rel_dev"]),
            ])
        blocks.append(format_table(
            ["layer", "name", "kind", "corrupted", "rows",
             "max|dev|", "mean|dev|", "max rel"],
            layer_rows, title="propagation"))
    if row.get("masked_at_injection"):
        tail = "corruption erased at the injection site (quantized back onto golden)"
    elif row.get("masking"):
        masking = row["masking"]
        tail = (f"corruption died at layer {masking['layer']} "
                f"({masking['name']}: {masking['kind']}) "
                f"after surviving {row.get('depth')} layer(s)")
    else:
        tail = f"corruption survived all {row.get('depth')} traced layer(s) to the output"
    blocks.append(tail)
    return "\n\n".join(blocks)


def render_trace(header: dict, rows: dict[int, dict]) -> str:
    """Cross-trial aggregation tables for a propagation trace."""
    from repro.obs.tracer import (
        trace_depth_histogram,
        trace_deviation_by_depth,
        trace_layer_matrix,
    )

    trace_cfg = header.get("trace", {}) or {}
    n = len(rows)
    masked_inj = sum(1 for r in rows.values() if r.get("masked_at_injection"))
    reached = sum(1 for r in rows.values() if r.get("reached_output"))
    fired = sum(1 for r in rows.values() if r.get("detector_layer") is not None)
    overview = [
        ["fingerprint", str(header.get("fingerprint", "?"))],
        ["mode", f"{trace_cfg.get('mode')} (every={trace_cfg.get('every')})"],
        ["traced trials", str(n)],
        ["masked at injection", str(masked_inj)],
        ["reached output", str(reached)],
        ["detector fired", str(fired)],
    ]
    blocks = [format_table(["key", "value"], overview, title="propagation trace")]
    if not n:
        blocks.append("no trace rows (campaign still in flight, or nothing sampled)")
        return "\n\n".join(blocks)
    hist = trace_depth_histogram(rows)
    blocks.append(format_table(
        ["depth", "trials", "share"],
        [[str(d), str(c), f"{100.0 * c / n:.1f}%"] for d, c in hist.items()],
        title="propagation depth (layers survived)"))
    matrix = trace_layer_matrix(rows)
    if matrix:
        blocks.append(format_table(
            ["layer", "name", "kind", "entered", "killed", "survived", "kill %"],
            [[str(li), cell["name"], cell["kind"], str(cell["entered"]),
              str(cell["killed"]), str(cell["survived"]),
              f"{100.0 * cell['killed'] / cell['entered']:.1f}%"]
             for li, cell in matrix.items()],
            title="per-layer kill/survival"))
    table = trace_deviation_by_depth(rows)
    if table:
        blocks.append(format_table(
            ["step", "live traces", "max|dev|", "mean max|dev|"],
            [[str(step), str(cell["live"]), _fmt_dev(cell["max_abs_dev"]),
              _fmt_dev(cell["mean_abs_dev"])]
             for step, cell in table.items()],
            title="deviation vs depth"))
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect fault-injection run manifests and run logs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="render a run's manifest and metrics")
    p_sum.add_argument("run", help="a .manifest.json or .runlog.jsonl file")
    p_tail = sub.add_parser("tail", help="print the last events of a run log")
    p_tail.add_argument("run", help="a .runlog.jsonl (or manifest with an event tail)")
    p_tail.add_argument("-n", type=int, default=20, help="events to show")
    p_tail.add_argument("--kind", default=None, help="only this event kind")
    p_diff = sub.add_parser(
        "diff", help="compare two runs (exit 1 when deterministic facts diverge)")
    p_diff.add_argument("run_a")
    p_diff.add_argument("run_b")
    p_trace = sub.add_parser(
        "trace", help="render a campaign's propagation traces")
    p_trace.add_argument(
        "run", help="a .trace.jsonl, or a manifest/runlog/checkpoint to resolve one from")
    p_trace.add_argument(
        "--trial", type=int, default=None,
        help="show one trial's layer-by-layer narrative instead of aggregates")
    args = parser.parse_args(argv)

    try:
        if args.command == "summarize":
            print(render_summary(load_run(args.run)))
        elif args.command == "tail":
            print(render_tail(load_run(args.run), n=args.n, kind=args.kind))
        elif args.command == "trace":
            header, rows = _load_trace_rows(args.run)
            if args.trial is not None:
                row = rows.get(args.trial)
                if row is None:
                    print(f"repro-obs: trial {args.trial} is not in the traced subset "
                          f"({len(rows)} trials traced)", file=sys.stderr)
                    return 1
                print(render_trace_trial(header, row))
            else:
                print(render_trace(header, rows))
        else:
            run_a, run_b = load_run(args.run_a), load_run(args.run_b)
            print(render_diff(run_a, run_b))
            diverged = compare_runs(run_a, run_b)
            if diverged:
                print(f"\nDIVERGED: {len(diverged)} deterministic fact(s) differ")
                for line in diverged:
                    print(f"  {line}")
                return 1
            print("\nruns agree on every deterministic fact")
    except FileNotFoundError as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head/less that exited early: not an error.
        # Swap in a closed-safe stdout so interpreter shutdown does not
        # complain about the broken one.
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
