"""Hierarchical timing spans with a low-overhead no-op path.

``span("trial")`` is a context manager; nested spans build slash-joined
paths (``trial/golden_infer``, ``trial/layer:conv1``) and durations are
aggregated per path into count/total/max cells — the campaign never
stores one record per span, so a multi-million-trial run's span data
stays O(distinct paths).

Spans are **disabled by default**.  Disabled, ``span()`` returns a
shared no-op context manager: the cost is one flag check and an empty
``with`` block, cheap enough to leave in per-layer forward loops (the
benchmark suite tracks this — see ``benchmarks/test_bench_obs_overhead``).
Enabled (:func:`enable_spans`), each span costs two ``perf_counter``
reads and a dict update.

State is process-global and deliberately simple: the campaign's
concurrency unit is the process (workers enable spans for themselves in
their initializer and ship their timings back with each chunk's metric
snapshot), and span timings are wall-clock data — they belong in the
``timing`` section of a metrics snapshot, never next to deterministic
counters.
"""

from __future__ import annotations

import time

__all__ = [
    "span",
    "enable_spans",
    "disable_spans",
    "spans_enabled",
    "timing_snapshot",
    "record_timing",
]

_enabled = False
#: Current nesting path ("" at top level).
_path = ""
#: path -> [count, total_s, max_s]
_timings: dict[str, list] = {}


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """One live span; records its duration under the nested path."""

    __slots__ = ("name", "_prev", "_t0")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> "_Span":
        global _path
        self._prev = _path
        _path = f"{_path}/{self.name}" if _path else self.name
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        global _path
        record_timing(_path, time.perf_counter() - self._t0)
        _path = self._prev
        return None


def span(name: str):
    """Open a timing span named ``name`` (no-op unless spans are enabled)."""
    if not _enabled:
        return _NOOP
    return _Span(name)


def record_timing(path: str, seconds: float) -> None:
    """Fold one duration into the process-global span aggregates."""
    slot = _timings.get(path)
    if slot is None:
        _timings[path] = [1, seconds, seconds]
    else:
        slot[0] += 1
        slot[1] += seconds
        slot[2] = max(slot[2], seconds)


def enable_spans() -> None:
    """Turn span timing on for this process."""
    global _enabled
    _enabled = True


def disable_spans() -> None:
    """Turn span timing off (already-collected timings are kept)."""
    global _enabled
    _enabled = False


def spans_enabled() -> bool:
    """Whether spans currently record timings in this process."""
    return _enabled


def timing_snapshot(reset: bool = False) -> dict:
    """Aggregated span timings, metrics-snapshot ``timing`` format.

    Args:
        reset: Clear the aggregates after reading — workers use this to
            ship per-chunk deltas alongside their metric snapshots.
    """
    snap = {
        path: {"count": c, "total_s": t, "max_s": m}
        for path, (c, t, m) in sorted(_timings.items())
    }
    if reset:
        _timings.clear()
    return snap
