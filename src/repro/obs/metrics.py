"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is the campaign's ledger.  Every instrument is designed so
that a campaign sharded over a process pool reports *exactly* the same
totals as the same campaign run serially:

- counters and histogram bucket counts are integers, so merging is
  associative and commutative regardless of chunk completion order;
- histograms have **fixed** bucket edges declared at first observation
  (no adaptive resizing, which would make the shape depend on arrival
  order) and store no float sum (float addition is not associative, and
  worker chunks complete in nondeterministic order);
- anything wall-clock-derived lives under the separate ``timing`` key of
  a snapshot, so deterministic and timing data never mix.

Workers each hold their own registry, take delta snapshots per chunk
(:meth:`MetricsRegistry.snapshot` with ``reset=True``), ship them back
with the chunk's trial results, and the parent merges them — see
``repro.utils.parallel`` / ``repro.core.campaign`` for the wiring.

Snapshots are plain dicts of JSON-safe types::

    {
        "counters":   {"trials": 300, "outcome/masked": 251, ...},
        "gauges":     {"n_inputs": 3.0, ...},
        "histograms": {"abs_value_after": {"edges": [...], "counts": [...]}},
        "timing":     {"trial": {"count": 300, "total_s": 8.1, "max_s": 0.3}},
    }

``histograms[name]["counts"]`` has ``len(edges) + 1`` entries: one per
``value <= edge`` bucket plus a final overflow bucket.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

__all__ = [
    "DEFAULT_MAGNITUDE_BUCKETS",
    "MetricsRegistry",
    "empty_snapshot",
    "merge_snapshots",
    "merge_timing",
]

#: Logarithmic magnitude edges covering subnormal-to-overflow floats —
#: the natural scale for corrupted-value magnitudes (Figure 5 spans
#: ~1e-6 .. 1e38 depending on the datatype).
DEFAULT_MAGNITUDE_BUCKETS: tuple[float, ...] = tuple(
    10.0**e for e in range(-8, 40, 4)
)


def empty_snapshot() -> dict:
    """A snapshot with every section present and empty."""
    return {"counters": {}, "gauges": {}, "histograms": {}, "timing": {}}


class MetricsRegistry:
    """Process-local metric store with mergeable plain-dict snapshots.

    Not thread-safe by design: one registry per worker process (the
    campaign runner's concurrency unit is the process, not the thread).
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        #: name -> (edges tuple, counts list of len(edges)+1)
        self._histograms: dict[str, tuple[tuple[float, ...], list[int]]] = {}
        #: span path -> [count, total_s, max_s]
        self._timing: dict[str, list] = {}

    # -- instruments ------------------------------------------------------ #
    def inc(self, name: str, by: int = 1) -> None:
        """Increment counter ``name`` (integers only, see module docs)."""
        self._counters[name] = self._counters.get(name, 0) + int(by)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to the latest sample."""
        self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_MAGNITUDE_BUCKETS,
    ) -> None:
        """Count ``value`` into histogram ``name``.

        The bucket edges are fixed by the first observation; passing
        different ``buckets`` for the same name afterwards raises (a
        shape that depended on call order would not merge).
        """
        hist = self._histograms.get(name)
        if hist is None:
            edges = tuple(float(b) for b in buckets)
            if list(edges) != sorted(edges):
                raise ValueError(f"histogram {name!r} edges must be sorted, got {edges}")
            hist = self._histograms[name] = (edges, [0] * (len(edges) + 1))
        edges, counts = hist
        if tuple(float(b) for b in buckets) != edges:
            raise ValueError(
                f"histogram {name!r} was declared with edges {edges}; "
                "fixed-bucket histograms cannot be re-bucketed"
            )
        counts[bisect_left(edges, float(value))] += 1

    def time_span(self, path: str, seconds: float) -> None:
        """Fold one span duration into the (non-deterministic) timing section."""
        slot = self._timing.get(path)
        if slot is None:
            self._timing[path] = [1, float(seconds), float(seconds)]
        else:
            slot[0] += 1
            slot[1] += float(seconds)
            slot[2] = max(slot[2], float(seconds))

    # -- snapshots --------------------------------------------------------- #
    def snapshot(self, reset: bool = False) -> dict:
        """Plain-dict copy of every section (sorted keys, JSON-safe).

        Args:
            reset: Also clear the registry — used by workers to produce
                per-chunk *delta* snapshots, so the parent's merge of all
                deltas equals the serial run's totals.
        """
        snap = {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: {"edges": list(edges), "counts": list(counts)}
                for k, (edges, counts) in sorted(self._histograms.items())
            },
            "timing": {
                k: {"count": c, "total_s": t, "max_s": m}
                for k, (c, t, m) in sorted(self._timing.items())
            },
        }
        if reset:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._timing.clear()
        return snap

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a snapshot produced elsewhere into this registry."""
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            # Gauges carry "latest sample" semantics; across unordered
            # worker chunks the only commutative choice is the max.
            self._gauges[name] = max(self._gauges.get(name, float("-inf")), float(value))
        for name, hist in snap.get("histograms", {}).items():
            edges = tuple(float(e) for e in hist["edges"])
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = (edges, list(hist["counts"]))
                continue
            if mine[0] != edges:
                raise ValueError(f"histogram {name!r} bucket edges differ; cannot merge")
            for i, c in enumerate(hist["counts"]):
                mine[1][i] += c
        for path, t in snap.get("timing", {}).items():
            slot = self._timing.get(path)
            if slot is None:
                self._timing[path] = [t["count"], t["total_s"], t["max_s"]]
            else:
                slot[0] += t["count"]
                slot[1] += t["total_s"]
                slot[2] = max(slot[2], t["max_s"])


def merge_timing(a: dict, b: dict) -> dict:
    """Merge two ``timing`` sections (count-sum, total-sum, max-max)."""
    out = {k: dict(v) for k, v in a.items()}
    for path, t in b.items():
        slot = out.get(path)
        if slot is None:
            out[path] = dict(t)
        else:
            slot["count"] += t["count"]
            slot["total_s"] += t["total_s"]
            slot["max_s"] = max(slot["max_s"], t["max_s"])
    return {k: out[k] for k in sorted(out)}


def merge_snapshots(a: dict, b: dict) -> dict:
    """Pure-function merge of two snapshots (neither is mutated)."""
    registry = MetricsRegistry()
    registry.merge_snapshot(a)
    registry.merge_snapshot(b)
    return registry.snapshot()
