"""Table 2: the four evaluated networks and their topologies."""

from __future__ import annotations

from repro.experiments.common import ExperimentConfig
from repro.utils.tables import format_table
from repro.zoo.registry import describe_networks

__all__ = ["run", "render"]

EXPERIMENT_ID = "table2"
TITLE = "Table 2: networks used"


def run(cfg: ExperimentConfig) -> dict:
    return {"config": cfg, "networks": describe_networks(cfg.scale)}


def render(result: dict) -> str:
    rows = [
        [d["network"], d["dataset"], d["output_candidates"], d["topology"],
         f"{d['params']:,}", f"{d['macs']:,}"]
        for d in result["networks"]
    ]
    return format_table(
        ["network", "dataset", "output candidates", "topology", "params", "MACs"],
        rows,
        title=TITLE,
    )
