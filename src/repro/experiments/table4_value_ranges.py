"""Table 4: error-free per-layer ACT value ranges for every network.

The ImageNet networks are weight-calibrated against the paper's ranges
(see :mod:`repro.zoo.weights`), so this experiment doubles as the
calibration audit: measured ranges should bracket the paper's values.
ConvNet's ranges emerge from actual training.
"""

from __future__ import annotations

from repro.experiments.common import PAPER_NETWORKS, ExperimentConfig
from repro.nn.profiling import profile_ranges
from repro.utils.tables import format_table
from repro.zoo.registry import eval_inputs, get_network
from repro.zoo.weights import TABLE4_RANGES

__all__ = ["run", "render"]

EXPERIMENT_ID = "table4"
TITLE = "Table 4: fault-free ACT value range per layer"


def run(cfg: ExperimentConfig) -> dict:
    """Returns ``{network: [(layer, measured_lo, measured_hi, paper_lo, paper_hi)]}``."""
    out: dict = {"config": cfg, "ranges": {}}
    n_inputs = max(2, min(8, cfg.trials // 50))
    for network_name in PAPER_NETWORKS:
        network = get_network(network_name, cfg.scale)
        inputs = eval_inputs(network_name, n_inputs, cfg.scale, seed=100)
        profile = profile_ranges(network, inputs, scope="all")
        paper = TABLE4_RANGES[network_name]
        rows = []
        for block, r in sorted(profile.ranges.items()):
            p_lo, p_hi = paper[block - 1] if block - 1 < len(paper) else (float("nan"),) * 2
            rows.append((block, r.lo, r.hi, p_lo, p_hi))
        out["ranges"][network_name] = rows
    return out


def render(result: dict) -> str:
    sections = []
    for network, rows in result["ranges"].items():
        table_rows = [
            [blk, f"{lo:.4g}", f"{hi:.4g}", f"{plo:.4g}", f"{phi:.4g}"]
            for blk, lo, hi, plo, phi in rows
        ]
        sections.append(
            format_table(
                ["layer", "measured min", "measured max", "paper min", "paper max"],
                table_rows,
                title=f"{TITLE} — {network}",
            )
        )
    return "\n\n".join(sections)
