"""Table 3: the six evaluated data types and their bit layouts."""

from __future__ import annotations

from repro.dtypes.registry import describe_all
from repro.experiments.common import ExperimentConfig
from repro.utils.tables import format_table

__all__ = ["run", "render"]

EXPERIMENT_ID = "table3"
TITLE = "Table 3: data types used"


def run(cfg: ExperimentConfig) -> dict:
    return {"config": cfg, "dtypes": describe_all()}


def render(result: dict) -> str:
    rows = []
    for d in result["dtypes"]:
        fields = ", ".join(f"{n}:{w}b" for n, w in d["fields"].items())
        rows.append(
            [d["name"], d["kind"], f"{d['width']}-bit", fields,
             f"[{d['min_value']:.4g}, {d['max_value']:.4g}]"]
        )
    return format_table(
        ["name", "FP/FxP", "width", "bit fields (lsb->msb)", "dynamic range"],
        rows,
        title=TITLE,
    )
