"""Figure 6: SDC probability per layer position (FLOAT16).

Paper findings to check: AlexNet/CaffeNet show *low* SDC probability in
layers 1-2 (their LRNs normalize away large deviations) and *high* SDC
probability in the fully-connected layers (faults manipulate output
rankings directly); NiN and ConvNet, with no normalization layers, are
relatively flat across their convolutional layers.
"""

from __future__ import annotations

from repro.core.campaign import CampaignSpec
from repro.experiments.common import PAPER_NETWORKS, ExperimentConfig, campaign
from repro.utils.tables import format_table
from repro.zoo.registry import get_network

__all__ = ["run", "render"]

EXPERIMENT_ID = "fig6"
TITLE = "Figure 6: SDC probability per layer position (FLOAT16 PE-latch faults)"

DTYPE = "FLOAT16"


def run(cfg: ExperimentConfig) -> dict:
    """Returns ``{network: {block: (p, ci, n, kind)}}``."""
    out: dict = {"config": cfg, "layers": {}}
    for network_name in PAPER_NETWORKS:
        network = get_network(network_name, cfg.scale)
        kinds = network.block_kinds()
        per_layer_trials = max(20, cfg.trials // network.n_blocks)
        per_block: dict = {}
        for li in network.mac_layer_indices():
            block = network.layers[li].block
            spec = CampaignSpec(
                network=network_name,
                dtype=DTYPE,
                target="datapath",
                n_trials=per_layer_trials,
                scale=cfg.scale,
                seed=cfg.seed + 1000 + li,
                layer_index=li,
            )
            r = campaign(spec, cfg=cfg).sdc_rate("sdc1")
            per_block[block] = (r.p, r.ci95_halfwidth, r.n, kinds[block])
        out["layers"][network_name] = per_block
    return out


def render(result: dict) -> str:
    sections = []
    for network, per_block in result["layers"].items():
        rows = [
            [blk, kind, f"{100 * p:.2f}%", f"+/-{100 * ci:.2f}%", n]
            for blk, (p, ci, n, kind) in sorted(per_block.items())
        ]
        sections.append(
            format_table(
                ["layer", "kind", "SDC-1", "ci95", "trials"],
                rows,
                title=f"{TITLE} — {network}",
            )
        )
    return "\n\n".join(sections)
