"""Extension: reliability of the Proteus reduced-precision protocol.

Paper section 6.1 mentions Judd et al.'s Proteus — store data in a short
representation in memory, unfold into the (wider) datapath format for
computation — and explicitly defers its reliability evaluation to future
work.  This experiment carries that evaluation out: it compares a
conventional design (32b_rb10 in both datapath and buffers) against a
Proteus design (32b_rb10 datapath, 16b_rb10 buffer storage) on buffer
fault injections.

Two effects compound in Proteus's favour: buffer capacity halves (half
the raw upset rate, Equation 1) and the stored word has no redundant
dynamic range (a flipped high bit saturates near the value cluster
instead of escaping to ~2^20).
"""

from __future__ import annotations

from repro.accel.eyeriss import EYERISS_16NM
from repro.core.campaign import CampaignSpec
from repro.core.fit import buffer_fit
from repro.experiments.common import ExperimentConfig, campaign
from repro.experiments.table8_buffer_fit import COMPONENT_SCOPES
from repro.utils.tables import format_table

__all__ = ["run", "render"]

EXPERIMENT_ID = "proteus"
TITLE = "Extension: Proteus reduced-precision storage vs wide storage (AlexNet)"

NETWORK = "AlexNet"
DATAPATH_DTYPE = "32b_rb10"
STORAGE_DTYPE = "16b_rb10"
#: Proteus halves buffered word width: 16b stored vs 32b.
STORAGE_SIZE_RATIO = 0.5


def run(cfg: ExperimentConfig) -> dict:
    """Returns per-component SDC and FIT for both designs."""
    out: dict = {"config": cfg, "components": {}}
    for component, scope in COMPONENT_SCOPES.items():
        wide_spec = CampaignSpec(
            network=NETWORK, dtype=DATAPATH_DTYPE, target=scope,
            n_trials=cfg.trials, scale=cfg.scale, seed=cfg.seed + 600,
        )
        proteus_spec = CampaignSpec(
            network=NETWORK, dtype=DATAPATH_DTYPE, target=scope,
            n_trials=cfg.trials, scale=cfg.scale, seed=cfg.seed + 600,
            storage_dtype=STORAGE_DTYPE,
        )
        wide_sdc = campaign(wide_spec, cfg=cfg).sdc_rate().p
        proteus_sdc = campaign(proteus_spec, cfg=cfg).sdc_rate().p
        spec16 = EYERISS_16NM.buffer_named(component)
        # Eyeriss's table sizes assume 16-bit words; a 32-bit design
        # doubles them, Proteus keeps the 16-bit storage footprint.
        wide_fit = buffer_fit(spec16, wide_sdc).fit * 2.0
        proteus_fit = buffer_fit(spec16, proteus_sdc).fit * 2.0 * STORAGE_SIZE_RATIO
        out["components"][component] = {
            "wide_sdc": wide_sdc,
            "proteus_sdc": proteus_sdc,
            "wide_fit": wide_fit,
            "proteus_fit": proteus_fit,
        }
    out["wide_total"] = sum(c["wide_fit"] for c in out["components"].values())
    out["proteus_total"] = sum(c["proteus_fit"] for c in out["components"].values())
    return out


def render(result: dict) -> str:
    rows = []
    for component, d in result["components"].items():
        rows.append([
            component,
            f"{100 * d['wide_sdc']:.2f}%",
            f"{100 * d['proteus_sdc']:.2f}%",
            f"{d['wide_fit']:.4g}",
            f"{d['proteus_fit']:.4g}",
        ])
    table = format_table(
        ["component", "wide SDC", "Proteus SDC", "wide FIT", "Proteus FIT"],
        rows,
        title=TITLE,
    )
    wide, prot = result["wide_total"], result["proteus_total"]
    gain = wide / prot if prot > 0 else float("inf")
    return (
        table
        + f"\ntotal buffer FIT: wide {wide:.4g} vs Proteus {prot:.4g} "
        + f"({gain:.1f}x reduction: half the bits, none of the redundant range)"
    )
