"""Table 7: Eyeriss microarchitecture parameters, 65nm silicon and the
16nm projection used by every FIT calculation."""

from __future__ import annotations

from repro.accel.eyeriss import table7_rows
from repro.experiments.common import ExperimentConfig
from repro.utils.tables import format_table

__all__ = ["run", "render"]

EXPERIMENT_ID = "table7"
TITLE = "Table 7: Eyeriss parameters (16-bit data width, 2x per generation)"


def run(cfg: ExperimentConfig) -> dict:
    return {"config": cfg, "rows": table7_rows()}


def render(result: dict) -> str:
    rows = [
        [
            r["feature_size"],
            r["n_pe"],
            f"{r['global_buffer_kb']:.4g}KB",
            f"{r['filter_sram_kb']:.3g}KB",
            f"{r['img_reg_kb']:.2g}KB",
            f"{r['psum_reg_kb']:.2g}KB",
        ]
        for r in result["rows"]
    ]
    return format_table(
        ["feature size", "No. of PE", "global buffer", "one Filter SRAM", "one Img REG", "one PSum REG"],
        rows,
        title=TITLE,
    )
