"""Figure 8: precision and recall of the symptom-based error detectors.

The paper evaluates SED over AlexNet, CaffeNet and NiN with the three FP
types plus 32b_rb10 (the symptom-rich configurations; 16b_rb10/32b_rb26
and ConvNet are excluded because suppressed value ranges give weak
symptoms), injecting into every hardware component.  Reported averages:
90.21% precision and 92.5% recall.
"""

from __future__ import annotations

from repro.core.campaign import CampaignSpec
from repro.experiments.common import IMAGENET_NETWORKS, ExperimentConfig, campaign
from repro.utils.tables import format_table

__all__ = ["run", "render", "SED_DTYPES", "SED_TARGETS"]

EXPERIMENT_ID = "fig8"
TITLE = "Figure 8: symptom-based detector precision / recall"

#: Data types with strong out-of-range symptoms (paper section 6.2).
SED_DTYPES = ("DOUBLE", "FLOAT", "FLOAT16", "32b_rb10")
#: Hardware components covered: the datapath plus every buffer scope.
SED_TARGETS = ("datapath", "layer_weight", "next_layer", "single_read")


def run(cfg: ExperimentConfig) -> dict:
    """Returns per-network aggregated precision/recall across data types
    and components, plus the overall averages."""
    per_trials = max(20, cfg.trials // (len(SED_DTYPES) * len(SED_TARGETS)))
    out: dict = {"config": cfg, "networks": {}}
    precisions, recalls = [], []
    for network in IMAGENET_NETWORKS:
        tp = fp = total_sdc = total = 0
        for dtype in SED_DTYPES:
            for target in SED_TARGETS:
                spec = CampaignSpec(
                    network=network,
                    dtype=dtype,
                    target=target,
                    n_trials=per_trials,
                    scale=cfg.scale,
                    seed=cfg.seed + 800,
                    with_detection=True,
                )
                q = campaign(spec, cfg=cfg).detection_quality("sdc1")
                tp += q.true_positives
                fp += q.false_positives
                total_sdc += q.total_sdc
                total += q.total_injected
        precision = 1.0 - fp / total if total else 1.0
        recall = tp / total_sdc if total_sdc else 1.0
        out["networks"][network] = {
            "precision": precision,
            "recall": recall,
            "true_positives": tp,
            "false_positives": fp,
            "total_sdc": total_sdc,
            "total_injected": total,
        }
        precisions.append(precision)
        recalls.append(recall)
    out["avg_precision"] = sum(precisions) / len(precisions)
    out["avg_recall"] = sum(recalls) / len(recalls)
    return out


def render(result: dict) -> str:
    rows = [
        [
            network,
            f"{100 * d['precision']:.2f}%",
            f"{100 * d['recall']:.2f}%",
            d["total_sdc"],
            d["total_injected"],
        ]
        for network, d in result["networks"].items()
    ]
    table = format_table(
        ["network", "precision", "recall", "SDC trials", "injections"], rows, title=TITLE
    )
    return (
        table
        + f"\naverage precision: {100 * result['avg_precision']:.2f}%  (paper: 90.21%)"
        + f"\naverage recall:    {100 * result['avg_recall']:.2f}%  (paper: 92.5%)"
    )
