"""Figure 5: ACT values before/after errors, SDC versus benign.

For AlexNet/FLOAT16 datapath faults, the paper scatter-plots the victim
values before (clustered near 0) and after corruption, split by outcome:
errors producing large deviations almost always cause SDCs (Figure 5a)
while benign errors stay near the fault-free cluster (Figure 5b).  It
also reports that ~80% of SDC-causing erroneous values fall outside the
layer's fault-free range versus ~10% of benign ones — the observation
that powers the symptom detector.
"""

from __future__ import annotations

import numpy as np

from repro.core.campaign import CampaignSpec
from repro.experiments.common import ExperimentConfig, campaign
from repro.nn.profiling import profile_ranges
from repro.utils.tables import format_table
from repro.zoo.registry import eval_inputs, get_network

__all__ = ["run", "render"]

EXPERIMENT_ID = "fig5"
TITLE = "Figure 5: value deviation of SDC vs benign errors (AlexNet, FLOAT16)"

NETWORK = "AlexNet"
DTYPE = "FLOAT16"


def run(cfg: ExperimentConfig) -> dict:
    """Collect (before, after) victim-value pairs split by outcome."""
    spec = CampaignSpec(
        network=NETWORK,
        dtype=DTYPE,
        target="datapath",
        n_trials=cfg.trials,
        scale=cfg.scale,
        seed=cfg.seed,
    )
    result = campaign(spec, cfg=cfg)
    network = get_network(NETWORK, cfg.scale)
    profile = profile_ranges(network, eval_inputs(NETWORK, 3, cfg.scale, seed=100), scope="all")
    lo = min(r.lo for r in profile.ranges.values())
    hi = max(r.hi for r in profile.ranges.values())

    sdc_pairs, benign_pairs = [], []
    for rec in result.records:
        if rec.outcome.masked:
            continue
        pair = (rec.value_before, rec.value_after)
        (sdc_pairs if rec.outcome.sdc1 else benign_pairs).append(pair)

    def out_of_range_fraction(pairs: list[tuple[float, float]]) -> float:
        if not pairs:
            return 0.0
        after = np.array([p[1] for p in pairs])
        with np.errstate(invalid="ignore"):
            outside = (after < lo) | (after > hi) | ~np.isfinite(after)
        return float(outside.mean())

    return {
        "config": cfg,
        "range": (lo, hi),
        "sdc_pairs": sdc_pairs,
        "benign_pairs": benign_pairs,
        "sdc_out_of_range": out_of_range_fraction(sdc_pairs),
        "benign_out_of_range": out_of_range_fraction(benign_pairs),
    }


def _magnitude_stats(pairs: list[tuple[float, float]]) -> tuple[float, float]:
    if not pairs:
        return (0.0, 0.0)
    after = np.array([p[1] for p in pairs])
    after = np.where(np.isfinite(after), after, np.nan)
    return float(np.nanmedian(np.abs(after))), float(np.nanmax(np.abs(after), initial=0.0))


def render(result: dict) -> str:
    lo, hi = result["range"]
    s_med, s_max = _magnitude_stats(result["sdc_pairs"])
    b_med, b_max = _magnitude_stats(result["benign_pairs"])
    rows = [
        ["SDC-causing", len(result["sdc_pairs"]),
         f"{100 * result['sdc_out_of_range']:.1f}%", f"{s_med:.3g}", f"{s_max:.3g}"],
        ["benign", len(result["benign_pairs"]),
         f"{100 * result['benign_out_of_range']:.1f}%", f"{b_med:.3g}", f"{b_max:.3g}"],
    ]
    table = format_table(
        ["outcome", "samples", "corrupted value outside fault-free range",
         "median |after|", "max |after|"],
        rows,
        title=TITLE,
    )
    return table + f"\nfault-free ACT range across layers: [{lo:.4g}, {hi:.4g}]"
