"""Shared infrastructure for the per-table/figure experiment modules.

Every experiment module exposes:

- ``run(cfg: ExperimentConfig) -> dict``: compute the artifact's data.
- ``render(result: dict) -> str``: paper-style plain-text rendering.

The :mod:`repro.experiments.runner` CLI dispatches on experiment id and
wires up trial counts, scale, seed and parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.campaign import CampaignResult, CampaignSpec, run_campaign

__all__ = ["ExperimentConfig", "campaign", "PAPER_NETWORKS", "IMAGENET_NETWORKS"]

#: All networks, Table 2 order.
PAPER_NETWORKS = ("ConvNet", "AlexNet", "CaffeNet", "NiN")
#: Networks using the ImageNet-like corpus (everything but ConvNet).
IMAGENET_NETWORKS = ("AlexNet", "CaffeNet", "NiN")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs common to every experiment.

    Attributes:
        trials: Baseline injection count per campaign (experiments scale
            this down for fine-grained sweeps such as per-bit campaigns).
        scale: Network scale profile.
        seed: Root seed.
        jobs: Worker processes for campaigns (1 = inline).
        batch: Trials propagated per batched forward pass (1 = serial
            per-trial propagation; results are bit-identical either way).
        trial_timeout: Per-trial seconds before a hung chunk is killed
            and retried (None disables deadlines).
        max_retries: Retry budget per failing chunk / raising trial.
        max_error_frac: Quarantined-trial fraction tolerated per campaign
            before aborting (see docs/resilience.md).
        checkpoint_dir: When set, every campaign snapshots completed
            trials to ``<dir>/<fingerprint>.jsonl``.
        resume: Skip trial indices already present in a campaign's
            checkpoint file (requires ``checkpoint_dir``).
        obs_dir: When set, every campaign writes a run manifest and a
            structured JSONL run log to ``<dir>/<fingerprint>.manifest.json``
            / ``<dir>/<fingerprint>.runlog.jsonl`` (docs/observability.md).
        progress: Seconds between live progress lines on stderr
            (0 disables).
        spans: Collect hierarchical timing spans in every campaign.
        shared_golden: Tri-state shared-memory golden state: None lets
            :func:`~repro.core.campaign.run_campaign` auto-enable it for
            multi-worker runs; True/False force it on/off.  Bit-identical
            either way (docs/architecture.md, "Shared golden state").
        target_halfwidth: When set, overrides every campaign spec's
            Wilson-CI early-stopping target (docs/architecture.md,
            "Early stopping").  Spec-identity caveat: this *changes* the
            campaign fingerprint, so checkpoints/manifests from runs
            without it do not resume into runs with it.
        stop_stratify: Stratum key for the stopping rule (only applied
            when ``target_halfwidth`` is set).
        stop_check_every: Trial-index boundary between stop decisions
            (only applied when ``target_halfwidth`` is set).
    """

    trials: int = 300
    scale: str = "reduced"
    seed: int = 0
    jobs: int = 1
    batch: int = 1
    trial_timeout: float | None = None
    max_retries: int = 2
    max_error_frac: float = 0.0
    checkpoint_dir: str | None = None
    resume: bool = False
    obs_dir: str | None = None
    progress: float = 0.0
    spans: bool = False
    shared_golden: bool | None = None
    target_halfwidth: float | None = None
    stop_stratify: str = "overall"
    stop_check_every: int = 64

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be positive")


_campaign_cache: dict[CampaignSpec, CampaignResult] = {}


def campaign(spec: CampaignSpec, jobs: int = 1, cfg: ExperimentConfig | None = None) -> CampaignResult:
    """Run (or reuse) a campaign; memoized per spec within the process.

    Several experiments share identical campaigns (e.g. Figure 3's rates
    feed Table 6's FIT calculation); the memo avoids re-running them.

    Args:
        spec: Campaign to run.
        jobs: Worker processes; superseded by ``cfg.jobs`` when ``cfg``
            is given.
        cfg: When given, its resilience knobs (timeout, retries, error
            budget, checkpointing) are applied to the run.
    """
    if cfg is not None and cfg.target_halfwidth is not None:
        # Early stopping is part of the campaign identity (it changes
        # which trials run), so it belongs on the spec — and must be
        # applied *before* the memo lookup and fingerprinting.
        spec = replace(
            spec,
            target_halfwidth=cfg.target_halfwidth,
            stop_stratify=cfg.stop_stratify,
            stop_check_every=cfg.stop_check_every,
        )
    cached = _campaign_cache.get(spec)
    if cached is None:
        kwargs: dict = {}
        if cfg is not None:
            jobs = cfg.jobs
            kwargs = dict(
                batch=cfg.batch,
                trial_timeout=cfg.trial_timeout,
                max_retries=cfg.max_retries,
                max_error_frac=cfg.max_error_frac,
                spans=cfg.spans,
                progress_every=cfg.progress,
                shared_golden=cfg.shared_golden,
            )
            if cfg.checkpoint_dir is not None or cfg.obs_dir is not None:
                from repro.core.checkpoint import campaign_fingerprint

                fingerprint = campaign_fingerprint(spec)
                if cfg.checkpoint_dir is not None:
                    kwargs["checkpoint"] = (
                        Path(cfg.checkpoint_dir) / f"{fingerprint}.jsonl"
                    )
                    kwargs["resume"] = cfg.resume
                if cfg.obs_dir is not None:
                    obs_dir = Path(cfg.obs_dir)
                    kwargs["manifest"] = obs_dir / f"{fingerprint}.manifest.json"
                    kwargs["run_log"] = obs_dir / f"{fingerprint}.runlog.jsonl"
            if cfg.progress > 0:
                from repro.core.tracing import EventRecorder
                from repro.obs.progress import ProgressReporter

                recorder = EventRecorder()
                recorder.add_sink(ProgressReporter(min_interval=cfg.progress))
                kwargs["events"] = recorder
        cached = run_campaign(spec, jobs=jobs, **kwargs)
        _campaign_cache[spec] = cached
    return cached
