"""Shared infrastructure for the per-table/figure experiment modules.

Every experiment module exposes:

- ``run(cfg: ExperimentConfig) -> dict``: compute the artifact's data.
- ``render(result: dict) -> str``: paper-style plain-text rendering.

The :mod:`repro.experiments.runner` CLI dispatches on experiment id and
wires up trial counts, scale, seed and parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import CampaignResult, CampaignSpec, run_campaign

__all__ = ["ExperimentConfig", "campaign", "PAPER_NETWORKS", "IMAGENET_NETWORKS"]

#: All networks, Table 2 order.
PAPER_NETWORKS = ("ConvNet", "AlexNet", "CaffeNet", "NiN")
#: Networks using the ImageNet-like corpus (everything but ConvNet).
IMAGENET_NETWORKS = ("AlexNet", "CaffeNet", "NiN")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs common to every experiment.

    Attributes:
        trials: Baseline injection count per campaign (experiments scale
            this down for fine-grained sweeps such as per-bit campaigns).
        scale: Network scale profile.
        seed: Root seed.
        jobs: Worker processes for campaigns (1 = inline).
    """

    trials: int = 300
    scale: str = "reduced"
    seed: int = 0
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be positive")


_campaign_cache: dict[CampaignSpec, CampaignResult] = {}


def campaign(spec: CampaignSpec, jobs: int = 1) -> CampaignResult:
    """Run (or reuse) a campaign; memoized per spec within the process.

    Several experiments share identical campaigns (e.g. Figure 3's rates
    feed Table 6's FIT calculation); the memo avoids re-running them.
    """
    cached = _campaign_cache.get(spec)
    if cached is None:
        cached = run_campaign(spec, jobs=jobs)
        _campaign_cache[spec] = cached
    return cached
