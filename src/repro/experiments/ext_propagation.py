"""Extension: propagation depth and masking locus, from flight-recorder traces.

The paper argues its masking story from endpoints: an injection either
shows up in the final fmap or it does not (Table 5), and ReLU/pooling
are *inferred* to be the erasers.  The propagation flight recorder
(``repro.obs.tracer``) makes the middle of that story observable — every
traced trial carries the per-layer corruption footprint and the exact
layer (and mechanism) that erased it.  This experiment runs fully traced
campaigns and aggregates the traces into two artifacts the paper never
had: a propagation-depth histogram (how many layers a corruption
survives before dying) and a masking-locus table (which mechanism —
ReLU zero-kill, pool absorb, quantization clip — kills faults, per
network).

Trace rows are deterministic facts (pure functions of trial index), so
this experiment's tables are byte-stable across ``--jobs`` / ``--batch``
like every other artifact.
"""

from __future__ import annotations

from repro.core.campaign import CampaignSpec
from repro.experiments.common import ExperimentConfig, campaign
from repro.obs.tracer import trace_depth_histogram, trace_deviation_by_depth, trace_layer_matrix
from repro.utils.tables import format_table

__all__ = ["run", "render", "PROP_NETWORKS"]

EXPERIMENT_ID = "propagation"
TITLE = "Extension: propagation depth and masking locus (per-layer fault traces)"

#: Shallow to deep, same axis as the depth study.
PROP_NETWORKS = ("ConvNet", "AlexNet", "NiN")
DTYPE = "FLOAT16"  # quantization clipping competes with ReLU/pool masking

#: Masking mechanisms in display order.
_KINDS = ("relu_zero_kill", "pool_absorb", "quantization_clip")


def run(cfg: ExperimentConfig) -> dict:
    out: dict = {"config": cfg, "networks": {}}
    for name in PROP_NETWORKS:
        spec = CampaignSpec(
            network=name, dtype=DTYPE, n_trials=cfg.trials,
            scale=cfg.scale, seed=cfg.seed + 2500,
            record_propagation=True, trace_mode="all",
        )
        result = campaign(spec, cfg=cfg)
        traces = result.traces
        locus = {kind: 0 for kind in _KINDS}
        masked_at_injection = 0
        reached = 0
        depth_sum = 0
        for row in traces.values():
            depth_sum += int(row["depth"])
            if row["masked_at_injection"]:
                masked_at_injection += 1
            masking = row.get("masking")
            if masking is not None:
                locus[masking["kind"]] = locus.get(masking["kind"], 0) + 1
            elif not row["masked_at_injection"]:
                reached += 1
        out["networks"][name] = {
            "traced": len(traces),
            "depth_histogram": trace_depth_histogram(traces),
            "layer_matrix": trace_layer_matrix(traces),
            "deviation_by_depth": trace_deviation_by_depth(traces),
            "mean_depth": depth_sum / len(traces) if traces else 0.0,
            "masked_at_injection": masked_at_injection,
            "masking_locus": locus,
            "reached_output": reached,
        }
    return out


def render(result: dict) -> str:
    networks = result["networks"]
    depth_rows = []
    max_depth = max(
        (int(d) for data in networks.values() for d in data["depth_histogram"]),
        default=0,
    )
    shown = min(max_depth, 8)
    for name, data in networks.items():
        hist = {int(k): v for k, v in data["depth_histogram"].items()}
        cells = [str(hist.get(d, 0)) for d in range(shown + 1)]
        tail = sum(v for d, v in hist.items() if d > shown)
        depth_rows.append([name, f"{data['mean_depth']:.2f}", *cells, str(tail)])
    depth_table = format_table(
        ["network", "mean depth", *[f"d={d}" for d in range(shown + 1)], f">{shown}"],
        depth_rows,
        title=TITLE,
    )
    locus_rows = []
    for name, data in networks.items():
        n = max(1, data["traced"])
        locus = data["masking_locus"]
        locus_rows.append([
            name,
            str(data["traced"]),
            f"{100 * data['masked_at_injection'] / n:.1f}%",
            *[f"{100 * locus.get(kind, 0) / n:.1f}%" for kind in _KINDS],
            f"{100 * data['reached_output'] / n:.1f}%",
        ])
    locus_table = format_table(
        ["network", "traced", "at injection", "ReLU kill", "pool absorb",
         "quant clip", "reaches output"],
        locus_rows,
        title="masking locus (fraction of traced trials erased by each mechanism)",
    )
    return depth_table + "\n\n" + locus_table + (
        "\nmost corruptions die within the first layer or two; the deeper"
        "\nthe survivor, the likelier it reaches the output — the window"
        "\nwhere a symptom detector must fire (sections 5.1.4, 6.2)."
    )
