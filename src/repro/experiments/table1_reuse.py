"""Table 1: data-reuse taxonomy of DNN accelerators, plus the concrete
row-stationary reuse counts our buffer fault model derives from it."""

from __future__ import annotations

from repro.accel.dataflow import network_reuse_report
from repro.accel.reuse import table1_rows
from repro.experiments.common import ExperimentConfig
from repro.utils.tables import format_table
from repro.zoo.registry import get_network

__all__ = ["run", "render"]

EXPERIMENT_ID = "table1"
TITLE = "Table 1: data reuse in DNN accelerators"


def run(cfg: ExperimentConfig) -> dict:
    network = get_network("AlexNet", cfg.scale)
    return {
        "config": cfg,
        "taxonomy": table1_rows(),
        "alexnet_reuse": [vars(s) for s in network_reuse_report(network)],
    }


def render(result: dict) -> str:
    tick = lambda b: "yes" if b else "no"
    tax_rows = [
        [r["accelerator"], tick(r["weight_reuse"]), tick(r["image_reuse"]), tick(r["output_reuse"])]
        for r in result["taxonomy"]
    ]
    t1 = format_table(
        ["accelerators", "weight reuse", "image reuse", "output reuse"],
        tax_rows,
        title=TITLE,
    )
    reuse_rows = [
        [s["layer"], s["weight_uses"], s["image_row_uses"], s["image_total_uses"], s["psum_uses"]]
        for s in result["alexnet_reuse"]
    ]
    t2 = format_table(
        ["conv layer", "weight uses/residency", "image uses/row", "image uses/layer", "psum reads"],
        reuse_rows,
        title="Row-stationary reuse counts (AlexNet) driving the buffer fault scopes",
    )
    return t1 + "\n\n" + t2
