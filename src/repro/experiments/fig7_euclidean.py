"""Figure 7: Euclidean distance between faulty and golden ACTs per layer.

Faults are injected at layer 1 using DOUBLE (its huge dynamic range
accentuates deviations) and the distance between the faulty and golden
ACT tensors is measured at the end of every layer.  Expected shape:
AlexNet/CaffeNet drop sharply after their layer-1/2 LRNs; NiN and
ConvNet stay comparatively flat.
"""

from __future__ import annotations

from repro.core.fault import sample_datapath_fault
from repro.core.injector import inject_datapath
from repro.core.tracing import euclidean_by_block, relu_trace_layers
from repro.dtypes.registry import get_dtype
from repro.experiments.common import PAPER_NETWORKS, ExperimentConfig
from repro.utils.rng import child_rng
from repro.utils.tables import format_table
from repro.zoo.registry import eval_inputs, get_network

__all__ = ["run", "render"]

EXPERIMENT_ID = "fig7"
TITLE = "Figure 7: Euclidean distance per layer after a layer-1 fault (DOUBLE)"

DTYPE = "DOUBLE"


def run(cfg: ExperimentConfig) -> dict:
    """Returns ``{network: {block: mean_distance}}``.

    Distances average over ``cfg.trials`` injections pinned to the first
    MAC layer; high-order exponent bits are targeted so each injection
    creates a visible deviation to trace (the paper traces propagation,
    not incidence).
    """
    dtype = get_dtype(DTYPE)
    out: dict = {"config": cfg, "distances": {}}
    trials = max(10, cfg.trials // 10)
    for network_name in PAPER_NETWORKS:
        network = get_network(network_name, cfg.scale)
        first_mac = network.mac_layer_indices()[0]
        points = relu_trace_layers(network)
        inputs = eval_inputs(network_name, 2, cfg.scale, seed=100)
        goldens = [network.forward(x, dtype=dtype, record=True) for x in inputs]
        sums: dict[int, float] = {}
        count = 0
        for t in range(trials):
            rng = child_rng(cfg.seed, 7000 + t)
            golden = goldens[t % len(goldens)]
            # Flip the top magnitude-exponent bit: operand magnitudes sit
            # near 1 (exponent ~0), so this is the flip that creates the
            # large deviation whose attenuation the figure traces.
            bit = dtype.width - 2
            fault = sample_datapath_fault(
                network, dtype, rng, layer_index=first_mac, bit=bit
            )
            injection = inject_datapath(network, dtype, fault, golden, record=True)
            if injection.masked:
                continue
            distances = euclidean_by_block(network, golden, injection, points=points)
            for block, d in distances.items():
                sums[block] = sums.get(block, 0.0) + min(d, 1e30)
            count += 1
        out["distances"][network_name] = {
            b: (s / count if count else 0.0) for b, s in sorted(sums.items())
        }
    return out


def render(result: dict) -> str:
    sections = []
    for network, dists in result["distances"].items():
        rows = [[b, f"{d:.4g}"] for b, d in dists.items()]
        sections.append(
            format_table(["layer", "mean Euclidean distance"], rows, title=f"{TITLE} — {network}")
        )
        vals = list(dists.values())
        if len(vals) >= 2 and vals[0] > 0:
            sections.append(f"layer1 -> layer2 attenuation: {vals[0] / max(vals[1], 1e-30):.2f}x")
    return "\n\n".join(sections)
