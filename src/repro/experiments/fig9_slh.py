"""Figure 9 (and Table 9): selective latch hardening for AlexNet.

Panel (a): total-latch FIT reduction versus fraction of latches
protected (perfect protection, most-sensitive-first) for FLOAT16 and
16b_rb10, with the paper's beta asymmetry measure and the uniform
baseline.  Panels (b)/(c): latch area overhead versus target FIT
reduction for each hardened design (RCC / SEUT / TMR) and the optimal
multi-technique mix.  The paper's headline: ~100x FIT reduction at
roughly 20% (FLOAT16) / 25% (16b_rb10) latch area overhead.
"""

from __future__ import annotations

import numpy as np

from repro.core.hardening import (
    HARDENING_TECHNIQUES,
    coverage_curve,
    fit_beta,
    optimize_hardening,
    single_technique_overhead,
)
from repro.dtypes.registry import get_dtype
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig4_bit_position import per_bit_rates
from repro.utils.ascii_plot import sparkline
from repro.utils.tables import format_table

__all__ = ["run", "render", "TARGETS_X"]

EXPERIMENT_ID = "fig9"
TITLE = "Figure 9: selective latch hardening (AlexNet)"

NETWORK = "AlexNet"
DTYPES_SHOWN = ("FLOAT16", "16b_rb10")
#: Target FIT-reduction factors swept in panels (b)/(c).
TARGETS_X = (2.0, 6.3, 10.0, 37.0, 100.0)


def run(cfg: ExperimentConfig) -> dict:
    """Returns per-dtype: per-bit FIT shares, beta, and overhead curves."""
    out: dict = {"config": cfg, "dtypes": {}}
    for dtype_name in DTYPES_SHOWN:
        rates = per_bit_rates(NETWORK, dtype_name, cfg)
        dtype = get_dtype(dtype_name)
        per_bit_fit = np.array([rates[b][0] for b in range(dtype.width)])
        fraction, reduction = coverage_curve(per_bit_fit)
        beta = fit_beta(fraction, reduction)
        curves: dict = {}
        for tech in HARDENING_TECHNIQUES:
            curves[tech.name] = [
                single_technique_overhead(per_bit_fit, tech, t) for t in TARGETS_X
            ]
        curves["Multi"] = [
            optimize_hardening(per_bit_fit, t).area_overhead if per_bit_fit.sum() > 0 else 0.0
            for t in TARGETS_X
        ]
        out["dtypes"][dtype_name] = {
            "per_bit_fit": per_bit_fit.tolist(),
            "beta": beta,
            "coverage": (fraction.tolist(), reduction.tolist()),
            "overhead_curves": curves,
        }
    return out


def render(result: dict) -> str:
    sections = []
    for dtype_name, data in result["dtypes"].items():
        sections.append(
            f"{TITLE} — {dtype_name}: beta = {data['beta']:.2f} "
            f"(paper: FLOAT16 7.34, 16b_rb10 5.09)"
        )
        _fraction, reduction = data["coverage"]
        sections.append(
            "coverage curve (FIT reduction vs fraction protected): "
            + sparkline(reduction, lo=0.0, hi=1.0)
        )
        rows = []
        for i, target in enumerate(TARGETS_X):
            row = [f"{target:g}x"]
            for tech in ("RCC", "SEUT", "TMR", "Multi"):
                v = data["overhead_curves"][tech][i]
                row.append("unreachable" if v is None else f"{100 * v:.1f}%")
            rows.append(row)
        sections.append(
            format_table(
                ["target FIT reduction", "RCC", "SEUT", "TMR", "Multi"],
                rows,
                title=f"latch area overhead vs target — {dtype_name}",
            )
        )
    return "\n\n".join(sections)
