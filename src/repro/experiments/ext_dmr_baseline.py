"""Extension: symptom-based detection vs a bit-wise DMR baseline.

Paper section 5.1.4 observes that a majority of faults are masked by
POOL/ReLU before the last layer, so "error detection techniques that are
designed to detect bit-wise mismatches (i.e., DMR) may detect many
errors that ultimately get masked".  This experiment quantifies the
claim: a duplicate-and-compare detector flags every activated fault
(recall 100%) but its paper-style precision collapses, because most of
its detections would have been benign; SED keeps precision high at a
modest recall cost.
"""

from __future__ import annotations

from repro.core.campaign import CampaignSpec
from repro.experiments.common import IMAGENET_NETWORKS, ExperimentConfig, campaign
from repro.utils.tables import format_table

__all__ = ["run", "render"]

EXPERIMENT_ID = "dmr"
TITLE = "Extension: SED vs bit-wise DMR detection (datapath faults, FLOAT16)"

DTYPE = "FLOAT16"


def run(cfg: ExperimentConfig) -> dict:
    """Returns per-network precision/recall for both detector kinds."""
    out: dict = {"config": cfg, "networks": {}}
    for network in ("ConvNet",) + IMAGENET_NETWORKS:
        row = {}
        for kind in ("sed", "dmr"):
            spec = CampaignSpec(
                network=network, dtype=DTYPE, n_trials=cfg.trials,
                scale=cfg.scale, seed=cfg.seed + 700,
                with_detection=True, detector_kind=kind,
            )
            q = campaign(spec, cfg=cfg).detection_quality("sdc1")
            row[kind] = {
                "precision": q.precision,
                "recall": q.recall,
                "standard_precision": q.standard_precision,
                "total_sdc": q.total_sdc,
            }
        out["networks"][network] = row
    return out


def render(result: dict) -> str:
    rows = []
    for network, row in result["networks"].items():
        rows.append([
            network,
            f"{100 * row['sed']['precision']:.1f}% / {100 * row['sed']['recall']:.1f}%",
            f"{100 * row['dmr']['precision']:.1f}% / {100 * row['dmr']['recall']:.1f}%",
            f"{100 * row['dmr']['standard_precision']:.1f}%",
        ])
    table = format_table(
        ["network", "SED precision/recall", "DMR precision/recall",
         "DMR useful-detection rate"],
        rows,
        title=TITLE,
    )
    return (
        table
        + "\nDMR flags every activated fault, so most of its detections are"
        + "\nerrors that POOL/ReLU would have masked anyway (section 5.1.4)."
    )
