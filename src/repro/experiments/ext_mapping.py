"""Extension: row-stationary mapping report for the Eyeriss array.

Grounds the buffer-fault scopes in an actual dataflow mapping: for every
convolution layer of a network, how the R x E PE sets tile the physical
array, the pass count, the utilization, and the residency length of each
buffered datum.  The residency ratios are the mechanism behind Table 8's
ordering — a Filter-SRAM word lives for thousands of cycles (whole
layer) while a PSum-REG word lives for R cycles.
"""

from __future__ import annotations

from repro.accel.eyeriss import EYERISS_16NM
from repro.accel.mapping import array_shape_for, map_network
from repro.accel.occupancy import build_occupancy
from repro.experiments.common import ExperimentConfig
from repro.utils.tables import format_table
from repro.zoo.registry import get_network

__all__ = ["run", "render"]

EXPERIMENT_ID = "mapping"
TITLE = "Extension: row-stationary mapping on the Eyeriss-16nm array"


def run(cfg: ExperimentConfig, network_name: str = "AlexNet") -> dict:
    network = get_network(network_name, cfg.scale)
    reports = map_network(network, EYERISS_16NM)
    array = array_shape_for(EYERISS_16NM)
    occupancy = build_occupancy(network, EYERISS_16NM)
    return {
        "config": cfg,
        "network": network_name,
        "array": (array.height, array.width),
        "reports": [vars(r) for r in reports],
        "live_fractions": {
            comp: occupancy.live_fraction(comp)
            for comp in ("Global Buffer", "Filter SRAM", "Img REG", "PSum REG")
        },
        "total_cycles": occupancy.total_cycles,
    }


def render(result: dict) -> str:
    h, w = result["array"]
    rows = []
    for r in result["reports"]:
        ratio = r["weight_residency_cycles"] / max(1, r["psum_residency_cycles"])
        rows.append([
            r["layer"],
            f"{r['pe_set'][0]}x{r['pe_set'][1]}",
            r["sets_per_pass"],
            r["passes"],
            f"{100 * r['utilization']:.0f}%",
            f"{r['cycles']:,}",
            f"{r['weight_residency_cycles']:,}",
            r["img_residency_cycles"],
            r["psum_residency_cycles"],
            f"{ratio:,.0f}x",
        ])
    table = format_table(
        ["layer", "PE set", "sets/pass", "passes", "util", "cycles",
         "weight res.", "img res.", "psum res.", "weight/psum exposure"],
        rows,
        title=f"{TITLE} ({h}x{w} PEs) — {result['network']}",
    )
    live = "\n".join(
        f"  {comp:14s} {100 * frac:.1f}%"
        for comp, frac in result["live_fractions"].items()
    )
    return table + (
        "\nresidency ratios are why Filter-SRAM faults are whole-layer events"
        "\nwhile PSum-REG faults are single-read events (Table 8's ordering)."
        f"\n\naverage live-data fraction over {result['total_cycles']:,} cycles"
        "\n(a strike on dead bits is unactivated):\n" + live
    )
