"""Figure 3: SDC probability per data type and network (datapath faults).

Reproduces both panels: (a) AlexNet/CaffeNet/NiN and (b) ConvNet, each
with all four SDC classes across the six data types.  The paper's
findings to check: SDC probability varies strongly across data types
(32b_rb10 worst, 32b_rb26/16b_rb10 best), ConvNet is the most SDC-prone
network, and for the 1000-class networks the four SDC classes nearly
coincide while ConvNet spreads them out.
"""

from __future__ import annotations

from repro.core.campaign import CampaignSpec
from repro.core.outcome import SDC_CLASSES
from repro.dtypes.registry import DTYPES
from repro.experiments.common import PAPER_NETWORKS, ExperimentConfig, campaign
from repro.utils.tables import format_table

__all__ = ["run", "render"]

EXPERIMENT_ID = "fig3"
TITLE = "Figure 3: SDC probability per data type / network (PE latch faults)"


def run(cfg: ExperimentConfig) -> dict:
    """Returns ``{network: {dtype: {sdc_class: (p, ci)}}}``."""
    out: dict = {"config": cfg, "rates": {}}
    for network in PAPER_NETWORKS:
        per_dtype: dict = {}
        for dtype in DTYPES:
            spec = CampaignSpec(
                network=network,
                dtype=dtype,
                target="datapath",
                n_trials=cfg.trials,
                scale=cfg.scale,
                seed=cfg.seed,
            )
            result = campaign(spec, cfg=cfg)
            per_dtype[dtype] = {
                c: (r.p, r.ci95_halfwidth, r.n) for c, r in result.sdc_rates().items()
            }
        out["rates"][network] = per_dtype
    return out


def render(result: dict) -> str:
    rows = []
    for network, per_dtype in result["rates"].items():
        for dtype, classes in per_dtype.items():
            cells = [network, dtype]
            for c in SDC_CLASSES:
                p, ci, n = classes[c]
                cells.append(f"{100 * p:.2f}% (+/-{100 * ci:.2f})" if n else "n/a")
            rows.append(cells)
    return format_table(
        ["network", "dtype", "SDC-1", "SDC-5", "SDC-10%", "SDC-20%"], rows, title=TITLE
    )
