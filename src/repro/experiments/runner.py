"""Experiment CLI: ``repro-exp <experiment> [--trials N] [--scale S] ...``

Dispatches to the per-table/figure experiment modules and prints their
paper-style renderings.  ``repro-exp all`` runs everything (budget the
trial count accordingly); ``repro-exp list`` enumerates experiment ids.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    e2e_protected_fit,
    ext_depth,
    ext_dmr_baseline,
    ext_lrn_ablation,
    ext_mapping,
    ext_propagation,
    ext_proteus,
    fig3_datatype_sdc,
    fig4_bit_position,
    fig5_value_deviation,
    fig6_layer_sdc,
    fig7_euclidean,
    fig8_sed,
    fig9_slh,
    table1_reuse,
    table2_networks,
    table3_dtypes,
    table4_value_ranges,
    table5_bitwise_sdc,
    table6_datapath_fit,
    table7_eyeriss_scaling,
    table8_buffer_fit,
)
from repro.experiments.common import ExperimentConfig

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

#: Experiment id -> module, in paper order.
EXPERIMENTS = {
    "table1": table1_reuse,
    "table2": table2_networks,
    "table3": table3_dtypes,
    "fig3": fig3_datatype_sdc,
    "fig4": fig4_bit_position,
    "fig5": fig5_value_deviation,
    "table4": table4_value_ranges,
    "fig6": fig6_layer_sdc,
    "fig7": fig7_euclidean,
    "table5": table5_bitwise_sdc,
    "table6": table6_datapath_fit,
    "table7": table7_eyeriss_scaling,
    "table8": table8_buffer_fit,
    "fig8": fig8_sed,
    "fig9": fig9_slh,
    "e2e": e2e_protected_fit,
    # Extensions beyond the paper's evaluation (its stated future work).
    "proteus": ext_proteus,
    "dmr": ext_dmr_baseline,
    "mapping": ext_mapping,
    "lrn": ext_lrn_ablation,
    "depth": ext_depth,
    "propagation": ext_propagation,
}


def run_experiment(exp_id: str, cfg: ExperimentConfig, out_dir: str | None = None) -> str:
    """Run one experiment, optionally persisting its raw result as JSON.

    Args:
        exp_id: Experiment identifier (see :data:`EXPERIMENTS`).
        cfg: Trial budget / scale / seed / parallelism.
        out_dir: When given, write ``<out_dir>/<exp_id>.json`` (sanitized
            raw result) and ``<out_dir>/<exp_id>.txt`` (rendering).

    Returns:
        The paper-style text rendering.
    """
    try:
        module = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}") from None
    observer = None
    if out_dir is not None:
        from pathlib import Path

        from repro.obs.manifest import RunObserver

        base = Path(out_dir)
        observer = RunObserver(
            manifest_path=base / f"{exp_id}.manifest.json",
            run_log_path=base / f"{exp_id}.runlog.jsonl",
            kind="experiment",
            meta={
                "experiment": exp_id,
                "title": module.TITLE,
                "trials": cfg.trials,
                "scale": cfg.scale,
                "seed": cfg.seed,
                "jobs": cfg.jobs,
            },
        )
        observer.begin()
    try:
        result = module.run(cfg)
        rendering = module.render(result)
    except BaseException:
        if observer is not None:
            observer.finish(status="failed")
        raise
    if out_dir is not None:
        from pathlib import Path

        from repro.core.serialize import save_json

        base = Path(out_dir)
        save_json(result, base / f"{exp_id}.json")
        base.mkdir(parents=True, exist_ok=True)
        (base / f"{exp_id}.txt").write_text(rendering + "\n")
        if observer is not None:
            observer.finish(
                status="completed",
                summary={"artifacts": [f"{exp_id}.json", f"{exp_id}.txt"]},
            )
    return rendering


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Reproduce tables/figures of Li et al., SC'17.",
    )
    parser.add_argument("experiment", help="experiment id, 'all', or 'list'")
    parser.add_argument("--trials", type=int, default=300, help="injections per campaign")
    parser.add_argument("--scale", choices=("reduced", "full"), default="reduced")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (0 = all cores)")
    parser.add_argument("--batch", type=int, default=1,
                        help="trials propagated per batched forward pass "
                             "(1 = serial; results are bit-identical)")
    parser.add_argument("--shm", choices=("auto", "on", "off"), default="auto",
                        help="shared-memory golden state: compute goldens once in "
                             "the parent, workers attach read-only (auto = on for "
                             "multi-worker campaigns; bit-identical)")
    parser.add_argument("--out", default=None, help="directory for JSON/text artifacts")
    stopping = parser.add_argument_group("early stopping (docs/architecture.md)")
    stopping.add_argument("--target-halfwidth", type=float, default=None, metavar="W",
                          help="stop sampling each campaign stratum once its Wilson "
                               "95%% half-width drops to W (changes campaign "
                               "fingerprints; deterministic across jobs/batch/resume)")
    stopping.add_argument("--stop-stratify", choices=("overall", "site", "block", "bit"),
                          default="overall",
                          help="stratum key the stopping rule tracks")
    stopping.add_argument("--stop-check-every", type=int, default=64, metavar="N",
                          help="trial-index boundary between stop decisions")
    resilience = parser.add_argument_group("resilience (docs/resilience.md)")
    resilience.add_argument("--trial-timeout", type=float, default=None, metavar="SEC",
                            help="per-trial time budget; hung chunks are killed and retried")
    resilience.add_argument("--max-retries", type=int, default=2, metavar="N",
                            help="retry budget per failing chunk before bisection/quarantine")
    resilience.add_argument("--max-error-frac", type=float, default=0.0, metavar="F",
                            help="abort a campaign once more than this fraction of trials "
                                 "is quarantined")
    resilience.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                            help="snapshot each campaign to <DIR>/<fingerprint>.jsonl")
    resilience.add_argument("--resume", action="store_true",
                            help="skip trials already recorded under --checkpoint-dir")
    obs = parser.add_argument_group("observability (docs/observability.md)")
    obs.add_argument("--obs-dir", default=None, metavar="DIR",
                     help="write each campaign's run manifest + JSONL run log to "
                          "<DIR>/<fingerprint>.*")
    obs.add_argument("--progress", type=float, default=0.0, metavar="SEC", nargs="?",
                     const=2.0,
                     help="print live campaign progress every SEC seconds "
                          "(default 2.0 when given without a value)")
    obs.add_argument("--spans", action="store_true",
                     help="collect hierarchical timing spans in every campaign")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id, module in EXPERIMENTS.items():
            print(f"{exp_id:8s} {module.TITLE}")
        return 0

    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    cfg = ExperimentConfig(
        trials=args.trials, scale=args.scale, seed=args.seed, jobs=args.jobs,
        batch=args.batch,
        trial_timeout=args.trial_timeout, max_retries=args.max_retries,
        max_error_frac=args.max_error_frac, checkpoint_dir=args.checkpoint_dir,
        resume=args.resume, obs_dir=args.obs_dir, progress=args.progress,
        spans=args.spans,
        shared_golden={"auto": None, "on": True, "off": False}[args.shm],
        target_halfwidth=args.target_halfwidth,
        stop_stratify=args.stop_stratify,
        stop_check_every=args.stop_check_every,
    )
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; try 'list'", file=sys.stderr)
            return 2
        start = time.perf_counter()
        print(run_experiment(exp_id, cfg, out_dir=args.out))
        print(f"[{exp_id} done in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
