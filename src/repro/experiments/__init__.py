"""One experiment module per table/figure of the paper; see runner.py."""

from repro.experiments.common import ExperimentConfig

__all__ = ["ExperimentConfig"]
