"""Table 6: datapath FIT rate per data type and network.

Combines the Figure-3 SDC probabilities with the canonical latch model
(Equation 1): FIT = R_raw * latch_bits * SDC.  The PE count is Eyeriss's
16nm projection; the latch population scales with the data width, so the
FIT gap between data types exceeds their SDC gap (e.g. 32b_rb10 versus
16b_rb10 differs both in sensitivity and in latch count).
"""

from __future__ import annotations

from repro.accel.datapath import DatapathModel
from repro.accel.eyeriss import EYERISS_16NM
from repro.core.campaign import CampaignSpec
from repro.core.fit import datapath_fit
from repro.dtypes.registry import DTYPES, get_dtype
from repro.experiments.common import PAPER_NETWORKS, ExperimentConfig, campaign
from repro.utils.tables import format_table

__all__ = ["run", "render"]

EXPERIMENT_ID = "table6"
TITLE = "Table 6: datapath FIT rate per data type and network (Eyeriss-16nm PE array)"

#: Paper Table 6, for side-by-side comparison in the rendering.
PAPER_TABLE6 = {
    ("ConvNet", "FLOAT"): 1.76, ("AlexNet", "FLOAT"): 0.02,
    ("CaffeNet", "FLOAT"): 0.03, ("NiN", "FLOAT"): 0.10,
    ("ConvNet", "FLOAT16"): 0.91, ("AlexNet", "FLOAT16"): 0.009,
    ("CaffeNet", "FLOAT16"): 0.009, ("NiN", "FLOAT16"): 0.008,
    ("ConvNet", "32b_rb26"): 1.73, ("AlexNet", "32b_rb26"): 0.002,
    ("CaffeNet", "32b_rb26"): 0.005, ("NiN", "32b_rb26"): 0.002,
    ("ConvNet", "32b_rb10"): 2.45, ("AlexNet", "32b_rb10"): 0.42,
    ("CaffeNet", "32b_rb10"): 0.41, ("NiN", "32b_rb10"): 0.54,
    ("ConvNet", "16b_rb10"): 0.84, ("AlexNet", "16b_rb10"): 0.002,
    ("CaffeNet", "16b_rb10"): 0.007, ("NiN", "16b_rb10"): 0.004,
}


def run(cfg: ExperimentConfig) -> dict:
    """Returns ``{(network, dtype): (fit, sdc_p, paper_fit)}``.

    DOUBLE is measured too (it shares the Figure-3 campaigns) but the
    paper's Table 6 omits it, so rows carry a None paper value.
    """
    out: dict = {"config": cfg, "fit": {}}
    for network in PAPER_NETWORKS:
        for dtype_name in DTYPES:
            spec = CampaignSpec(
                network=network,
                dtype=dtype_name,
                target="datapath",
                n_trials=cfg.trials,
                scale=cfg.scale,
                seed=cfg.seed,
            )
            result = campaign(spec, cfg=cfg)
            sdc = result.sdc_rate("sdc1").p
            dp = DatapathModel(n_pes=EYERISS_16NM.n_pes, data_width=get_dtype(dtype_name).width)
            total_fit = sum(c.fit for c in datapath_fit(dp, {"datapath": sdc}))
            out["fit"][(network, dtype_name)] = (
                total_fit,
                sdc,
                PAPER_TABLE6.get((network, dtype_name)),
            )
    return out


def render(result: dict) -> str:
    rows = []
    for (network, dtype_name), (fit, sdc, paper) in result["fit"].items():
        rows.append(
            [
                network,
                dtype_name,
                f"{100 * sdc:.2f}%",
                f"{fit:.4g}",
                f"{paper:.4g}" if paper is not None else "-",
            ]
        )
    return format_table(
        ["network", "dtype", "SDC-1", "measured FIT", "paper FIT"], rows, title=TITLE
    )
