"""Extension: does LRN actually buy resilience?  (paper implication 3)

Section 6.1 recommends using normalization layers "if possible" because
LRN masks error propagation (sections 5.1.4, Figure 7).  This ablation
tests the recommendation directly: build AlexNet twice — once as-is and
once with its two LRN layers removed (weights re-calibrated so activation
ranges stay on Table 4) — inject escaping-deviation faults into the
LRN-protected early layers, and compare how much corruption survives to
the final fmap: the median Euclidean distance and the fraction of runs
whose output contains escaped (non-finite or out-of-range) values.
Propagation magnitude is the right metric here: with calibrated-random
weights the top-1 ranking is fragile to any in-range perturbation, but
the *attenuation* of the deviation is a property of the topology alone.
"""

from __future__ import annotations

import numpy as np

from repro.core.fault import sample_datapath_fault
from repro.core.injector import inject_datapath
from repro.core.stats import RateEstimate
from repro.dtypes.registry import get_dtype
from repro.experiments.common import ExperimentConfig
from repro.nn.network import Network
from repro.utils.rng import child_rng
from repro.utils.tables import format_table
from repro.zoo.alexnet import build_alexnet
from repro.zoo.datasets import imagenet_like
from repro.zoo.weights import calibrate_to_ranges, he_init

__all__ = ["run", "render", "build_alexnet_nolrn"]

EXPERIMENT_ID = "lrn"
TITLE = "Extension: AlexNet with vs without LRN (early-layer datapath faults)"

DTYPE = "DOUBLE"  # widest dynamic range: maximal deviations for LRN to mask


def build_alexnet_nolrn(scale: str = "reduced") -> Network:
    """AlexNet with the two LRN layers removed (topology otherwise equal)."""
    base = build_alexnet(scale=scale)
    layers = [l for l in base.layers if l.kind != "lrn"]
    return Network("AlexNet-noLRN", layers, base.input_shape, dataset=base.dataset)


def _prepared(with_lrn: bool, scale: str) -> Network:
    net = build_alexnet(scale=scale) if with_lrn else build_alexnet_nolrn(scale=scale)
    he_init(net, seed=7)
    probe = imagenet_like(2, size=net.input_shape[1], seed=21)
    calibrate_to_ranges(net, probe, targets=None if with_lrn else _alexnet_targets(), iterations=3)
    return net


def _alexnet_targets() -> list[float]:
    from repro.zoo.weights import max_abs_targets

    return max_abs_targets("AlexNet")


def _early_layer_propagation(net: Network, trials: int, seed: int) -> dict:
    """Escaping-deviation faults in blocks 1-2: how much reaches the end?"""
    dtype = get_dtype(DTYPE)
    x = imagenet_like(1, size=net.input_shape[1], seed=100)[0]
    golden = net.forward(x, dtype=dtype, record=True)
    early = net.mac_layer_indices()[:2]
    final_layer = len(net.layers) - 1
    if net.layers[-1].kind == "softmax":
        final_layer -= 1
    ref = golden.activations[final_layer + 1]
    bound = 10 * np.abs(ref).max()
    distances = []
    escaped = 0
    activated = 0
    for t in range(trials):
        rng = child_rng(seed, t)
        li = int(rng.choice(early))
        # Second-highest exponent bit: for values in the networks'
        # normal range (exponent ~1023-1040) this bit is 0, so the flip
        # multiplies the value by ~2^512 — the escaping-deviation fault
        # class whose masking is LRN's contribution.
        fault = sample_datapath_fault(net, dtype, rng, layer_index=li, bit=dtype.width - 3)
        inj = inject_datapath(net, dtype, fault, golden, record=True)
        if inj.masked:
            continue
        activated += 1
        j = final_layer - inj.resume_index + 1
        final = inj.faulty_activations[j]
        with np.errstate(invalid="ignore", over="ignore"):
            bad = ~np.isfinite(final) | (np.abs(final) > bound)
        if bad.any():
            escaped += 1
        diff = np.clip(final - ref, -1e150, 1e150)
        diff = np.where(np.isfinite(diff), diff, 1e150)
        distances.append(float(np.sqrt((diff * diff).sum())))
    return {
        "mean_distance": float(np.mean(distances)) if distances else 0.0,
        "p90_distance": float(np.percentile(distances, 90)) if distances else 0.0,
        "escaped": RateEstimate(escaped, max(activated, 1)),
        "activated": activated,
    }


def run(cfg: ExperimentConfig) -> dict:
    with_lrn = _early_layer_propagation(_prepared(True, cfg.scale), cfg.trials, cfg.seed + 40)
    without = _early_layer_propagation(_prepared(False, cfg.scale), cfg.trials, cfg.seed + 40)
    return {"config": cfg, "with_lrn": with_lrn, "without_lrn": without}


def render(result: dict) -> str:
    rows = []
    for label, key in (("AlexNet (with LRN)", "with_lrn"), ("AlexNet-noLRN", "without_lrn")):
        d = result[key]
        rows.append([
            label,
            f"{100 * d['escaped'].p:.1f}% (+/-{100 * d['escaped'].ci95_halfwidth:.1f})",
            f"{d['mean_distance']:.4g}",
            f"{d['p90_distance']:.4g}",
            d["activated"],
        ])
    table = format_table(
        ["network", "escaped outputs", "mean final-fmap distance",
         "p90 distance", "activated faults"],
        rows,
        title=TITLE,
    )
    w = result["with_lrn"]["escaped"].p
    wo = result["without_lrn"]["escaped"].p
    return table + (
        f"\nwithout LRN, {100 * wo:.1f}% of escaping early-layer faults survive to the"
        f"\noutput unmasked vs {100 * w:.1f}% with LRN — normalization layers are"
        "\nerror maskers, as section 6.1 claims."
    )
