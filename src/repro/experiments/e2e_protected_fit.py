"""End-to-end Eyeriss FIT with and without protection (sections 5.2/6).

Computes the overall Eyeriss-16nm FIT (datapath + all buffers) per
network, then applies the protection stack:

1. **SED** (software): detected SDC-causing faults no longer count, so
   every component's FIT scales by (1 - recall).
2. **SED + SLH** (hardware): selective latch hardening additionally cuts
   the datapath FIT by ~100x at ~20% latch area overhead (Figure 9).
3. **SED + SLH + ECC**: single-error-correcting ECC on every buffer
   eliminates buffer single-bit upsets (section 6.3: the datapath
   becomes the bottleneck "once all buffers are protected, e.g. by
   ECCs"); the residual FIT is the hardened datapath.

Budgets: ISO 26262 allots <10 FIT to the whole SoC; the accelerator is
a small fraction of the SoC area, so its allowance is "much lower than
10" (section 2.3) — modelled here as 1% of the SoC budget.  The paper's
claims to check: the unprotected accelerator exceeds its allowance by
orders of magnitude, and the combined techniques restore compliance (or
come close, for the most fragile network).
"""

from __future__ import annotations

from repro.accel.eyeriss import EYERISS_16NM
from repro.core.campaign import CampaignSpec
from repro.core.fit import ISO26262_SOC_FIT_BUDGET, eyeriss_total_fit
from repro.experiments.common import PAPER_NETWORKS, ExperimentConfig, campaign
from repro.experiments.table8_buffer_fit import COMPONENT_SCOPES
from repro.utils.tables import format_table

__all__ = ["run", "render", "ACCEL_AREA_FRACTION", "SLH_DATAPATH_REDUCTION"]

EXPERIMENT_ID = "e2e"
TITLE = "End-to-end Eyeriss-16nm FIT: protection stack vs ISO 26262 (16b_rb10)"

DTYPE = "16b_rb10"
#: Assumed accelerator share of SoC area (its share of the FIT budget).
ACCEL_AREA_FRACTION = 0.01
#: Datapath FIT reduction bought by selective latch hardening (Figure 9:
#: ~100x at roughly 20-25% latch area overhead).
SLH_DATAPATH_REDUCTION = 100.0
#: Residual fraction of buffer FIT under SEC-DED ECC (single-bit upsets
#: corrected; a small residual covers uncorrected multi-bit patterns).
ECC_BUFFER_RESIDUAL = 0.01


def run(cfg: ExperimentConfig) -> dict:
    """Returns per-network FIT under each protection level."""
    out: dict = {
        "config": cfg,
        "networks": {},
        "soc_budget": ISO26262_SOC_FIT_BUDGET,
        "accel_budget": ISO26262_SOC_FIT_BUDGET * ACCEL_AREA_FRACTION,
    }
    for network in PAPER_NETWORKS:
        dp_spec = CampaignSpec(
            network=network, dtype=DTYPE, target="datapath",
            n_trials=cfg.trials, scale=cfg.scale, seed=cfg.seed,
            with_detection=True,
        )
        dp_result = campaign(dp_spec, cfg=cfg)
        datapath_sdc = {"datapath": dp_result.sdc_rate("sdc1").p}

        buffer_sdc: dict[str, float] = {}
        q = dp_result.detection_quality("sdc1")
        tp, total_sdc = q.true_positives, q.total_sdc
        for component, scope in COMPONENT_SCOPES.items():
            spec = CampaignSpec(
                network=network, dtype=DTYPE, target=scope,
                n_trials=cfg.trials, scale=cfg.scale, seed=cfg.seed + 300,
                with_detection=True,
            )
            result = campaign(spec, cfg=cfg)
            buffer_sdc[component] = result.sdc_rate("sdc1").p
            q = result.detection_quality("sdc1")
            tp += q.true_positives
            total_sdc += q.total_sdc
        recall = tp / total_sdc if total_sdc else 1.0

        unprotected = eyeriss_total_fit(EYERISS_16NM, datapath_sdc, buffer_sdc)
        sed = eyeriss_total_fit(
            EYERISS_16NM, datapath_sdc, buffer_sdc, detector_recall=recall
        )
        sed_slh = dict(sed)
        sed_slh["datapath"] = sed["datapath"] / SLH_DATAPATH_REDUCTION
        sed_slh["total"] = sum(v for k, v in sed_slh.items() if k != "total")
        full = {
            k: (v if k == "datapath" else v * ECC_BUFFER_RESIDUAL)
            for k, v in sed_slh.items()
            if k != "total"
        }
        full["total"] = sum(full.values())
        out["networks"][network] = {
            "unprotected": unprotected,
            "sed": sed,
            "sed_slh": sed_slh,
            "full": full,
            "recall": recall,
        }
    return out


def render(result: dict) -> str:
    accel_budget = result["accel_budget"]
    rows = []
    for network, d in result["networks"].items():
        u = d["unprotected"]["total"]
        s = d["sed"]["total"]
        ss = d["sed_slh"]["total"]
        f = d["full"]["total"]
        rows.append(
            [
                network,
                f"{u:.4g}",
                f"{s:.4g}",
                f"{ss:.4g}",
                f"{f:.4g}",
                f"{100 * d['recall']:.1f}%",
                f"{u / accel_budget:.1f}x" if accel_budget else "-",
                "PASS" if f < accel_budget else "FAIL",
            ]
        )
    table = format_table(
        ["network", "unprotected FIT", "+SED", "+SED+SLH", "+ECC(buffers)",
         "SED recall", "unprotected vs accel budget",
         f"protected < {accel_budget:g} FIT"],
        rows,
        title=TITLE,
    )
    return (
        table
        + f"\nISO 26262 SoC budget: {result['soc_budget']:g} FIT; accelerator "
        + f"allowance modelled as {100 * ACCEL_AREA_FRACTION:g}% of SoC area = "
        + f"{accel_budget:g} FIT"
    )
