"""Table 5: bit-wise SDC (propagation-to-output) rate per layer.

For AlexNet/FLOAT16, the paper measures the percentage of injected
faults whose corruption is still present in the final fmap, per
injection layer: decreasing with depth (19.38% at layer 1 down to 1.63%
at layer 5), with ~84% of faults masked by POOL/ReLU before the last
layer, and only ~5.5% flipping the final ranking — the DMR-overkill
argument.
"""

from __future__ import annotations

from repro.core.campaign import CampaignSpec
from repro.experiments.common import ExperimentConfig, campaign
from repro.utils.tables import format_table
from repro.zoo.registry import get_network

__all__ = ["run", "render"]

EXPERIMENT_ID = "table5"
TITLE = "Table 5: bit-wise propagation rate per conv layer (AlexNet, FLOAT16)"

NETWORK = "AlexNet"
DTYPE = "FLOAT16"


def run(cfg: ExperimentConfig) -> dict:
    """Returns per-conv-layer propagation rates plus the overall masked
    fraction and SDC-1 rate for the same campaign."""
    network = get_network(NETWORK, cfg.scale)
    conv_blocks = [
        li for li in network.mac_layer_indices() if network.layers[li].kind == "conv"
    ]
    per_layer_trials = max(30, cfg.trials // len(conv_blocks))
    rows = {}
    total_masked = 0.0
    total_sdc = 0.0
    for li in conv_blocks:
        block = network.layers[li].block
        spec = CampaignSpec(
            network=NETWORK,
            dtype=DTYPE,
            target="datapath",
            n_trials=per_layer_trials,
            scale=cfg.scale,
            seed=cfg.seed + 5000 + li,
            layer_index=li,
            record_propagation=True,
        )
        result = campaign(spec, cfg=cfg)
        prop = result.propagation_rate()
        rows[block] = (prop.p, prop.ci95_halfwidth, prop.n)
        total_masked += 1.0 - prop.p
        total_sdc += result.sdc_rate("sdc1").p
    n = len(conv_blocks)
    return {
        "config": cfg,
        "propagation": rows,
        "avg_masked": total_masked / n,
        "avg_sdc1": total_sdc / n,
    }


def render(result: dict) -> str:
    rows = [
        [blk, f"{100 * p:.2f}%", f"+/-{100 * ci:.2f}%", n]
        for blk, (p, ci, n) in sorted(result["propagation"].items())
    ]
    table = format_table(["layer", "bit-wise SDC", "ci95", "trials"], rows, title=TITLE)
    return (
        table
        + f"\naverage masked before last layer: {100 * result['avg_masked']:.2f}%"
        + f"\naverage SDC-1 (final ranking flipped): {100 * result['avg_sdc1']:.2f}%"
    )
