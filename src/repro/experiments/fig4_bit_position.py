"""Figure 4: SDC probability per flipped bit position.

Reproduces the four panels: NiN with FLOAT (4a) and FLOAT16 (4b),
CaffeNet with 32b_rb26 (4c) and 32b_rb10 (4d).  Expected shape: only
high-order exponent bits (FP) / integer bits (FxP) have non-zero SDC
probability; the narrower the dynamic range (FLOAT16 vs FLOAT, rb26 vs
rb10) the lower the per-bit sensitivity.
"""

from __future__ import annotations

from repro.core.campaign import CampaignSpec
from repro.dtypes.registry import get_dtype
from repro.experiments.common import ExperimentConfig, campaign
from repro.utils.ascii_plot import bar_chart
from repro.utils.tables import format_table

__all__ = ["run", "render", "per_bit_rates", "PANELS"]

EXPERIMENT_ID = "fig4"
TITLE = "Figure 4: SDC probability by bit position"

#: (panel, network, dtype) triplets as in the paper.
PANELS = (
    ("4a", "NiN", "FLOAT"),
    ("4b", "NiN", "FLOAT16"),
    ("4c", "CaffeNet", "32b_rb26"),
    ("4d", "CaffeNet", "32b_rb10"),
)


def per_bit_rates(
    network: str,
    dtype_name: str,
    cfg: ExperimentConfig,
    trials_per_bit: int | None = None,
) -> dict[int, tuple[float, float, int]]:
    """SDC-1 probability per bit position for one (network, dtype).

    Runs one pinned-bit campaign per bit position so every bit gets equal
    sampling (the paper injects a fixed count per latch bit).
    """
    dtype = get_dtype(dtype_name)
    per_bit = trials_per_bit if trials_per_bit is not None else max(10, cfg.trials // dtype.width)
    rates: dict[int, tuple[float, float, int]] = {}
    for bit in range(dtype.width):
        spec = CampaignSpec(
            network=network,
            dtype=dtype_name,
            target="datapath",
            n_trials=per_bit,
            scale=cfg.scale,
            seed=cfg.seed + bit,
            bit=bit,
        )
        r = campaign(spec, cfg=cfg).sdc_rate("sdc1")
        rates[bit] = (r.p, r.ci95_halfwidth, r.n)
    return rates


def run(cfg: ExperimentConfig) -> dict:
    """Returns ``{panel: {"network", "dtype", "rates": {bit: (p, ci, n)}}}``."""
    out: dict = {"config": cfg, "panels": {}}
    for panel, network, dtype_name in PANELS:
        out["panels"][panel] = {
            "network": network,
            "dtype": dtype_name,
            "rates": per_bit_rates(network, dtype_name, cfg),
        }
    return out


def render(result: dict) -> str:
    sections = []
    for panel, data in result["panels"].items():
        dtype = get_dtype(data["dtype"])
        rows = []
        for bit, (p, ci, _n) in sorted(data["rates"].items()):
            # p is successes/n with integer successes: exactly 0.0 iff no
            # SDC was observed for this bit, so the comparison is safe.
            if p == 0.0:  # repro: noqa[RP201]
                continue  # the paper omits zero-probability bits
            rows.append([bit, dtype.field_of(bit), f"{100 * p:.2f}%", f"+/-{100 * ci:.2f}%"])
        if not rows:
            rows = [["-", "-", "all zero", "-"]]
        sections.append(
            format_table(
                ["bit", "field", "SDC-1", "ci95"],
                rows,
                title=f"{TITLE} [{panel}] {data['network']} / {data['dtype']}",
            )
        )
        bits = sorted(data["rates"])
        sections.append(
            bar_chart(
                bits,
                [data["rates"][b][0] for b in bits],
                title=f"per-bit SDC-1 profile ({data['dtype']}, lsb -> msb)",
            )
        )
    return "\n\n".join(sections)
