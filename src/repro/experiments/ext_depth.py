"""Extension: does depth buy resilience?  (section 5.1.1's explanation)

The paper attributes ConvNet's outsized SDC probability to its shallow
stack ("the structure of ConvNet is much less deep ... consequently
there is higher error propagation").  This study puts that explanation
on an axis: four networks spanning 5 to 16 MAC layers (adding VGG-16,
which the paper cites as a benchmark but never evaluates), same fault
model, same data type.

The result nuances the paper's story: masking does not grow with raw
MAC-layer depth.  What matters is (a) the density of POOL stages per
MAC layer (each pool discards ~3/4 of candidate deviations) and (b) the
headroom between the network's natural value range and the format's
rails — NiN/VGG run within ~3x of 32b_rb10's maximum, so a saturated
corrupted value is not even clearly anomalous.  The experiment reports
both confounds alongside the depth axis.
"""

from __future__ import annotations

from repro.core.campaign import CampaignSpec
from repro.experiments.common import ExperimentConfig, campaign
from repro.utils.tables import format_table
from repro.zoo.registry import get_network

__all__ = ["run", "render", "DEPTH_NETWORKS"]

EXPERIMENT_ID = "depth"
TITLE = "Extension: network depth vs error masking (32b_rb10 datapath faults)"

#: Shallow to deep.
DEPTH_NETWORKS = ("ConvNet", "AlexNet", "NiN", "VGG16")
DTYPE = "32b_rb10"  # the most propagation-prone format: depth has work to do


def run(cfg: ExperimentConfig) -> dict:
    from repro.dtypes.registry import get_dtype
    from repro.nn.profiling import profile_ranges
    from repro.zoo.registry import eval_inputs

    dtype = get_dtype(DTYPE)
    out: dict = {"config": cfg, "networks": {}}
    for name in DEPTH_NETWORKS:
        net = get_network(name, cfg.scale)
        spec = CampaignSpec(
            network=name, dtype=DTYPE, n_trials=cfg.trials,
            scale=cfg.scale, seed=cfg.seed + 50, record_propagation=True,
        )
        result = campaign(spec, cfg=cfg)
        sdc = result.sdc_rate("sdc1")
        prop = result.propagation_rate()
        pools = sum(1 for l in net.layers if l.kind == "pool")
        profile = profile_ranges(net, eval_inputs(name, 2, cfg.scale), scope="all")
        peak = max(max(abs(r.lo), abs(r.hi)) for r in profile.ranges.values())
        out["networks"][name] = {
            "depth": net.n_blocks,
            "pools_per_layer": pools / net.n_blocks,
            "range_headroom": dtype.max_value / peak,
            "sdc1": (sdc.p, sdc.ci95_halfwidth),
            "masked": result.masked_fraction,
            "propagation": (prop.p, prop.ci95_halfwidth),
        }
    return out


def render(result: dict) -> str:
    rows = []
    for name, d in result["networks"].items():
        rows.append([
            name,
            d["depth"],
            f"{d['pools_per_layer']:.2f}",
            f"{d['range_headroom']:.0f}x",
            f"{100 * d['sdc1'][0]:.2f}% (+/-{100 * d['sdc1'][1]:.2f})",
            f"{100 * d['masked']:.1f}%",
            f"{100 * d['propagation'][0]:.1f}%",
        ])
    table = format_table(
        ["network", "MAC layers", "pools/layer", "range headroom",
         "SDC-1", "masked", "reaches output"],
        rows,
        title=TITLE,
    )
    return table + (
        "\ndepth alone does not predict masking: ConvNet's dense pooling"
        "\n(0.60 pools/MAC layer) masks more than VGG16's sparse pooling"
        "\n(0.31), and NiN/VGG16's small range headroom makes saturated"
        "\ncorrupted values look almost normal — the format's redundant"
        "\nrange (section 6.1) is the stronger lever."
    )
