"""Table 8: SDC probability and FIT rate per Eyeriss buffer component.

Buffer faults are injected per component using the 16b_rb10 data type
(Eyeriss's native format).  Expected shape: the deeper ImageNet networks
are far more immune than ConvNet; Global Buffer and Filter SRAM dominate
the FIT budget (large and heavily reused) while Img REG and PSum REG
stay near zero (small, short residency); buffer FIT exceeds datapath FIT
by orders of magnitude.
"""

from __future__ import annotations

from repro.accel.eyeriss import EYERISS_16NM
from repro.core.campaign import CampaignSpec
from repro.core.fit import buffer_fit
from repro.experiments.common import PAPER_NETWORKS, ExperimentConfig, campaign
from repro.utils.tables import format_table

__all__ = ["run", "render", "COMPONENT_SCOPES"]

EXPERIMENT_ID = "table8"
TITLE = "Table 8: SDC probability / FIT per Eyeriss buffer (16b_rb10)"

DTYPE = "16b_rb10"

#: Buffer component -> injection scope mapping (see repro.accel.buffers).
COMPONENT_SCOPES = {
    "Global Buffer": "next_layer",
    "Filter SRAM": "layer_weight",
    "Img REG": "row_activation",
    "PSum REG": "single_read",
}


def run(cfg: ExperimentConfig) -> dict:
    """Returns ``{network: {component: (sdc_p, ci, fit)}}``."""
    out: dict = {"config": cfg, "buffers": {}}
    for network in PAPER_NETWORKS:
        per_component: dict = {}
        for component, scope in COMPONENT_SCOPES.items():
            spec = CampaignSpec(
                network=network,
                dtype=DTYPE,
                target=scope,
                n_trials=cfg.trials,
                scale=cfg.scale,
                seed=cfg.seed + 300,
            )
            result = campaign(spec, cfg=cfg)
            rate = result.sdc_rate("sdc1")
            fit = buffer_fit(EYERISS_16NM.buffer_named(component), rate.p).fit
            per_component[component] = (rate.p, rate.ci95_halfwidth, fit)
        out["buffers"][network] = per_component
    return out


def render(result: dict) -> str:
    rows = []
    for network, per_component in result["buffers"].items():
        for component, (p, ci, fit) in per_component.items():
            rows.append(
                [network, component, f"{100 * p:.2f}% (+/-{100 * ci:.2f})", f"{fit:.4g}"]
            )
    return format_table(["network", "component", "SDC prob", "FIT"], rows, title=TITLE)
