"""Lint engine: walk files, parse, run rules, apply suppressions.

The engine parses each ``.py`` file once into an :class:`ast.Module`,
hands the shared :class:`FileContext` to every applicable per-file rule,
then runs the cross-file :class:`~repro.analysis.registry.ProjectRule`
passes over the whole tree.  Findings on lines carrying a matching
``# repro: noqa[RPnnn]`` (or a blanket ``# repro: noqa``) are dropped.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import LintConfig, path_matches
from repro.analysis.findings import PARSE_ERROR_ID, Finding
from repro.analysis.registry import ProjectRule, all_rules, expand_ids, known_ids

__all__ = ["FileContext", "ProjectContext", "lint_paths", "iter_python_files"]

#: Inline suppression: ``# repro: noqa`` or ``# repro: noqa[RP101, RP2]``.
_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<ids>[^\]]*)\])?", re.IGNORECASE)


@dataclass
class FileContext:
    """One parsed source file, shared by every rule that inspects it."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            display_path=display_path or str(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def in_scope(self, fragments: Sequence[str]) -> bool:
        """True when this file lies under any of the path ``fragments``."""
        return any(path_matches(self.path, frag) for frag in fragments)

    def suppressed_ids(self, line: int) -> frozenset[str] | None:
        """Suppression on ``line``: None = none, empty set = blanket noqa."""
        if not 1 <= line <= len(self.lines):
            return None
        match = _NOQA.search(self.lines[line - 1])
        if match is None:
            return None
        ids = match.group("ids")
        if ids is None:
            return frozenset()
        return frozenset(token.strip().upper() for token in ids.split(",") if token.strip())


@dataclass
class ProjectContext:
    """All linted files at once, for cross-file consistency rules.

    ``cache`` is scratch storage scoped to one lint run: the flow rules
    use it to share the call graph and dataflow results instead of
    recomputing them per rule.  Keys are namespaced by rule family.
    """

    files: list[FileContext]
    config: LintConfig
    cache: dict = field(default_factory=dict)

    def find(self, fragment: str) -> list[FileContext]:
        """Files whose path contains the posix ``fragment``."""
        return [ctx for ctx in self.files if path_matches(ctx.path, fragment)]


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                seen.setdefault(sub, None)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return sorted(seen)


def _active_ids(config: LintConfig) -> set[str]:
    active = expand_ids(config.select) if config.select else set(known_ids())
    if config.ignore:
        active -= expand_ids(config.ignore)
    return active


#: noqa tokens that act as family prefixes: ``RP6`` / ``RP60`` (optionally
#: written ``RP6xx``) suppress every rule id they prefix; full three-digit
#: ids keep exact-match semantics.
_FAMILY_TOKEN = re.compile(r"^RP\d{1,2}$")


def _token_matches(token: str, rule_id: str) -> bool:
    token = token.rstrip("X")
    if _FAMILY_TOKEN.match(token):
        return rule_id.startswith(token)
    return rule_id == token


def _suppressed(ctx: FileContext, finding: Finding) -> bool:
    ids = ctx.suppressed_ids(finding.line)
    if ids is None:
        return False
    return not ids or any(_token_matches(token, finding.rule_id) for token in ids)


def lint_paths(
    paths: Iterable[Path | str],
    config: LintConfig | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Lint files/directories and return sorted surviving findings.

    Args:
        paths: Files or directories to lint (directories recurse).
        config: Resolved configuration; library defaults when None.
        root: When given, report paths relative to it where possible.

    Unparseable files yield a single ``RP000`` finding rather than
    aborting the run, so one syntax error cannot hide other results.
    """
    config = config or LintConfig()
    rules = [rule for rule in all_rules() if rule.id in _active_ids(config)]
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        if any(path_matches(path, frag) for frag in config.exclude):
            continue
        display = str(path)
        if root is not None:
            try:
                display = str(path.resolve().relative_to(root.resolve()))
            except ValueError:
                pass
        try:
            ctx = FileContext.parse(path, display_path=display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            findings.append(
                Finding(
                    file=display,
                    line=line,
                    col=(getattr(exc, "offset", 1) or 1),
                    rule_id=PARSE_ERROR_ID,
                    message=f"file could not be parsed: {exc.msg if hasattr(exc, 'msg') else exc}",
                )
            )
            continue
        contexts.append(ctx)
        for rule in file_rules:
            if rule.scope_key is not None and not ctx.in_scope(config.scope(rule.scope_key)):
                continue
            if rule.exempt_key is not None and ctx.in_scope(config.scope(rule.exempt_key)):
                continue
            findings.extend(f for f in rule.check(ctx) if not _suppressed(ctx, f))

    project = ProjectContext(files=contexts, config=config)
    by_display = {ctx.display_path: ctx for ctx in contexts}
    for rule in project_rules:
        for finding in rule.check_project(project):
            ctx = by_display.get(finding.file)
            if ctx is not None and _suppressed(ctx, finding):
                continue
            findings.append(finding)
    return sorted(findings)
