"""Rule registry: stable ``RPnnn`` ids mapped to rule singletons.

Rules self-register at import time via the :func:`register` decorator;
importing :mod:`repro.analysis.rules` populates the registry.  Ids are
grouped by family:

- ``RP1xx`` determinism
- ``RP2xx`` dtype safety
- ``RP3xx`` atomic-write hygiene
- ``RP4xx`` registry consistency
- ``RP5xx`` API hygiene
- ``RP6xx`` flow-aware analysis (dataflow/taint over CFG + call graph)
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.engine import FileContext, ProjectContext
    from repro.analysis.findings import Finding

__all__ = ["Rule", "ProjectRule", "register", "all_rules", "get_rule", "known_ids", "expand_ids"]

_RULE_ID = re.compile(r"^RP[1-6]\d\d$")

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """Base class for per-file AST rules.

    Class attributes:
        id: Stable ``RPnnn`` identifier.
        name: Short kebab-case rule name.
        summary: One-line description (shown by ``--list-rules``).
        scope_key: Optional :class:`~repro.analysis.config.LintConfig`
            attribute naming the path prefixes the rule is confined to;
            None applies the rule to every linted file.
        exempt_key: Optional :class:`~repro.analysis.config.LintConfig`
            attribute naming path prefixes the rule *skips* even inside
            its scope (e.g. RP105 exempts CLI/reporter modules whose job
            is to print).  Applied after ``scope_key``.
    """

    id: str = ""
    name: str = ""
    summary: str = ""
    scope_key: str | None = None
    exempt_key: str | None = None

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node, message: str, trace=()) -> "Finding":
        """Build a finding anchored at an AST node (1-based column)."""
        from repro.analysis.findings import Finding

        return Finding(
            file=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
            trace=tuple(trace),
        )

    def explain(self) -> str:
        """Long-form rule documentation for ``repro-lint --explain``.

        The default renders the rule header plus its class docstring;
        flow rules override this to also list their sources/sinks and an
        example source->sink trace.
        """
        import inspect
        import textwrap

        doc = inspect.getdoc(type(self)) or ""
        header = f"{self.id} {self.name}\n  {self.summary}"
        if self.scope_key is not None:
            header += f"\n  scope: {self.scope_key} (configurable in [tool.repro-lint])"
        return header + ("\n\n" + textwrap.dedent(doc) if doc else "")


class ProjectRule(Rule):
    """Base class for cross-file rules (run once over the whole tree)."""

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:  # pragma: no cover
        return iter(())

    def check_project(self, ctx: "ProjectContext") -> Iterator["Finding"]:
        """Yield findings computed over all linted files at once."""
        raise NotImplementedError


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    if not _RULE_ID.match(cls.id):
        raise ValueError(f"rule id {cls.id!r} does not match RP[1-6]xx")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id (imports rule modules)."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id."""
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}") from None


def known_ids() -> frozenset[str]:
    """The set of registered rule ids."""
    _ensure_loaded()
    return frozenset(_REGISTRY)


def expand_ids(selectors: Iterable[str]) -> set[str]:
    """Expand id selectors (exact ``RP101`` or family prefix ``RP1``/``RP3xx``)."""
    _ensure_loaded()
    out: set[str] = set()
    for sel in selectors:
        sel = sel.strip().upper().replace("X", "")
        if not sel:
            continue
        matched = {rid for rid in _REGISTRY if rid == sel or rid.startswith(sel)}
        if not matched:
            raise KeyError(f"selector {sel!r} matches no registered rule")
        out |= matched
    return out


def _ensure_loaded() -> None:
    # Importing the rules package triggers the register() decorators.
    import repro.analysis.rules  # noqa: F401
