"""Lint configuration: ``[tool.repro-lint]`` in ``pyproject.toml``.

Recognised keys (all optional)::

    [tool.repro-lint]
    exclude = ["tests/fixtures"]          # path fragments to skip
    select = ["RP1", "RP301"]             # restrict to these ids/families
    ignore = ["RP503"]                    # drop these ids/families
    campaign-paths = ["repro/core", "repro/experiments"]
    dtype-paths = ["repro/dtypes", "repro/nn"]
    kernel-paths = ["repro/dtypes/fixedpoint.py"]
    library-paths = ["repro"]
    print-exempt-paths = ["repro/core/cli.py", "repro/obs/cli.py"]

The ``*-paths`` keys scope the path-sensitive rule families: wall-clock
reads (RP103) are only an error inside campaign paths, missing
``dtype=`` (RP202) inside numeric packages, bare-float arithmetic (RP203)
inside fixed-point kernels, and bare ``print()`` (RP105) inside library
paths *except* the print-exempt CLI/reporter modules.  Path values match
as posix fragments against each linted file's path, so ``repro/core``
matches any layout that nests the package (``src/repro/core/...``).

The flow-aware RP6xx family adds name-list keys: ``fork-entry-points``
(functions that run inside pool workers, the RP621 reachability roots),
``taint-sinks`` (call/keyword name fragments treated as nondeterminism
sinks by RP601) and ``dtype-sinks`` (fixed-point consumer names for
RP611/RP612).  ``float-eq-exempt-paths`` and ``script-paths`` carve the
test/benchmark suites and example scripts out of RP201 and RP501, where
exact comparison and script-style modules are deliberate.
``obs-writer-exempt-paths`` names the sanctioned atomic snapshot writers
(checkpoint, manifest, tracer) that RP108 exempts from its ban on direct
append-mode JSON writes in campaign paths.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

__all__ = ["LintConfig", "load_config", "find_pyproject", "path_matches"]

if sys.version_info >= (3, 11):
    import tomllib
else:  # pragma: no cover - exercised only on 3.10
    try:
        import tomli as tomllib
    except ModuleNotFoundError:
        tomllib = None


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (defaults match this repository)."""

    exclude: tuple[str, ...] = ()
    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    campaign_paths: tuple[str, ...] = (
        "repro/core", "repro/experiments", "repro/utils/parallel.py",
    )
    dtype_paths: tuple[str, ...] = ("repro/dtypes", "repro/nn")
    kernel_paths: tuple[str, ...] = ("repro/dtypes/fixedpoint.py",)
    library_paths: tuple[str, ...] = ("repro",)
    print_exempt_paths: tuple[str, ...] = (
        "repro/core/cli.py",
        "repro/experiments/runner.py",
        "repro/analysis/cli.py",
        "repro/obs/cli.py",
        "repro/obs/progress.py",
        "repro/gate/cli.py",
    )
    #: The sanctioned atomic JSONL/JSON writers (RP108): campaign-path
    #: code appending JSON records directly can tear on SIGKILL and
    #: break the byte-identity contract; these modules *are* the
    #: snapshot writers and are exempt from their own rule.
    obs_writer_exempt_paths: tuple[str, ...] = (
        "repro/core/checkpoint.py",
        "repro/obs/manifest.py",
        "repro/obs/tracer.py",
    )
    #: Paths where exact float ==/!= is the *point* (bit-exactness
    #: assertions in the test/benchmark suites) — RP201 skips them.
    float_eq_exempt_paths: tuple[str, ...] = ("tests", "benchmarks")
    #: Script trees (examples, one-off tools) exempt from the __all__
    #: contract (RP501): they are entry points, not importable API.
    script_paths: tuple[str, ...] = ("examples",)
    #: Function names that execute inside supervised-pool worker
    #: processes; RP621 flags module-state writes reachable from them.
    fork_entry_points: tuple[str, ...] = ("_init_worker", "_run_chunk")
    #: Name fragments that make a call / keyword a nondeterminism sink
    #: for RP601 (seeds, fingerprints, RNG constructors).
    taint_sinks: tuple[str, ...] = (
        "fingerprint",
        "seed",
        "entropy",
        "child_rng",
        "make_rng",
        "spawn_rngs",
    )
    #: Method/function names that consume fixed-point *bit patterns*
    #: (integer input); a float64-tainted array reaching one is an
    #: RP611/RP612 sink.  Deliberately only the int-input side of the
    #: codec: ``quantize``/``encode``/``to_int`` and the MAC helpers take
    #: arbitrary floats by design — rounding them into the format is
    #: their whole job.
    dtype_sinks: tuple[str, ...] = (
        "decode",
        "from_int",
    )
    config_file: str | None = field(default=None, compare=False)

    def scope(self, key: str) -> tuple[str, ...]:
        """Path fragments for a rule's ``scope_key``."""
        return getattr(self, key)


def path_matches(path: Path | str, fragment: str) -> bool:
    """True when ``fragment`` occurs as a posix path fragment of ``path``.

    ``repro/core`` matches ``src/repro/core/campaign.py`` but not
    ``src/repro/core_utils.py``; a fragment naming a file matches that
    file anywhere in the tree.
    """
    posix = Path(path).as_posix().strip("/")
    frag = fragment.strip("/")
    return f"/{posix}/".find(f"/{frag}/") >= 0 or posix.endswith(f"/{frag}") or posix == frag


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Path | None) -> LintConfig:
    """Parse ``[tool.repro-lint]`` out of ``pyproject``; defaults if absent."""
    cfg = LintConfig()
    if pyproject is None or tomllib is None:
        return cfg
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise TypeError("[tool.repro-lint] must be a table")
    known = {f.name.replace("_", "-"): f.name for f in fields(LintConfig) if f.name != "config_file"}
    updates: dict[str, tuple[str, ...]] = {}
    for key, value in table.items():
        attr = known.get(key)
        if attr is None:
            raise KeyError(f"unknown [tool.repro-lint] key {key!r}; known: {sorted(known)}")
        if not (isinstance(value, list) and all(isinstance(v, str) for v in value)):
            raise TypeError(f"[tool.repro-lint] {key} must be a list of strings")
        updates[attr] = tuple(value)
    return replace(cfg, config_file=str(pyproject), **updates)
