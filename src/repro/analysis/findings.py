"""Finding record emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "PARSE_ERROR_ID"]

#: Pseudo-rule id for files the engine cannot parse.
PARSE_ERROR_ID = "RP000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        file: Path of the offending file, as given to the engine.
        line: 1-based line number.
        col: 1-based column number.
        rule_id: Stable rule identifier (``RPnnn``).
        message: Human-readable explanation.
    """

    file: str
    line: int
    col: int
    rule_id: str
    message: str

    def to_dict(self) -> dict:
        """JSON-ready representation (``rule-id`` aliased for tooling)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "rule-id": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line text rendering (``path:line:col: RPnnn message``)."""
        return f"{self.file}:{self.line}:{self.col}: {self.rule_id} {self.message}"
