"""Finding record emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "TraceHop", "PARSE_ERROR_ID"]

#: Pseudo-rule id for files the engine cannot parse.
PARSE_ERROR_ID = "RP000"


@dataclass(frozen=True, order=True)
class TraceHop:
    """One step of a flow-rule source->sink trace.

    Attributes:
        file: Path of the file the hop occurs in (hops may cross files).
        line: 1-based line number.
        col: 1-based column number.
        note: What happened at this hop ("source: time.time()",
            "'stamp' assigned from tainted value", ...).
    """

    file: str
    line: int
    col: int
    note: str

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {"file": self.file, "line": self.line, "col": self.col, "note": self.note}

    def render(self) -> str:
        """One-line text rendering (``path:line:col note``)."""
        return f"{self.file}:{self.line}:{self.col} {self.note}"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        file: Path of the offending file, as given to the engine.
        line: 1-based line number.
        col: 1-based column number.
        rule_id: Stable rule identifier (``RPnnn``).
        message: Human-readable explanation.
        trace: For flow rules (RP6xx), the machine-readable source->sink
            path, one :class:`TraceHop` per step.  Empty for syntactic
            rules.  Excluded from ordering/equality so the trace cannot
            perturb report sorting or de-duplication.
    """

    file: str
    line: int
    col: int
    rule_id: str
    message: str
    trace: tuple[TraceHop, ...] = field(default=(), compare=False)

    def to_dict(self) -> dict:
        """JSON-ready representation (``rule-id`` aliased for tooling)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "rule-id": self.rule_id,
            "message": self.message,
            "trace": [hop.to_dict() for hop in self.trace],
        }

    def render(self) -> str:
        """One-line text rendering (``path:line:col: RPnnn message``)."""
        return f"{self.file}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def render_trace(self, indent: str = "    ") -> str:
        """Multi-line trace rendering; empty string when there is no trace."""
        if not self.trace:
            return ""
        width = len("flow: ")
        lines = [f"{indent}flow: {self.trace[0].render()}"]
        lines += [f"{indent}{' ' * width}{hop.render()}" for hop in self.trace[1:]]
        return "\n".join(lines)
