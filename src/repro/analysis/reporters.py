"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.findings import Finding

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: RPnnn message`` per finding, plus a tally line.

    Flow findings (RP6xx) additionally render their source->sink trace
    indented under the finding line, one hop per line.
    """
    lines = []
    for f in findings:
        lines.append(f.render())
        trace = f.render_trace()
        if trace:
            lines.append(trace)
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document: ``{"version", "count", "findings": [...]}``."""
    doc = {
        "version": 1,
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


#: Reporter name -> renderer (the CLI's ``--format`` choices).
REPORTERS = {"text": render_text, "json": render_json}
