"""Worklist dataflow framework over :mod:`repro.analysis.cfg` graphs.

A deliberately small forward-analysis engine: abstract states are
``dict[str, V]`` environments (missing key = bottom), lattices plug in
as a ``join`` on values, and transfer functions are applied statement by
statement inside each basic block.  The solver iterates a worklist in
reverse postorder until the fixpoint, with a hard iteration guard so a
pathological lattice can degrade the analysis, never hang the linter.

Termination: clients must keep their value domain finite (the RP6xx
taint values cap trace length and origin counts) and ``join`` must be
deterministic; under those conditions the guard never triggers in
practice and exists purely as a backstop.
"""

from __future__ import annotations

import ast
from typing import Callable, Generic, Mapping, TypeVar

from repro.analysis.cfg import CFG

__all__ = ["Env", "join_envs", "solve_forward"]

V = TypeVar("V")

#: Abstract environment: variable name -> lattice value (absent = bottom).
Env = Mapping[str, V]


def join_envs(a: Env[V], b: Env[V], join: Callable[[V, V], V]) -> dict[str, V]:
    """Pointwise join of two environments (absent keys join as identity)."""
    out: dict[str, V] = dict(a)
    for name, value in b.items():
        if name in out:
            out[name] = join(out[name], value)
        else:
            out[name] = value
    return out


class _Guard(Generic[V]):
    """Iteration backstop; see the module docstring."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def tick(self) -> bool:
        self.spent += 1
        return self.spent <= self.limit


def solve_forward(
    cfg: CFG,
    transfer: Callable[[ast.AST, dict[str, V]], dict[str, V]],
    join: Callable[[V, V], V],
    entry_env: Env[V] | None = None,
) -> dict[int, dict[str, V]]:
    """Iterate ``transfer`` over ``cfg`` to a fixpoint.

    Args:
        cfg: Graph from :func:`repro.analysis.cfg.build_cfg`.
        transfer: ``(statement, env) -> env``; must not mutate its input.
        join: Value-level join for merging predecessor states.
        entry_env: State entering block 0 (e.g. parameter taints).

    Returns:
        Block index -> environment at block **entry** (the fixpoint IN
        states).  Callers re-run ``transfer`` through a block to observe
        per-statement states, so facts are checked against the stable
        solution rather than a mid-iteration snapshot.
    """
    order = cfg.rpo()
    position = {index: pos for pos, index in enumerate(order)}
    in_env: dict[int, dict[str, V]] = {cfg.entry: dict(entry_env or {})}
    out_env: dict[int, dict[str, V]] = {}
    guard: _Guard[V] = _Guard(limit=16 * max(1, len(cfg.blocks)) + 64)

    pending = set(order)
    while pending and guard.tick():
        index = min(pending, key=lambda i: position.get(i, len(order)))
        pending.discard(index)
        block = cfg.blocks[index]

        env = dict(in_env.get(index, {}))
        merged = env
        for pred in sorted(block.predecessors):
            if pred in out_env:
                merged = join_envs(merged, out_env[pred], join)
        in_env[index] = dict(merged)

        for stmt in block.statements:
            merged = transfer(stmt, dict(merged))
        if out_env.get(index) != merged:
            out_env[index] = merged
            for succ in sorted(block.successors):
                pending.add(succ)
    return in_env
