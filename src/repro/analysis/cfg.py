"""Intraprocedural control-flow graphs over the Python AST.

The flow-aware RP6xx rules need more than per-node pattern matching:
a ``time.time()`` read three assignments away from the seed it poisons
is invisible to :func:`ast.walk`.  This module turns one function body
(or a module's top level) into a statement-level CFG that the worklist
solver in :mod:`repro.analysis.dataflow` iterates to a fixpoint.

Design notes:

- Blocks hold whole ``ast.stmt`` nodes.  Compound statements (``if``,
  ``while``, ``for``, ``try``, ``match``) appear in their *head* block so
  transfer functions can inspect the test/iter expression (walrus
  bindings, loop targets) — their bodies live in successor blocks and
  must not be descended into by transfers.
- ``try`` is approximated conservatively: every block created while
  visiting the try body gets an edge to every handler head, since any
  statement may raise.
- Nested ``def``/``class`` statements are atomic: the body of a nested
  function does not execute at its definition site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["BasicBlock", "CFG", "build_cfg"]


@dataclass
class BasicBlock:
    """A straight-line run of statements with explicit CFG edges.

    ``statements`` is typed :class:`ast.AST` rather than :class:`ast.stmt`
    because ``except`` clauses (:class:`ast.ExceptHandler`, which carry
    the ``as e`` binding) ride along as pseudo-statements.
    """

    index: int
    statements: list[ast.AST] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)
    predecessors: set[int] = field(default_factory=set)


@dataclass
class CFG:
    """Control-flow graph for one function body (entry is block 0)."""

    blocks: list[BasicBlock]
    entry: int = 0

    def rpo(self) -> list[int]:
        """Reverse-postorder block indices from the entry (loop-friendly)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(index: int) -> None:
            # Iterative DFS: deep nesting must not hit the recursion limit.
            stack: list[tuple[int, list[int]]] = [(index, sorted(self.blocks[index].successors))]
            seen.add(index)
            while stack:
                node, todo = stack[-1]
                while todo:
                    nxt = todo.pop(0)
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, sorted(self.blocks[nxt].successors)))
                        break
                else:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        return order[::-1]


class _Builder:
    """One-pass recursive CFG construction with a loop/exception stack."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.current = self._new_block()
        #: (continue-target block index, list of break-source block indices)
        self.loops: list[tuple[int, list[int]]] = []
        #: While inside a try body: handler head indices to wire raises to.
        self.handler_heads: list[list[int]] = []
        self.terminated = False

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)
        self.blocks[dst].predecessors.add(src)

    def _start_block(self, *preds: int) -> BasicBlock:
        block = self._new_block()
        for pred in preds:
            self._edge(pred, block.index)
        self.current = block
        self.terminated = False
        return block

    def _append(self, stmt: ast.AST) -> None:
        if self.terminated:
            # Unreachable code after return/raise/break: park it in a
            # fresh predecessor-less block so transfers still see it.
            self._start_block()
        self.current.statements.append(stmt)
        for heads in self.handler_heads:
            for head in heads:
                self._edge(self.current.index, head)

    # -- statement dispatch -------------------------------------------------

    def visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        handler = getattr(self, f"visit_{type(stmt).__name__}", None)
        if handler is not None:
            handler(stmt)
        else:
            self._append(stmt)
            if isinstance(stmt, (ast.Return, ast.Raise)):
                self.terminated = True

    def visit_If(self, stmt: ast.If) -> None:
        self._append(stmt)
        head = self.current.index
        exits: list[int] = []
        self._start_block(head)
        self.visit_body(stmt.body)
        if not self.terminated:
            exits.append(self.current.index)
        if stmt.orelse:
            self._start_block(head)
            self.visit_body(stmt.orelse)
            if not self.terminated:
                exits.append(self.current.index)
        else:
            exits.append(head)
        self._start_block(*exits)

    def _visit_loop(self, stmt: ast.stmt, body: Sequence[ast.stmt], orelse: Sequence[ast.stmt]) -> None:
        if self.terminated:
            self._start_block()
        before = self.current.index
        self._start_block(before)
        self._append(stmt)
        head_index = self.current.index
        breaks: list[int] = []
        self.loops.append((head_index, breaks))
        self._start_block(head_index)
        self.visit_body(body)
        if not self.terminated:
            self._edge(self.current.index, head_index)
        self.loops.pop()
        exits = [head_index]
        if orelse:
            self._start_block(head_index)
            self.visit_body(orelse)
            if not self.terminated:
                exits = [self.current.index]
            else:
                exits = []
        self._start_block(*(exits + breaks))

    def visit_While(self, stmt: ast.While) -> None:
        self._visit_loop(stmt, stmt.body, stmt.orelse)

    def visit_For(self, stmt: ast.For) -> None:
        self._visit_loop(stmt, stmt.body, stmt.orelse)

    def visit_AsyncFor(self, stmt: ast.AsyncFor) -> None:
        self._visit_loop(stmt, stmt.body, stmt.orelse)

    def visit_Break(self, stmt: ast.Break) -> None:
        self._append(stmt)
        if self.loops:
            self.loops[-1][1].append(self.current.index)
        self.terminated = True

    def visit_Continue(self, stmt: ast.Continue) -> None:
        self._append(stmt)
        if self.loops:
            self._edge(self.current.index, self.loops[-1][0])
        self.terminated = True

    def visit_With(self, stmt: ast.With) -> None:
        # The With node carries the item expressions / `as` bindings;
        # its body runs inline on the same path.
        self._append(stmt)
        self.visit_body(stmt.body)

    def visit_AsyncWith(self, stmt: ast.AsyncWith) -> None:
        self._append(stmt)
        self.visit_body(stmt.body)

    def visit_Try(self, stmt: ast.Try) -> None:
        if self.terminated:
            self._start_block()
        before = self.current.index
        handler_heads: list[int] = []
        handler_blocks: list[BasicBlock] = []
        for _handler in stmt.handlers:
            block = self._new_block()
            self._edge(before, block.index)
            handler_heads.append(block.index)
            handler_blocks.append(block)

        self.handler_heads.append(handler_heads)
        self._start_block(before)
        self.visit_body(stmt.body)
        self.handler_heads.pop()
        exits: list[int] = []
        if not self.terminated:
            if stmt.orelse:
                self.visit_body(stmt.orelse)
            if not self.terminated:
                exits.append(self.current.index)

        for handler, block in zip(stmt.handlers, handler_blocks):
            self.current = block
            self.terminated = False
            self._append(handler)  # carries the `except ... as e` binding
            self.visit_body(handler.body)
            if not self.terminated:
                exits.append(self.current.index)

        self._start_block(*exits)
        if stmt.finalbody:
            self.visit_body(stmt.finalbody)

    def visit_TryStar(self, stmt: ast.stmt) -> None:  # pragma: no cover - 3.11+
        self.visit_Try(stmt)  # type: ignore[arg-type]

    def visit_Match(self, stmt: ast.Match) -> None:
        self._append(stmt)
        head = self.current.index
        exits: list[int] = [head]
        for case in stmt.cases:
            self._start_block(head)
            self.visit_body(case.body)
            if not self.terminated:
                exits.append(self.current.index)
        self._start_block(*exits)


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build the CFG for one function body or module top level."""
    builder = _Builder()
    builder.visit_body(body)
    return CFG(blocks=builder.blocks)
