"""RP5xx — public API hygiene.

Every public module declares an accurate ``__all__``: it is the contract
the docs, the experiment runner and downstream users rely on, and a
stale entry (or an unexported public function) is how half-migrated
refactors linger unnoticed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["HasDunderAll", "DunderAllAccurate", "PublicDefExported"]

#: Module basenames exempt from the __all__ requirement.
_EXEMPT = frozenset({"__main__.py", "conftest.py", "setup.py"})


def _literal_all(tree: ast.Module) -> tuple[ast.AST | None, list[str] | None]:
    """The module's ``__all__`` node and names (None when absent/dynamic)."""
    for node in tree.body:
        targets = node.targets if isinstance(node, ast.Assign) else []
        if any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                isinstance(el, ast.Constant) and isinstance(el.value, str)
                for el in node.value.elts
            ):
                return node, [el.value for el in node.value.elts]
            return node, None
    return None, None


def _toplevel_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module top level; True when a star-import occurs.

    Descends into top-level ``if``/``try`` blocks (conditional imports,
    TYPE_CHECKING guards) but not into function or class bodies.
    """
    bound: set[str] = set()
    has_star = False

    def visit(body: list[ast.stmt]) -> None:
        nonlocal has_star
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(tree.body)
    return bound, has_star


@register
class HasDunderAll(Rule):
    """Flag public modules without a top-level ``__all__``.

    Test modules (``test_*.py``) and the trees listed under
    ``script-paths`` (examples, one-off tools) are exempt: they are entry
    points collected by a runner, not importable API surface.
    """

    id = "RP501"
    name = "missing-dunder-all"
    summary = "public modules must declare __all__"
    exempt_key = "script_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        name = ctx.path.name
        if name in _EXEMPT or (name.startswith("_") and name != "__init__.py"):
            return
        if name.startswith("test_"):
            return
        node, _ = _literal_all(ctx.tree)
        if node is None:
            yield self.finding(
                ctx, ctx.tree, "public module does not declare __all__"
            )


@register
class DunderAllAccurate(Rule):
    """Flag ``__all__`` entries that name nothing in the module."""

    id = "RP502"
    name = "stale-dunder-all"
    summary = "__all__ must only list names actually bound in the module"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        node, names = _literal_all(ctx.tree)
        if node is None or names is None:
            return
        bound, has_star = _toplevel_bindings(ctx.tree)
        if has_star:
            return
        for name in names:
            if name not in bound:
                yield self.finding(
                    ctx, node, f"__all__ lists {name!r} but the module never binds it"
                )


@register
class PublicDefExported(Rule):
    """Flag public top-level defs/classes missing from ``__all__``."""

    id = "RP503"
    name = "unexported-public-def"
    summary = "public top-level functions/classes must appear in __all__"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        node, names = _literal_all(ctx.tree)
        if node is None or names is None:
            return
        exported = set(names)
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if stmt.name.startswith("_") or stmt.name in exported:
                continue
            yield self.finding(
                ctx,
                stmt,
                f"public {'class' if isinstance(stmt, ast.ClassDef) else 'function'} "
                f"{stmt.name!r} is not listed in __all__ (export it or underscore it)",
            )
