"""RP601 — nondeterminism taint flowing into campaign identity.

The syntactic RP1xx rules flag nondeterministic *calls* where they
happen; this rule follows the *values*.  A wall-clock read stashed in a
variable, returned through a helper, and finally mixed into a campaign
fingerprint or RNG seed is invisible to a per-call rule — the call site
looks innocent.  The flow engine tracks the value hop by hop and the
finding carries the full source->sink trace.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import FunctionInfo
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register
from repro.analysis.rules.determinism import _LEGACY_NP_RANDOM, _WALL_CLOCK, _attr_chain, numpy_aliases
from repro.analysis.rules.flow_base import FlowEngine, FlowSpec, Origin, family_findings

__all__ = ["NondeterminismTaint", "TaintSpec"]

#: stdlib ``random`` module functions treated as RNG sources.
_STDLIB_RANDOM = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "sample",
        "shuffle", "uniform", "gauss", "normalvariate", "getrandbits",
        "betavariate", "expovariate", "random_sample",
    }
)

#: Filesystem-enumeration calls whose *order* is nondeterministic.
_FS_ORDER_METHODS = frozenset({"iterdir", "rglob"})

#: Keyword names that make any call a seed sink.
_SEED_KEYWORDS = ("seed", "entropy")

#: What each origin kind means, for messages and ``--explain``.
KIND_NOTES = {
    "clock": "a wall-clock read",
    "rng": "an unseeded / global-state RNG value",
    "env": "an environment variable",
    "order": "filesystem enumeration order",
}


class TaintSpec(FlowSpec):
    """Nondeterminism sources -> campaign-identity sinks."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self._aliases: dict[int, set[str]] = {}

    def _numpy(self, ctx: FileContext) -> set[str]:
        key = id(ctx)
        if key not in self._aliases:
            self._aliases[key] = numpy_aliases(ctx.tree) | {"numpy"}
        return self._aliases[key]

    def source(self, node: ast.expr, ctx: FileContext) -> tuple[str, str] | None:
        if isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            if chain[-2:] == ["os", "environ"]:
                return ("env", "os.environ")
            return None
        if not isinstance(node, ast.Call):
            return None
        chain = _attr_chain(node.func)
        if not chain:
            return None
        dotted = ".".join(chain)
        if len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK:
            return ("clock", f"{dotted}()")
        if (
            len(chain) == 3
            and chain[0] in self._numpy(ctx)
            and chain[1] == "random"
            and chain[2] in _LEGACY_NP_RANDOM
        ):
            return ("rng", f"{dotted}()")
        if len(chain) == 2 and chain[0] == "random" and chain[1] in _STDLIB_RANDOM:
            return ("rng", f"{dotted}()")
        if chain == ["os", "urandom"]:
            return ("rng", "os.urandom()")
        if chain[0] == "uuid" and chain[-1] in ("uuid1", "uuid4"):
            return ("rng", f"{dotted}()")
        if chain[0] == "secrets":
            return ("rng", f"{dotted}()")
        if len(chain) == 2 and chain[0] in ("os",) and chain[1] in ("listdir", "scandir"):
            return ("order", f"{dotted}()")
        if chain[0] == "glob" and chain[-1] in ("glob", "iglob"):
            return ("order", f"{dotted}()")
        if len(chain) >= 2 and chain[-1] in _FS_ORDER_METHODS:
            return ("order", f"{dotted}()")
        if len(chain) >= 2 and chain[-1] == "glob" and chain[0] != "glob":
            # Path-like receiver: p.glob(...) enumerates in OS order.
            return ("order", f"{dotted}()")
        return None

    def sanitized_kinds(self, call: ast.Call, ctx: FileContext) -> frozenset[str]:
        # sorted()/len()/min()/max() make enumeration order irrelevant;
        # nothing launders a clock, RNG or env read.
        if isinstance(call.func, ast.Name) and call.func.id in ("sorted", "len", "min", "max"):
            return frozenset({"order"})
        return frozenset()

    def sinks(
        self, call: ast.Call, callee: FunctionInfo | None, ctx: FileContext, engine: FlowEngine
    ) -> list[tuple[ast.expr, str]]:
        out: list[tuple[ast.expr, str]] = []
        chain = _attr_chain(call.func)
        name = chain[-1] if chain else ""
        lowered = name.lower()
        if any(frag in lowered for frag in self.config.taint_sinks):
            for arg in call.args:
                if not isinstance(arg, ast.Starred):
                    out.append((arg, f"{name}()"))
            for kw in call.keywords:
                if kw.arg is not None:
                    out.append((kw.value, f"{name}({kw.arg}=...)"))
            return out
        for kw in call.keywords:
            if kw.arg is not None and any(frag in kw.arg.lower() for frag in _SEED_KEYWORDS):
                out.append((kw.value, f"{name or 'call'}({kw.arg}=...)"))
        return out

    def reportable(self, kind: str) -> str | None:
        return "RP601" if kind in KIND_NOTES else None

    def message(self, rule_id: str, sink_label: str, origin: Origin) -> str:
        what = KIND_NOTES.get(origin.kind, origin.kind)
        return (
            f"{what} ({origin.label}) flows into {sink_label}; campaign identity "
            "(seeds, fingerprints, RNG streams) must be a pure function of the "
            "configured seed — see the flow trace"
        )


@register
class NondeterminismTaint(ProjectRule):
    """Track nondeterministic values to campaign-identity sinks.

    Sources (origin kinds):
        clock  — wall-clock reads (time.time, datetime.now, ...)
        rng    — unseeded RNG state (np.random legacy, stdlib random,
                 os.urandom, uuid.uuid1/uuid4, secrets.*)
        env    — os.environ / os.getenv reads
        order  — filesystem enumeration order (os.listdir, Path.glob,
                 iterdir, glob.glob); sanitized by sorted()/len()/min()/max()

    Sinks (``taint-sinks`` in ``[tool.repro-lint]``): calls whose name
    contains a sink fragment (fingerprint, seed, entropy, child_rng,
    make_rng, spawn_rngs) and any keyword literally named ``seed=`` /
    ``entropy=``.

    The analysis is interprocedural: values returned through package
    helpers keep their origin, with each hop recorded.  Example trace::

        src/repro/core/run.py:10:13: RP601 a wall-clock read (time.time()) flows into child_rng(seed=...); ...
            flow: src/repro/utils/ids.py:4:12 source: time.time()
                  src/repro/utils/ids.py:4:5  assigned to 'stamp'
                  src/repro/core/run.py:8:13  passed through fresh_token() and returned
                  src/repro/core/run.py:10:28 reaches sink: child_rng(seed=...)

    Fix by deriving all identity from the configured seed
    (``repro.utils.rng``) and passing timestamps in explicitly for
    display-only uses (then the value must not reach a sink).
    """

    id = "RP601"
    name = "nondeterminism-taint"
    summary = "nondeterministic value (clock/rng/env/fs-order) flows into seed or fingerprint"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        yield from family_findings(ctx, "flow:taint", TaintSpec, self.id)
