"""RP4xx — registry consistency across the experiment and zoo packages.

``repro-exp all`` and the campaign CLI only reach experiments that
``runner.py`` registers, and campaigns can only build networks that
``zoo/registry.py`` maps.  An orphan module is dead weight at best and,
at worst, a silently stale reproduction of a paper table that no CI
entry point ever executes again.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register

__all__ = ["ExperimentRegistered", "ZooNetworkRegistered"]

#: Experiment-package housekeeping modules that need no registration.
_EXPERIMENT_EXEMPT = frozenset({"__init__", "__main__", "runner", "common"})


def _dict_value_names(tree: ast.Module, dict_name: str) -> set[str] | None:
    """Names appearing in the values of a top-level ``dict_name = {...}``.

    Returns None when no such literal dict assignment exists.
    """
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == dict_name:
                if not isinstance(node.value, ast.Dict):
                    return None
                names: set[str] = set()
                for value in node.value.values:
                    for sub in ast.walk(value):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
                        elif isinstance(sub, ast.Attribute):
                            names.add(sub.attr)
                return names
    return None


@register
class ExperimentRegistered(ProjectRule):
    """Every experiment module must appear in runner.py's EXPERIMENTS."""

    id = "RP401"
    name = "experiment-registered"
    summary = "repro/experiments modules must be registered in runner.py EXPERIMENTS"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        modules = ctx.find("repro/experiments")
        runner = next((m for m in modules if m.path.name == "runner.py"), None)
        if runner is None:
            return
        registered = _dict_value_names(runner.tree, "EXPERIMENTS")
        if registered is None:
            yield self.finding(runner, runner.tree, "runner.py has no literal EXPERIMENTS dict")
            return
        for mod in modules:
            stem = mod.path.stem
            if stem in _EXPERIMENT_EXEMPT or stem.startswith("_"):
                continue
            if stem not in registered:
                yield self.finding(
                    mod,
                    mod.tree,
                    f"experiment module {stem!r} is not registered in runner.py "
                    "EXPERIMENTS; it will never run under 'repro-exp all' or CI",
                )


@register
class ZooNetworkRegistered(ProjectRule):
    """Every zoo ``build_*`` network must appear in zoo/registry.py."""

    id = "RP402"
    name = "zoo-network-registered"
    summary = "repro/zoo build_* networks must be registered in registry.py NETWORKS"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        modules = ctx.find("repro/zoo")
        registry = next((m for m in modules if m.path.name == "registry.py"), None)
        if registry is None:
            return
        referenced: set[str] = {
            node.id for node in ast.walk(registry.tree) if isinstance(node, ast.Name)
        }
        referenced |= {
            alias.asname or alias.name
            for node in ast.walk(registry.tree)
            if isinstance(node, ast.ImportFrom)
            for alias in node.names
        }
        for mod in modules:
            if mod.path.name == "registry.py":
                continue
            for node in mod.tree.body:
                if isinstance(node, ast.FunctionDef) and node.name.startswith("build_"):
                    if node.name not in referenced:
                        yield self.finding(
                            mod,
                            node,
                            f"network builder {node.name!r} is not referenced by "
                            "zoo/registry.py; campaigns cannot reach it by name",
                        )
