"""RP611/RP612 — dtype flow into fixed-point consumers.

RP202/RP203 flag dtype hazards *where they are written*, but only inside
the configured dtype/kernel paths.  These flow rules follow the arrays:
an array materialized as float64 in any file and later handed to the
int-input side of a fixed-point codec (``decode``/``from_int``) is bit
nonsense, not a bit pattern — Table 3 of the paper is only meaningful if
the representation matches the declared format end to end.

Origin kinds tracked by the shared dtype flow:
    f64    — array created with the float64 default (reportable, RP611)
    f64mix — int-dtype array mixed with a bare Python float (reportable,
             RP612: NumPy promotes the whole expression to float64)
    arrint — array with an explicit integer dtype (tracked only; it is
             the thing a bare float can corrupt)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import FunctionInfo
from repro.analysis.config import LintConfig
from repro.analysis.engine import FileContext, ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register
from repro.analysis.rules.determinism import _attr_chain, numpy_aliases
from repro.analysis.rules.dtype_safety import _DEFAULT_FLOAT_CTORS, _is_float_operand
from repro.analysis.rules.flow_base import FlowEngine, FlowSpec, Origin, Val, family_findings

__all__ = ["BareFloatPromotionFlow", "DtypeFlowSpec", "Float64Materialization"]

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _method_name(call: ast.Call) -> str:
    """Method name of a call, even when the receiver is itself a call
    (``np.zeros(16).astype`` — a chain ``_attr_chain`` cannot flatten)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    chain = _attr_chain(call.func)
    return chain[-1] if chain else ""


def _dtype_idents(node: ast.expr) -> str:
    """Lower-cased identifier soup of a ``dtype=`` expression."""
    parts: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            parts.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            parts.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            parts.append(sub.value)
    return " ".join(parts).lower()


def _is_int_dtype(node: ast.expr) -> bool:
    idents = _dtype_idents(node)
    return ("int" in idents or "bool" in idents) and "float" not in idents


def _is_float64_dtype(node: ast.expr) -> bool:
    idents = _dtype_idents(node)
    # Bare `float` (the Python builtin) is float64 to NumPy.
    return "float64" in idents or "double" in idents or idents == "float"


class DtypeFlowSpec(FlowSpec):
    """Array dtype origins -> fixed-point codec/kernel sinks."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self._aliases: dict[int, set[str]] = {}

    def _numpy(self, ctx: FileContext) -> set[str]:
        key = id(ctx)
        if key not in self._aliases:
            self._aliases[key] = numpy_aliases(ctx.tree) | {"numpy"}
        return self._aliases[key]

    def source(self, node: ast.expr, ctx: FileContext) -> tuple[str, str] | None:
        if not isinstance(node, ast.Call):
            return None
        chain = _attr_chain(node.func)
        dotted = ".".join(chain)
        dtype_kw = next((kw.value for kw in node.keywords if kw.arg == "dtype"), None)
        if len(chain) == 2 and chain[0] in self._numpy(ctx) and chain[1] in _DEFAULT_FLOAT_CTORS:
            if dtype_kw is None:
                if chain[1] == "array" and node.args:
                    # np.array copying an existing array keeps its dtype;
                    # literal lists infer from their elements: all-int
                    # literals give int64, anything else float64.
                    if not isinstance(node.args[0], (ast.List, ast.Tuple)):
                        return None
                    elements = node.args[0].elts
                    if elements and all(
                        isinstance(e, ast.Constant) and isinstance(e.value, int)
                        for e in elements
                    ):
                        return ("arrint", f"{dotted}(int literals)")
                return ("f64", f"{dotted}() without dtype= (float64 default)")
            if _is_int_dtype(dtype_kw):
                return ("arrint", f"{dotted}(dtype=int)")
            if _is_float64_dtype(dtype_kw):
                return ("f64", f"{dotted}(dtype=float64)")
            return None
        if _method_name(node) == "astype" and node.args:
            if _is_int_dtype(node.args[0]):
                return ("arrint", f"{dotted or 'astype'}(int dtype)")
            if _is_float64_dtype(node.args[0]):
                return ("f64", f"{dotted or 'astype'}(float64)")
        return None

    def sanitized_kinds(self, call: ast.Call, ctx: FileContext) -> frozenset[str]:
        # An explicit non-float64 dtype conversion repairs earlier
        # float64 materialization: x.astype(np.int16), np.asarray(x,
        # dtype=q.dtype), ...
        if _method_name(call) == "astype" and call.args and not _is_float64_dtype(call.args[0]):
            return frozenset({"f64", "f64mix"})
        dtype_kw = next((kw.value for kw in call.keywords if kw.arg == "dtype"), None)
        if dtype_kw is not None and not _is_float64_dtype(dtype_kw):
            return frozenset({"f64", "f64mix"})
        return frozenset()

    def binop_origin(
        self, node: ast.BinOp, left: Val, right: Val, ctx: FileContext
    ) -> tuple[str, str] | None:
        if not isinstance(node.op, _ARITH_OPS):
            return None
        int_left = any(o.kind == "arrint" for o in left)
        int_right = any(o.kind == "arrint" for o in right)
        if (int_left and _is_float_operand(node.right)) or (
            int_right and _is_float_operand(node.left)
        ):
            return ("f64mix", "int-dtype array mixed with bare Python float (promotes to float64)")
        return None

    def sinks(
        self, call: ast.Call, callee: FunctionInfo | None, ctx: FileContext, engine: FlowEngine
    ) -> list[tuple[ast.expr, str]]:
        name = _method_name(call)
        label: str | None = None
        if name in self.config.dtype_sinks:
            label = f"fixed-point consumer {name}()"
        elif callee is not None and callee.ctx.in_scope(self.config.kernel_paths):
            label = f"fixed-point kernel {callee.display}()"
        if label is None:
            return []
        out: list[tuple[ast.expr, str]] = []
        for arg in call.args:
            if not isinstance(arg, ast.Starred):
                out.append((arg, label))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg != "dtype":
                out.append((kw.value, label))
        return out

    def reportable(self, kind: str) -> str | None:
        return {"f64": "RP611", "f64mix": "RP612"}.get(kind)

    def message(self, rule_id: str, sink_label: str, origin: Origin) -> str:
        if rule_id == "RP611":
            return (
                f"array materialized as float64 ({origin.label}) reaches {sink_label}; "
                "declare the campaign dtype at creation (dtype=...) so the bit "
                "pattern matches the fixed-point format — see the flow trace"
            )
        return (
            f"float64-promoted expression ({origin.label}) reaches {sink_label}; "
            "quantize the scalar through the codec instead of mixing bare Python "
            "floats into int-dtype arithmetic — see the flow trace"
        )


@register
class Float64Materialization(ProjectRule):
    """Follow silently-float64 arrays into fixed-point consumers.

    Source: ``np.zeros/ones/empty/full/array`` without ``dtype=`` (or
    with an explicit float64 dtype) anywhere in the linted tree — not
    just inside ``dtype-paths``, which is all the syntactic RP202 can
    check.  Sink: a call whose name is listed in ``dtype-sinks``
    (``decode``, ``from_int`` — the codec methods that require integer
    bit patterns) or any function defined in a ``kernel-paths`` file.
    ``x.astype(<non-float64>)`` or an explicit ``dtype=`` conversion on
    the path sanitizes the flow.

    Example trace::

        src/repro/nn/infer.py:42:19: RP611 array materialized as float64 (np.zeros() without dtype=...) ...
            flow: src/repro/nn/layers.py:12:16 source: np.zeros() without dtype= (float64 default)
                  src/repro/nn/layers.py:12:9  assigned to 'bits'
                  src/repro/nn/infer.py:42:19  passed through make_buffer() and returned
                  src/repro/nn/infer.py:42:19  reaches sink: fixed-point consumer decode()
    """

    id = "RP611"
    name = "float64-materialization-flow"
    summary = "array created with float64 default dtype flows into a fixed-point consumer"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        yield from family_findings(ctx, "flow:dtype", DtypeFlowSpec, self.id)


@register
class BareFloatPromotionFlow(ProjectRule):
    """Follow float64-promoted int arrays into fixed-point consumers.

    Source: an arithmetic expression mixing an array created with an
    explicit integer dtype and a bare Python float literal — NumPy
    promotes the result to float64 even though both operands looked
    intentional in isolation.  Sink and sanitizers are shared with
    RP611 (the ``flow:dtype`` family).  Unlike the syntactic RP203 this
    follows the promoted value across assignments and helper returns,
    and fires only when it actually reaches a fixed-point consumer.
    """

    id = "RP612"
    name = "bare-float-promotion-flow"
    summary = "int-dtype array mixed with bare float (promoted to float64) reaches fixed-point code"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        yield from family_findings(ctx, "flow:dtype", DtypeFlowSpec, self.id)
