"""RP621/RP622 — fork-safety of the supervised worker pool.

Campaign trials execute inside pool worker processes (see
``repro/utils/parallel.py``).  Two classes of bug only exist because of
that process boundary, and both require the call graph to see:

* RP621: a function *reachable from a worker entry point* writes
  module-level mutable state.  The write lands in the worker's copy of
  the module, vanishes when the pool recycles the process, and differs
  between fork and spawn start methods — the classic "works on Linux,
  diverges on macOS" reproducibility bug.
* RP622: a helper manufactures a temp path and returns it; the caller
  writes to it but never publishes it with ``os.replace``/``rename``.
  The intra-function RP301/RP302 rules cannot see the factory boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo, build_callgraph, module_name_of
from repro.analysis.engine import FileContext, ProjectContext
from repro.analysis.findings import Finding, TraceHop
from repro.analysis.registry import ProjectRule, register
from repro.analysis.rules.atomicity import _mentions_tmp, _replace_targets
from repro.analysis.rules.determinism import _attr_chain

__all__ = ["ForkMutableGlobalWrite", "TempPathEscapesFactory"]

#: Container constructors whose module-level result is mutable state.
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "Counter", "OrderedDict", "ChainMap"}
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
    }
)


def _body_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class defs."""
    todo: list[ast.AST] = list(ast.iter_child_nodes(node))
    while todo:
        sub = todo.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        yield sub
        todo.extend(ast.iter_child_nodes(sub))


def _hop(ctx: FileContext, node: ast.AST, note: str) -> TraceHop:
    return TraceHop(
        file=ctx.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        note=note,
    )


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Names *bound* by an assignment target.

    ``CACHE["k"] = v`` / ``obj.attr = v`` write through an existing
    object — they bind nothing, so Subscript/Attribute targets are
    skipped (only Name, and Names inside Tuple/List/Starred unpacking).
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally in ``fn`` (so writes to them are not global)."""
    args = fn.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        )
    }
    for node in _body_walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_binding_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_binding_names(item.optional_vars))
        elif isinstance(node, ast.comprehension):
            names.update(_binding_names(node.target))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    # `global X` declarations un-localize the name again.
    for node in _body_walk(fn):
        if isinstance(node, ast.Global):
            names -= set(node.names)
    return names


def _module_mutables(project: ProjectContext) -> dict[tuple[str, str], tuple[FileContext, ast.stmt]]:
    """(module, name) -> definition site of module-level mutable state."""
    out: dict[tuple[str, str], tuple[FileContext, ast.stmt]] = {}
    for ctx in project.files:
        module = module_name_of(ctx.display_path)
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if value is None or not _is_mutable_value(value):
                continue
            for target in targets:
                out[(module, target.id)] = (ctx, stmt)
    return out


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        return bool(chain) and chain[-1] in _MUTABLE_CTORS
    return False


def _entry_chain(
    graph: CallGraph, parent: dict[str, CallSite | None], qualname: str
) -> list[TraceHop]:
    """Trace hops from a worker entry point down to ``qualname``."""
    sites: list[CallSite] = []
    current = qualname
    while parent.get(current) is not None:
        site = parent[current]
        assert site is not None
        sites.append(site)
        current = site.caller
    sites.reverse()
    entry = graph.functions[current]
    hops = [_hop(entry.ctx, entry.node, f"pool worker entry point {entry.display}()")]
    for site in sites:
        caller = graph.functions[site.caller]
        callee = graph.functions[site.callee]
        hops.append(_hop(caller.ctx, site.node, f"{caller.display}() calls {callee.display}()"))
    return hops


@register
class ForkMutableGlobalWrite(ProjectRule):
    """Flag module-state writes reachable from pool worker entry points.

    Roots are the functions named in ``fork-entry-points``
    (``_init_worker``/``_run_chunk`` by default); reachability follows
    the package-local call graph.  A write is any of:

    * rebinding a name declared ``global``;
    * item/attribute assignment (``CACHE[k] = v``) on a module-level
      mutable (dict/list/set/... literal or constructor), including ones
      imported from another linted module;
    * an in-place mutator call (``CACHE.update(...)``, ``LOG.append``).

    Worker-side writes are lost when the pool recycles processes and
    differ between fork and spawn start methods.  Pass state through the
    task object / return values instead.  The sanctioned exception is a
    worker-lifetime cache rebound once in ``_init_worker`` itself — mark
    it ``# repro: noqa[RP621]`` so the exemption stays visible, mirroring
    the RP104 backoff convention.

    Example trace::

        src/repro/core/stats.py:31:5: RP621 module-level state 'TALLY' is written in bump() ...
            flow: src/repro/utils/parallel.py:101:1 pool worker entry point _run_chunk()
                  src/repro/utils/parallel.py:113:20 _run_chunk() calls run_trial()
                  src/repro/core/run.py:57:12 run_trial() calls bump()
                  src/repro/core/stats.py:3:1 module-level state 'TALLY' defined here
                  src/repro/core/stats.py:31:5 written here inside a forked worker
    """

    id = "RP621"
    name = "fork-mutable-global"
    summary = "module-level mutable state written in code reachable from pool workers"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = build_callgraph(ctx)
        roots = sorted(
            q for q, info in graph.functions.items() if info.name in ctx.config.fork_entry_points
        )
        if not roots:
            return
        parent = graph.reachable_from(roots)
        mutables = _module_mutables(ctx)
        for qualname in sorted(parent):
            info = graph.functions[qualname]
            yield from self._check_function(info, graph, parent, mutables)

    def _check_function(
        self,
        info: FunctionInfo,
        graph: CallGraph,
        parent: dict[str, CallSite | None],
        mutables: dict[tuple[str, str], tuple[FileContext, ast.stmt]],
    ) -> Iterator[Finding]:
        fn = info.node
        locals_ = _local_names(fn)
        globals_ = {
            name for node in _body_walk(fn) if isinstance(node, ast.Global) for name in node.names
        }

        def resolve_state(name: str) -> tuple[FileContext, ast.stmt] | None:
            if name in locals_:
                return None
            hit = mutables.get((info.module, name))
            if hit is not None:
                return hit
            imported = graph.import_target(info.module, name)
            if imported is not None:
                return mutables.get(imported)
            return None

        def emit(node: ast.AST, name: str, what: str, defsite) -> Finding:
            hops = _entry_chain(graph, parent, info.qualname)
            if defsite is not None:
                def_ctx, def_node = defsite
                hops.append(_hop(def_ctx, def_node, f"module-level state {name!r} defined here"))
            hops.append(_hop(info.ctx, node, "written here inside a forked worker"))
            return Finding(
                file=info.ctx.display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=self.id,
                message=(
                    f"module-level state {name!r} is {what} in {info.display}(), which runs "
                    "inside pool worker processes; worker-side writes vanish on pool "
                    "recycle and differ between fork/spawn — pass state through the "
                    "task object or return values (see the flow trace)"
                ),
                trace=tuple(hops),
            )

        for node in _body_walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in globals_:
                        defsite = mutables.get((info.module, target.id))
                        yield emit(node, target.id, "rebound via `global`", defsite)
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = target
                        while isinstance(base, (ast.Subscript, ast.Attribute)):
                            base = base.value
                        if isinstance(base, ast.Name):
                            defsite = resolve_state(base.id)
                            if defsite is not None:
                                yield emit(node, base.id, "mutated by item/attribute write", defsite)
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) == 2 and chain[1] in _MUTATOR_METHODS:
                    defsite = resolve_state(chain[0])
                    if defsite is not None:
                        yield emit(node, chain[0], f"mutated in place via .{chain[1]}()", defsite)


@register
class TempPathEscapesFactory(ProjectRule):
    """Flag temp paths returned by a factory and never published by callers.

    A *temp factory* is a function that builds a temp-named path
    (``*.tmp*``) and returns it; factory-ness propagates one level
    through wrappers that return another factory's result.  At each call
    site the returned name must reach one of:

    * the atomic publish idiom (``os.replace``/``rename``/``shutil.move``
      or ``p.replace(...)``) — the pattern RP301/RP302 enforce
      intra-function;
    * explicit cleanup (``unlink``/``os.remove``) for scratch files;
    * a ``return`` (the caller's caller is then checked instead);
    * another function call (conservatively assumed to handle it).

    Writing to the path (``open``/``write_text``/``np.save``...) does
    *not* count as handling it: that is exactly the torn-file bug — data
    lands in the temp file and nothing ever makes it visible atomically.

    Example trace::

        src/repro/zoo/store.py:88:9: RP622 temp path from make_staging_path() never published ...
            flow: src/repro/zoo/store.py:20:11 temp path created here
                  src/repro/zoo/store.py:22:5 returned to caller
                  src/repro/zoo/store.py:88:15 temp path returned into 'staging'
                  src/repro/zoo/store.py:88:9 never published (os.replace) or unlinked in save_weights()
    """

    id = "RP622"
    name = "temp-escape-without-publish"
    summary = "temp path returned by a factory is written but never atomically published"

    #: Call names that merely *write into* the path (do not absolve).
    _WRITE_FNS = frozenset(
        {"open", "write_text", "write_bytes", "touch", "mkdir", "save", "savez",
         "savez_compressed", "dump", "write"}
    )
    _CLEANUP_FNS = frozenset({"unlink", "remove", "rmtree"})
    _PUBLISH_FNS = frozenset({"replace", "rename", "move"})

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = build_callgraph(ctx)
        factories = self._find_factories(graph)
        if not factories:
            return
        # Scan every function body plus each module's top level.
        units: list[tuple[ast.AST, FileContext, str, str | None, str]] = [
            (info.node, info.ctx, info.module, info.class_name, f"{info.display}()")
            for info in graph.functions.values()
        ]
        units += [
            (file_ctx.tree, file_ctx, module_name_of(file_ctx.display_path), None, "module scope")
            for file_ctx in ctx.files
        ]
        for node, file_ctx, module, class_name, where in units:
            yield from self._check_unit(node, file_ctx, module, class_name, where, graph, factories)

    def _find_factories(self, graph: CallGraph) -> dict[str, tuple[TraceHop, ...]]:
        factories: dict[str, tuple[TraceHop, ...]] = {}
        for info in graph.functions.values():
            tmp_names: dict[str, ast.stmt] = {}
            for node in _body_walk(info.node):
                if isinstance(node, ast.Assign) and _mentions_tmp(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tmp_names[target.id] = node
            for node in _body_walk(info.node):
                if (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in tmp_names
                ):
                    factories[info.qualname] = (
                        _hop(info.ctx, tmp_names[node.value.id], "temp path created here"),
                        _hop(info.ctx, node, "returned to caller"),
                    )
                    break
        # One propagation level: wrappers returning a factory's result.
        for _ in range(2):
            for info in graph.functions.values():
                if info.qualname in factories:
                    continue
                returned: dict[str, ast.Call] = {}
                for node in _body_walk(info.node):
                    if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                        callee = graph.resolve_call(info, node.value)
                        if callee is not None and callee.qualname in factories:
                            for target in node.targets:
                                if isinstance(target, ast.Name):
                                    returned[target.id] = node.value
                for node in _body_walk(info.node):
                    if (
                        isinstance(node, ast.Return)
                        and isinstance(node.value, ast.Name)
                        and node.value.id in returned
                    ):
                        call = returned[node.value.id]
                        callee = graph.resolve_call(info, call)
                        assert callee is not None
                        factories[info.qualname] = factories[callee.qualname] + (
                            _hop(info.ctx, call, f"wrapped by {info.display}()"),
                            _hop(info.ctx, node, "returned to caller"),
                        )
                        break
        return factories

    def _check_unit(
        self,
        scope: ast.AST,
        ctx: FileContext,
        module: str,
        class_name: str | None,
        where: str,
        graph: CallGraph,
        factories: dict[str, tuple[TraceHop, ...]],
    ) -> Iterator[Finding]:
        published = _replace_targets(scope)
        for node in _body_walk(scope):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            callee = graph.resolve_callable(module, node.value.func, class_name)
            if callee is None or callee.qualname not in factories:
                continue
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            for name in names:
                if name in published:
                    continue
                if self._escapes(scope, name, node):
                    continue
                hops = factories[callee.qualname] + (
                    _hop(ctx, node.value, f"temp path returned into {name!r}"),
                    _hop(ctx, node, f"never published (os.replace) or unlinked in {where}"),
                )
                yield Finding(
                    file=ctx.display_path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule_id=self.id,
                    message=(
                        f"temp path from {callee.display}() is written but never "
                        "atomically published; finish the temp-then-replace pattern "
                        f"with os.replace({name}, final) or unlink it (see the flow trace)"
                    ),
                    trace=hops,
                )

    def _escapes(self, scope: ast.AST, name: str, assign: ast.stmt) -> bool:
        """True when ``name`` is returned, cleaned up, or handed onward."""
        for node in _body_walk(scope):
            if node is assign:
                continue
            if (
                isinstance(node, ast.Return)
                and node.value is not None
                and any(
                    isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node.value)
                )
            ):
                return True
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            last = chain[-1] if chain else ""
            as_receiver = len(chain) >= 2 and chain[0] == name
            as_arg = any(isinstance(arg, ast.Name) and arg.id == name for arg in node.args) or any(
                isinstance(kw.value, ast.Name) and kw.value.id == name for kw in node.keywords
            )
            if not (as_receiver or as_arg):
                continue
            if last in self._CLEANUP_FNS or last in self._PUBLISH_FNS:
                return True
            if last in self._WRITE_FNS:
                continue  # writing into the temp is the bug, not the fix
            if as_arg:
                return True  # handed to another function: assume handled
        return False
