"""RP105 — observability hygiene in library code.

A fault-injection campaign's one sanctioned user-facing channel is the
observability stack (:mod:`repro.obs`): metrics registries, supervision
events, run manifests and the progress reporter.  A bare ``print()``
buried in library code bypasses all of it — the output cannot be
captured into a run log, breaks ``repro-obs`` tooling that parses
stdout, and (worst) interleaves nondeterministically when emitted from
pool workers.  CLI entry points and the progress reporter exist to
print; they are exempted by path via ``print-exempt-paths`` rather than
inline noqa so the policy lives in one reviewable place
(``[tool.repro-lint]`` in ``pyproject.toml``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["BarePrint"]


@register
class BarePrint(Rule):
    """Flag ``print()`` calls in library code (CLI/reporters exempt)."""

    id = "RP105"
    name = "bare-print-in-library"
    summary = "bare print() in library code bypasses the repro.obs event/metric channel"
    scope_key = "library_paths"
    exempt_key = "print_exempt_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare print() in library code; emit through an EventRecorder "
                    "sink / repro.obs instead, or list this module under "
                    "print-exempt-paths if its job is to print",
                )
