"""RP105 / RP108 — observability hygiene in library code.

A fault-injection campaign's one sanctioned user-facing channel is the
observability stack (:mod:`repro.obs`): metrics registries, supervision
events, run manifests and the progress reporter.  A bare ``print()``
buried in library code bypasses all of it — the output cannot be
captured into a run log, breaks ``repro-obs`` tooling that parses
stdout, and (worst) interleaves nondeterministically when emitted from
pool workers.  CLI entry points and the progress reporter exist to
print; they are exempted by path via ``print-exempt-paths`` rather than
inline noqa so the policy lives in one reviewable place
(``[tool.repro-lint]`` in ``pyproject.toml``).

RP108 guards the other direction of the same channel: the *artifacts*
the observability stack writes.  Checkpoints, run logs, trace files and
manifests all promise byte-identical, SIGKILL-safe snapshots, which only
holds when every write goes through the atomic writers
(``atomic_write_text`` / the checkpoint-style full-rewrite snapshot).  A
direct ``open(path, "a")`` append stream or ad-hoc ``json.dump`` in
campaign code can tear mid-record on a kill and silently break the
resume and parity contracts, so RP108 flags them inside campaign paths;
the sanctioned writer modules themselves are exempted via
``obs-writer-exempt-paths``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["BarePrint", "NonAtomicObsWrite"]


@register
class BarePrint(Rule):
    """Flag ``print()`` calls in library code (CLI/reporters exempt)."""

    id = "RP105"
    name = "bare-print-in-library"
    summary = "bare print() in library code bypasses the repro.obs event/metric channel"
    scope_key = "library_paths"
    exempt_key = "print_exempt_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare print() in library code; emit through an EventRecorder "
                    "sink / repro.obs instead, or list this module under "
                    "print-exempt-paths if its job is to print",
                )


def _call_name(node: ast.Call) -> str | None:
    """Trailing name of the called function (``open`` for ``Path.open``)."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _append_mode(node: ast.Call) -> bool:
    """True when an ``open`` call's mode string requests append mode."""
    mode = None
    if isinstance(node.func, ast.Name) and len(node.args) >= 2:
        mode = node.args[1]  # builtin open(path, mode)
    elif isinstance(node.func, ast.Attribute) and node.args:
        mode = node.args[0]  # Path.open(mode)
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    # A mode string, not just any string containing "a": Path("x").open
    # puts arbitrary strings in the first positional slot elsewhere.
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and "a" in mode.value
        and set(mode.value) <= set("rwxab+tU")
    )


@register
class NonAtomicObsWrite(Rule):
    """Flag non-atomic JSONL/JSON writes in campaign paths.

    Two shapes, both of which can tear a run artifact on SIGKILL and
    break byte-identity across serial / parallel / resumed executions:

    - ``open(path, "a")`` / ``path.open("a")`` — an append stream leaves
      a partial record behind when the process dies mid-write.
    - ``json.dump(obj, fh)`` — serializes incrementally into whatever
      file object it is handed; the atomic writers serialize to a string
      first and publish it with ``os.replace``.

    The sanctioned writers (checkpoint, manifest, tracer) are exempted
    by path via ``obs-writer-exempt-paths``.
    """

    id = "RP108"
    name = "non-atomic-obs-write"
    summary = "append-mode open()/json.dump in campaign code bypasses the atomic writers"
    scope_key = "campaign_paths"
    exempt_key = "obs_writer_exempt_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "open" and _append_mode(node):
                yield self.finding(
                    ctx,
                    node,
                    "append-mode open() in campaign code can tear the artifact "
                    "on SIGKILL; snapshot through atomic_write_text (or a "
                    "CheckpointWriter/TraceWriter-style full rewrite) instead",
                )
            elif (
                name == "dump"
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "json"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "json.dump() streams into an open file; serialize with "
                    "json.dumps and publish via atomic_write_text so run "
                    "artifacts stay kill-safe and byte-identical",
                )
