"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (
    api_hygiene,
    atomicity,
    determinism,
    dtype_safety,
    observability,
    registry_sync,
)

__all__ = [
    "api_hygiene",
    "atomicity",
    "determinism",
    "dtype_safety",
    "observability",
    "registry_sync",
]
