"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (
    api_hygiene,
    atomicity,
    determinism,
    dtype_safety,
    flow_dtype,
    flow_fork,
    flow_taint,
    observability,
    registry_sync,
)

__all__ = [
    "api_hygiene",
    "atomicity",
    "determinism",
    "dtype_safety",
    "flow_dtype",
    "flow_fork",
    "flow_taint",
    "observability",
    "registry_sync",
]
