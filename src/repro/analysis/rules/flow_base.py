"""Shared machinery for the flow-aware RP6xx rules.

The three RP6xx rule families (nondeterminism taint, dtype flow,
fork safety) are all instances of one analysis shape: *origins* enter at
source expressions, propagate through assignments, containers, calls and
returns, and become findings when they reach a *sink*.  This module
implements that shape once — an interprocedural origin-tracking engine
over the :mod:`~repro.analysis.cfg` / :mod:`~repro.analysis.dataflow`
framework with :mod:`~repro.analysis.callgraph` summaries — and lets
each rule family plug in a small :class:`FlowSpec` describing its
sources, sinks and promotion semantics.

Every origin carries the hop-by-hop trace (file/line/col per step) that
the reporters render and the JSON report embeds, so a finding is not
"time.time() somewhere near a seed" but the concrete chain of
assignments and calls the value travelled.

Termination: origin sets are capped at :data:`MAX_ORIGINS` per value and
:data:`MAX_HOPS` per trace, making the abstract domain finite; the
function-summary fixpoint is worklist-driven with a pass guard.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from repro.analysis.callgraph import CallGraph, FunctionInfo, build_callgraph, module_name_of
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import solve_forward
from repro.analysis.engine import FileContext, ProjectContext
from repro.analysis.findings import Finding, TraceHop

__all__ = [
    "EMPTY",
    "FlowEngine",
    "FlowSpec",
    "MAX_HOPS",
    "MAX_ORIGINS",
    "Origin",
    "Val",
    "extend_all",
    "family_findings",
    "join_vals",
    "run_family",
]

#: Cap on distinct origins tracked per abstract value.
MAX_ORIGINS = 6
#: Cap on trace length per origin (keeps the domain finite in loops).
MAX_HOPS = 16


@dataclass(frozen=True)
class Origin:
    """Where an abstract value came from.

    ``kind`` is spec-defined ("clock", "f64", ...) with one reserved
    value: ``"param"`` marks a value flowing from the enclosing
    function's parameter ``param`` — those origins never become findings
    directly, they become function summaries instead.
    """

    kind: str
    label: str
    param: int = -1
    hops: tuple[TraceHop, ...] = ()

    def sort_key(self) -> tuple:
        return (self.kind, self.param, self.label, len(self.hops), self.hops)

    def extend(self, hop: TraceHop) -> "Origin":
        """Append a hop, deduplicating repeats and respecting the cap."""
        if len(self.hops) >= MAX_HOPS or (self.hops and self.hops[-1] == hop):
            return self
        return replace(self, hops=self.hops + (hop,))


#: Abstract value: the set of origins that may flow into an expression.
Val = frozenset[Origin]
EMPTY: Val = frozenset()


def _prune(val: Val) -> Val:
    if len(val) <= MAX_ORIGINS:
        return val
    return frozenset(sorted(val, key=Origin.sort_key)[:MAX_ORIGINS])


def join_vals(a: Val, b: Val) -> Val:
    """Lattice join: origin-set union under the :data:`MAX_ORIGINS` cap."""
    if not a:
        return b
    if not b:
        return a
    return _prune(a | b)


def extend_all(val: Val, hop: TraceHop) -> Val:
    """Append ``hop`` to every origin of ``val``."""
    if not val:
        return val
    return frozenset(origin.extend(hop) for origin in val)


class FlowSpec:
    """What one RP6xx rule family means by "source" and "sink"."""

    def source(self, node: ast.expr, ctx: FileContext) -> tuple[str, str] | None:
        """``(kind, label)`` when ``node`` originates a tracked value."""
        return None

    def sanitized_kinds(self, call: ast.Call, ctx: FileContext) -> frozenset[str]:
        """Origin kinds an (unresolved) call neutralizes (e.g. sorted)."""
        return frozenset()

    def binop_origin(
        self, node: ast.BinOp, left: Val, right: Val, ctx: FileContext
    ) -> tuple[str, str] | None:
        """``(kind, label)`` when an operator combination creates an origin."""
        return None

    def sinks(
        self, call: ast.Call, callee: FunctionInfo | None, ctx: FileContext, engine: "FlowEngine"
    ) -> list[tuple[ast.expr, str]]:
        """Sensitive ``(argument expression, sink label)`` pairs of a call."""
        return []

    def reportable(self, kind: str) -> str | None:
        """Rule id a ``kind`` reports under at a sink (None = track only)."""
        return None

    def message(self, rule_id: str, sink_label: str, origin: Origin) -> str:
        """Finding message for ``origin`` reaching ``sink_label``."""
        raise NotImplementedError


@dataclass
class _Summary:
    """Interprocedural summary of one function."""

    #: Origins that may flow out through ``return`` (param origins refer
    #: to this function's own parameters).
    returns: Val = EMPTY
    #: param index -> (sink label, hops from parameter to sink).
    param_sinks: dict[int, tuple[str, tuple[TraceHop, ...]]] = field(default_factory=dict)

    def snapshot(self) -> tuple:
        return (self.returns, tuple(sorted(self.param_sinks.items())))


@dataclass
class _Unit:
    """One analyzable body: a function, method, or module top level."""

    qualname: str
    module: str
    class_name: str | None
    body: Sequence[ast.stmt]
    params: tuple[str, ...]
    ctx: FileContext


class FlowEngine:
    """Run one :class:`FlowSpec` over an entire lint set.

    Usage: ``FlowEngine(project, spec).run()`` -> findings tagged by
    rule id.  Rules share a single run per family via ``project.cache``.
    """

    def __init__(self, project: ProjectContext, spec: FlowSpec) -> None:
        self.project = project
        self.spec = spec
        self.graph: CallGraph = build_callgraph(project)
        self.units: dict[str, _Unit] = {}
        self.summaries: dict[str, _Summary] = {}
        self._cfgs: dict[str, CFG] = {}
        #: dedup key -> (rule_id, Finding); last write wins so the most
        #: informed (final-pass) trace is the one reported.
        self._findings: dict[tuple, tuple[str, Finding]] = {}
        self._unit: _Unit | None = None
        self._current_summary: _Summary = _Summary()
        self._build_units()

    # -- setup --------------------------------------------------------------

    def _build_units(self) -> None:
        for info in self.graph.functions.values():
            self.units[info.qualname] = _Unit(
                qualname=info.qualname,
                module=info.module,
                class_name=info.class_name,
                body=info.node.body,
                params=info.params,
                ctx=info.ctx,
            )
        for ctx in self.project.files:
            module = module_name_of(ctx.display_path)
            qualname = f"{module}:<module>"
            self.units[qualname] = _Unit(
                qualname=qualname,
                module=module,
                class_name=None,
                body=ctx.tree.body,
                params=(),
                ctx=ctx,
            )

    def _cfg(self, unit: _Unit) -> CFG:
        cfg = self._cfgs.get(unit.qualname)
        if cfg is None:
            cfg = build_cfg(unit.body)
            self._cfgs[unit.qualname] = cfg
        return cfg

    # -- driver -------------------------------------------------------------

    def run(self) -> list[tuple[str, Finding]]:
        """Fixpoint over function summaries; returns (rule_id, finding)."""
        order = sorted(self.units)
        for qualname in order:
            self.summaries[qualname] = _Summary()

        # Reverse dependencies: when a callee's summary changes, its
        # callers must be re-analyzed.
        callers: dict[str, set[str]] = {}
        for qualname in order:
            for site in self.graph.callees(qualname):
                callers.setdefault(site.callee, set()).add(qualname)

        pending = list(order)
        passes = 0
        max_work = 8 * len(order) + 64
        while pending and passes < max_work:
            qualname = pending.pop(0)
            passes += 1
            before = self.summaries[qualname].snapshot()
            self._analyze(self.units[qualname])
            if self.summaries[qualname].snapshot() != before:
                for caller in sorted(callers.get(qualname, ())):
                    if caller not in pending:
                        pending.append(caller)
        return [self._findings[key] for key in sorted(self._findings)]

    # -- per-unit analysis --------------------------------------------------

    def _analyze(self, unit: _Unit) -> None:
        self._unit = unit
        self.summaries[unit.qualname] = summary = _Summary()
        entry = {
            name: frozenset({Origin(kind="param", label=name, param=index)})
            for index, name in enumerate(unit.params)
        }
        self._current_summary = summary
        solve_forward(self._cfg(unit), self._transfer, join_vals, entry)
        self._unit = None

    def _hop(self, node: ast.AST, note: str) -> TraceHop:
        assert self._unit is not None
        return TraceHop(
            file=self._unit.ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            note=note,
        )

    # -- transfer function --------------------------------------------------

    def _transfer(self, stmt: ast.AST, env: dict[str, Val]) -> dict[str, Val]:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                self._bind(stmt.target, stmt.value, value, env)
        elif isinstance(stmt, ast.AugAssign):
            value = join_vals(self._eval(stmt.target, env), self._eval(stmt.value, env))
            self._bind(stmt.target, stmt.value, value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                if value:
                    summary = self._current_summary
                    summary.returns = join_vals(summary.returns, value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            value = self._eval(stmt.iter, env)
            if value:
                value = extend_all(value, self._hop(stmt, "iterated here"))
            self._bind(stmt.target, stmt.iter, value, env)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._eval(stmt.test, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, item.context_expr, value, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                env.pop(stmt.name, None)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            if stmt.msg is not None:
                self._eval(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env.pop(stmt.name, None)
        elif isinstance(stmt, ast.Match):
            self._eval(stmt.subject, env)
        return env

    def _bind(self, target: ast.expr, source: ast.expr, value: Val, env: dict[str, Val]) -> None:
        if isinstance(target, ast.Name):
            if value:
                env[target.id] = extend_all(value, self._hop(target, f"assigned to {target.id!r}"))
            else:
                # Strong update: rebinding with a clean value clears taint.
                env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: Sequence[ast.expr] | None = None
            if isinstance(source, (ast.Tuple, ast.List)) and len(source.elts) == len(target.elts):
                elements = source.elts
            for index, sub in enumerate(target.elts):
                if elements is not None:
                    self._bind(sub, elements[index], self._eval(elements[index], env), env)
                else:
                    self._bind(sub, source, value, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, source, value, env)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # Writing into a container/attribute taints the base binding
            # (weak update: other elements may be clean).
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and value:
                tainted = extend_all(value, self._hop(target, f"stored into {base.id!r}"))
                env[base.id] = join_vals(env.get(base.id, EMPTY), tainted)

    # -- expression evaluation ----------------------------------------------

    def _eval(self, node: ast.expr, env: dict[str, Val]) -> Val:
        assert self._unit is not None
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            value = self._eval(node.value, env)
            sourced = self.spec.source(node, self._unit.ctx)
            if sourced is not None:
                kind, label = sourced
                value = join_vals(
                    value,
                    frozenset({Origin(kind, label, hops=(self._hop(node, f"source: {label}"),))}),
                )
            return value
        if isinstance(node, ast.Subscript):
            return join_vals(self._eval(node.value, env), self._eval(node.slice, env))
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            value = join_vals(left, right)
            promoted = self.spec.binop_origin(node, left, right, self._unit.ctx)
            if promoted is not None:
                kind, label = promoted
                value = join_vals(
                    value,
                    frozenset({Origin(kind, label, hops=(self._hop(node, f"source: {label}"),))}),
                )
            return value
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for sub in node.values:
                out = join_vals(out, self._eval(sub, env))
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.Compare):
            out = self._eval(node.left, env)
            for sub in node.comparators:
                out = join_vals(out, self._eval(sub, env))
            return out
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return join_vals(self._eval(node.body, env), self._eval(node.orelse, env))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for sub in node.elts:
                out = join_vals(out, self._eval(sub, env))
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for sub in (*node.keys, *node.values):
                if sub is not None:
                    out = join_vals(out, self._eval(sub, env))
            return out
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for sub in node.values:
                out = join_vals(out, self._eval(sub, env))
            return out
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, env)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._bind(node.target, node.value, value, env)
            return value
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.Await):
            return self._eval(node.value, env)
        if isinstance(node, ast.Slice):
            out = EMPTY
            for sub in (node.lower, node.upper, node.step):
                if sub is not None:
                    out = join_vals(out, self._eval(sub, env))
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            inner = dict(env)
            out = EMPTY
            for gen in node.generators:
                iterated = self._eval(gen.iter, inner)
                self._bind(gen.target, gen.iter, iterated, inner)
                for cond in gen.ifs:
                    self._eval(cond, inner)
                out = join_vals(out, iterated)
            if isinstance(node, ast.DictComp):
                out = join_vals(out, self._eval(node.key, inner))
                out = join_vals(out, self._eval(node.value, inner))
            else:
                out = join_vals(out, self._eval(node.elt, inner))
            return out
        if isinstance(node, ast.Lambda):
            return EMPTY
        # Conservative fallback: union over child expressions.
        out = EMPTY
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, ast.expr):
                out = join_vals(out, self._eval(sub, env))
        return out

    # -- calls: summaries, sinks, sources -----------------------------------

    @staticmethod
    def _param_offset(callee: FunctionInfo) -> int:
        bound = callee.params[:1] in (("self",), ("cls",)) and callee.class_name is not None
        return 1 if bound else 0

    def _arg_val(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        param: int,
        env: dict[str, Val],
    ) -> tuple[Val, ast.expr | None]:
        """Value (and expression) supplied for ``param`` of ``callee``."""
        index = param - self._param_offset(callee)
        if index < 0:
            # The bound receiver: `obj.m(...)` — taint of `obj`.
            if isinstance(call.func, ast.Attribute):
                return self._eval(call.func.value, env), call.func.value
            return EMPTY, None
        if index < len(call.args):
            arg = call.args[index]
            if not isinstance(arg, ast.Starred):
                return self._eval(arg, env), arg
            return EMPTY, None
        wanted = callee.params[param] if param < len(callee.params) else None
        if wanted is not None:
            for kw in call.keywords:
                if kw.arg == wanted:
                    return self._eval(kw.value, env), kw.value
        return EMPTY, None

    def _eval_call(self, call: ast.Call, env: dict[str, Val]) -> Val:
        assert self._unit is not None
        ctx = self._unit.ctx
        callee = self.graph.resolve_callable(self._unit.module, call.func, self._unit.class_name)

        # Evaluate arguments (this also walks nested calls for sinks).
        arg_vals = [self._eval(arg, env) for arg in call.args]
        kw_vals = {kw.arg: self._eval(kw.value, env) for kw in call.keywords}
        receiver = (
            self._eval(call.func.value, env) if isinstance(call.func, ast.Attribute) else EMPTY
        )

        result = EMPTY
        sourced = self.spec.source(call, ctx)
        if sourced is not None:
            kind, label = sourced
            result = frozenset({Origin(kind, label, hops=(self._hop(call, f"source: {label}"),))})

        if callee is not None and callee.qualname in self.summaries:
            summary = self.summaries[callee.qualname]
            name = callee.display
            for origin in summary.returns:
                if origin.kind == "param":
                    base, _expr = self._arg_val(call, callee, origin.param, env)
                    through = extend_all(
                        base, self._hop(call, f"passed through {name}() and returned")
                    )
                    result = join_vals(result, through)
                else:
                    carried = origin.extend(self._hop(call, f"returned from {name}()"))
                    result = join_vals(result, frozenset({carried}))
            for param, (sink_label, sink_hops) in sorted(summary.param_sinks.items()):
                base, expr = self._arg_val(call, callee, param, env)
                for origin in base:
                    entered = origin.extend(
                        self._hop(expr or call, f"passed into {name}()")
                    )
                    entered = replace(
                        entered, hops=(entered.hops + sink_hops)[:MAX_HOPS]
                    )
                    self._record_sink(call, sink_label, entered)
        else:
            # Unresolved call: conservatively propagate through, minus
            # spec-declared sanitizers (e.g. sorted() fixes FS order).
            cleared = self.spec.sanitized_kinds(call, ctx)
            merged = receiver
            for val in (*arg_vals, *kw_vals.values()):
                merged = join_vals(merged, val)
            if cleared:
                merged = frozenset(o for o in merged if o.kind not in cleared)
            result = join_vals(result, merged)

        for arg_expr, sink_label in self.spec.sinks(call, callee, ctx, self):
            value = self._eval(arg_expr, env)
            for origin in value:
                self._record_sink(call, sink_label, origin.extend(
                    self._hop(arg_expr, f"reaches sink: {sink_label}")
                ))
        return result

    def _record_sink(self, call: ast.Call, sink_label: str, origin: Origin) -> None:
        assert self._unit is not None
        if origin.kind == "param":
            summary = self._current_summary
            if origin.param not in summary.param_sinks:
                summary.param_sinks[origin.param] = (sink_label, origin.hops)
            return
        rule_id = self.spec.reportable(origin.kind)
        if rule_id is None:
            return
        # One finding per (rule, location, sink, origin label): several
        # source sites feeding the same sink collapse to a single report
        # (the trace shows one representative path).
        key = (
            rule_id,
            self._unit.ctx.display_path,
            getattr(call, "lineno", 1),
            getattr(call, "col_offset", 0) + 1,
            sink_label,
            origin.kind,
            origin.label,
        )
        finding = Finding(
            file=self._unit.ctx.display_path,
            line=getattr(call, "lineno", 1),
            col=getattr(call, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=self.spec.message(rule_id, sink_label, origin),
            trace=origin.hops,
        )
        self._findings[key] = (rule_id, finding)


def run_family(
    project: ProjectContext, cache_key: str, make_spec
) -> list[tuple[str, Finding]]:
    """Run one flow family once per lint run, shared via ``project.cache``."""
    cached = project.cache.get(cache_key)
    if cached is None:
        cached = FlowEngine(project, make_spec(project.config)).run()
        project.cache[cache_key] = cached
    return cached


def family_findings(
    project: ProjectContext, cache_key: str, make_spec, rule_id: str
) -> Iterator[Finding]:
    """The cached family run filtered down to one rule id."""
    for found_rule, finding in run_family(project, cache_key, make_spec):
        if found_rule == rule_id:
            yield finding
