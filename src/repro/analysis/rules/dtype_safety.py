"""RP2xx — bit-exact datatype safety.

Table 3's datatype comparison is only meaningful if every value in a
fixed-point campaign actually lives in the declared format.  An array
materialized without an explicit ``dtype=`` silently defaults to
float64, a bare Python float in kernel arithmetic promotes the whole
expression to float64, and ``==`` on floats compares bit patterns the
formats may not even be able to represent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import _attr_chain, numpy_aliases

__all__ = ["FloatEquality", "MissingDtype", "BareFloatKernelArithmetic"]

#: Array constructors whose dtype defaults to float64 (the ``*_like``
#: family inherits its dtype from the prototype and is exempt).
_DEFAULT_FLOAT_CTORS = frozenset({"zeros", "ones", "empty", "full", "array"})

#: Non-finite sentinels that float equality can never match reliably.
_NONFINITE_ATTRS = frozenset({"inf", "nan", "NAN", "NaN", "Inf", "Infinity", "NINF", "PINF"})


def _is_float_operand(node: ast.expr) -> bool:
    """Float literal, ``-literal``, or a non-finite constant attribute."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    chain = _attr_chain(node)
    return len(chain) == 2 and chain[0] in ("np", "numpy", "math") and chain[1] in _NONFINITE_ATTRS


@register
class FloatEquality(Rule):
    """Flag ``==`` / ``!=`` against float literals or inf/nan.

    Exempt under ``float-eq-exempt-paths`` (tests and benchmarks by
    default): asserting *bit-exact* equality against known values is the
    point of the dtype test suites.
    """

    id = "RP201"
    name = "float-equality"
    summary = "float ==/!= is not bit-exact across datatypes; use isclose/isinf/isnan"
    exempt_key = "float_eq_exempt_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_operand(lhs) or _is_float_operand(rhs):
                    yield self.finding(
                        ctx,
                        node,
                        "exact float comparison; quantized formats may not represent "
                        "the literal — use math.isclose/np.isclose (or np.isinf/np.isnan)",
                    )
                    break


@register
class MissingDtype(Rule):
    """Flag float-defaulting array constructors without ``dtype=``."""

    id = "RP202"
    name = "missing-dtype"
    summary = "np.zeros/ones/empty/full/array without dtype= defaults to float64"
    scope_key = "dtype_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        nps = numpy_aliases(ctx.tree) | {"numpy"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) != 2 or chain[0] not in nps or chain[1] not in _DEFAULT_FLOAT_CTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # np.array copying an existing array preserves its dtype; only
            # literal element lists silently default to float64.
            if chain[1] == "array" and node.args and not isinstance(node.args[0], (ast.List, ast.Tuple)):
                continue
            yield self.finding(
                ctx,
                node,
                f"{'.'.join(chain)}(...) without an explicit dtype= silently "
                "materializes float64 inside a bit-exact numeric path",
            )


@register
class BareFloatKernelArithmetic(Rule):
    """Flag bare Python-float arithmetic inside fixed-point kernels."""

    id = "RP203"
    name = "bare-float-kernel-arith"
    summary = "float literals in fixed-point kernel arithmetic promote to float64"
    scope_key = "kernel_paths"

    _OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, self._OPS):
                sides = (node.left, node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, self._OPS):
                sides = (node.value,)
            else:
                continue
            if any(_is_float_operand(side) for side in sides):
                yield self.finding(
                    ctx,
                    node,
                    "bare Python-float arithmetic in a fixed-point kernel promotes "
                    "to float64; quantize through the codec (to_int/from_int) instead",
                )
