"""RP1xx — determinism of fault-injection campaigns.

The paper's SDC probabilities come with 95% confidence intervals over
~3,000 injections per configuration; re-running a campaign with the same
seed must reproduce every trial bit-for-bit (also across process-pool
workers).  Global RNG state and wall-clock reads break that silently:
a single ``np.random.rand()`` call makes trial outcomes depend on import
order and worker scheduling.  All randomness must flow through the
seeded streams of :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["LegacyNumpyRandom", "StdlibRandom", "WallClock", "SleepInCampaign", "numpy_aliases"]

#: numpy.random attributes that touch hidden global state.  The new-style
#: seeded constructors (default_rng / Generator / SeedSequence / Philox &
#: friends) are the sanctioned replacements and are not listed.
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "get_state", "set_state", "RandomState",
        "rand", "randn", "randint", "random_integers",
        "random", "random_sample", "ranf", "sample", "bytes",
        "choice", "shuffle", "permutation",
        "uniform", "normal", "standard_normal", "lognormal",
        "binomial", "poisson", "beta", "gamma", "exponential",
        "laplace", "logistic", "multinomial", "multivariate_normal",
        "triangular", "weibull", "pareto", "rayleigh", "geometric",
        "hypergeometric", "negative_binomial", "chisquare", "dirichlet",
        "f", "gumbel", "noncentral_chisquare", "noncentral_f",
        "power", "standard_cauchy", "standard_exponential",
        "standard_gamma", "standard_t", "vonmises", "wald", "zipf",
    }
)

#: Wall-clock reads; monotonic timers (perf_counter, monotonic) are fine
#: for progress display and are deliberately not listed.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("time", "ctime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


def _attr_chain(node: ast.expr) -> list[str]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]`` (empty if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


def numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the module binds to numpy (``import numpy as np`` -> np)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


@register
class LegacyNumpyRandom(Rule):
    """Flag legacy global-state ``np.random.*`` APIs anywhere."""

    id = "RP101"
    name = "legacy-numpy-random"
    summary = "np.random.<legacy> uses hidden global RNG state; seed via repro.utils.rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        nps = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if (
                    len(chain) == 3
                    and chain[0] in (nps | {"numpy"})
                    and chain[1] == "random"
                    and chain[2] in _LEGACY_NP_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy global-RNG API {'.'.join(chain)}; derive a seeded "
                        "Generator via repro.utils.rng instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name in _LEGACY_NP_RANDOM:
                        yield self.finding(
                            ctx,
                            node,
                            f"legacy global-RNG import numpy.random.{alias.name}; "
                            "derive a seeded Generator via repro.utils.rng instead",
                        )


@register
class StdlibRandom(Rule):
    """Flag any import of the stdlib ``random`` module."""

    id = "RP102"
    name = "stdlib-random"
    summary = "stdlib random is unseeded process-global state; use repro.utils.rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib random module shares one unseeded global stream "
                            "across the process; use repro.utils.rng streams",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    ctx,
                    node,
                    "stdlib random module shares one unseeded global stream "
                    "across the process; use repro.utils.rng streams",
                )


@register
class WallClock(Rule):
    """Flag wall-clock reads inside campaign paths."""

    id = "RP103"
    name = "wall-clock-in-campaign"
    summary = "wall-clock reads make campaign re-execution non-deterministic"
    scope_key = "campaign_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {'.'.join(chain)}() in a campaign path; campaign "
                    "behaviour must depend only on seeds (use time.perf_counter for "
                    "durations, pass timestamps in explicitly)",
                )


@register
class SleepInCampaign(Rule):
    """Flag ``time.sleep`` calls inside campaign paths.

    A sleep on the trial path stalls every injection behind it and makes
    campaign wall-time depend on scheduling rather than work.  The one
    sanctioned use is supervisor backoff between process-pool rebuilds,
    which must be explicitly exempted with ``# repro: noqa[RP104]`` so the
    exception stays visible in review (see docs/resilience.md).
    """

    id = "RP104"
    name = "sleep-in-campaign"
    summary = "time.sleep on a campaign path stalls trials; exempt backoff with noqa"
    scope_key = "campaign_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) >= 2 and (chain[-2], chain[-1]) == ("time", "sleep"):
                yield self.finding(
                    ctx,
                    node,
                    "time.sleep() on a campaign path; trials should never block on "
                    "wall time — if this is supervisor backoff, mark the line "
                    "'# repro: noqa[RP104]' to record the exemption",
                )
