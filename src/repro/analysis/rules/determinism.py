"""RP1xx — determinism of fault-injection campaigns.

The paper's SDC probabilities come with 95% confidence intervals over
~3,000 injections per configuration; re-running a campaign with the same
seed must reproduce every trial bit-for-bit (also across process-pool
workers).  Global RNG state and wall-clock reads break that silently:
a single ``np.random.rand()`` call makes trial outcomes depend on import
order and worker scheduling.  All randomness must flow through the
seeded streams of :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = [
    "LegacyNumpyRandom",
    "StdlibRandom",
    "WallClock",
    "SleepInCampaign",
    "GoldenBufferWrite",
    "numpy_aliases",
]

#: numpy.random attributes that touch hidden global state.  The new-style
#: seeded constructors (default_rng / Generator / SeedSequence / Philox &
#: friends) are the sanctioned replacements and are not listed.
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "get_state", "set_state", "RandomState",
        "rand", "randn", "randint", "random_integers",
        "random", "random_sample", "ranf", "sample", "bytes",
        "choice", "shuffle", "permutation",
        "uniform", "normal", "standard_normal", "lognormal",
        "binomial", "poisson", "beta", "gamma", "exponential",
        "laplace", "logistic", "multinomial", "multivariate_normal",
        "triangular", "weibull", "pareto", "rayleigh", "geometric",
        "hypergeometric", "negative_binomial", "chisquare", "dirichlet",
        "f", "gumbel", "noncentral_chisquare", "noncentral_f",
        "power", "standard_cauchy", "standard_exponential",
        "standard_gamma", "standard_t", "vonmises", "wald", "zipf",
    }
)

#: Wall-clock reads; monotonic timers (perf_counter, monotonic) are fine
#: for progress display and are deliberately not listed.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("time", "ctime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


def _attr_chain(node: ast.expr) -> list[str]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]`` (empty if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


def numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the module binds to numpy (``import numpy as np`` -> np)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


@register
class LegacyNumpyRandom(Rule):
    """Flag legacy global-state ``np.random.*`` APIs anywhere."""

    id = "RP101"
    name = "legacy-numpy-random"
    summary = "np.random.<legacy> uses hidden global RNG state; seed via repro.utils.rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        nps = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if (
                    len(chain) == 3
                    and chain[0] in (nps | {"numpy"})
                    and chain[1] == "random"
                    and chain[2] in _LEGACY_NP_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy global-RNG API {'.'.join(chain)}; derive a seeded "
                        "Generator via repro.utils.rng instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name in _LEGACY_NP_RANDOM:
                        yield self.finding(
                            ctx,
                            node,
                            f"legacy global-RNG import numpy.random.{alias.name}; "
                            "derive a seeded Generator via repro.utils.rng instead",
                        )


@register
class StdlibRandom(Rule):
    """Flag any import of the stdlib ``random`` module."""

    id = "RP102"
    name = "stdlib-random"
    summary = "stdlib random is unseeded process-global state; use repro.utils.rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib random module shares one unseeded global stream "
                            "across the process; use repro.utils.rng streams",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    ctx,
                    node,
                    "stdlib random module shares one unseeded global stream "
                    "across the process; use repro.utils.rng streams",
                )


@register
class WallClock(Rule):
    """Flag wall-clock reads inside campaign paths."""

    id = "RP103"
    name = "wall-clock-in-campaign"
    summary = "wall-clock reads make campaign re-execution non-deterministic"
    scope_key = "campaign_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {'.'.join(chain)}() in a campaign path; campaign "
                    "behaviour must depend only on seeds (use time.perf_counter for "
                    "durations, pass timestamps in explicitly)",
                )


@register
class SleepInCampaign(Rule):
    """Flag ``time.sleep`` calls inside campaign paths.

    A sleep on the trial path stalls every injection behind it and makes
    campaign wall-time depend on scheduling rather than work.  The one
    sanctioned use is supervisor backoff between process-pool rebuilds,
    which must be explicitly exempted with ``# repro: noqa[RP104]`` so the
    exception stays visible in review (see docs/resilience.md).
    """

    id = "RP104"
    name = "sleep-in-campaign"
    summary = "time.sleep on a campaign path stalls trials; exempt backoff with noqa"
    scope_key = "campaign_paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) >= 2 and (chain[-2], chain[-1]) == ("time", "sleep"):
                yield self.finding(
                    ctx,
                    node,
                    "time.sleep() on a campaign path; trials should never block on "
                    "wall time — if this is supervisor backoff, mark the line "
                    "'# repro: noqa[RP104]' to record the exemption",
                )


#: Call names whose result is a private buffer: assigning from one of
#: these detaches the binding from the golden state, so later writes
#: through it are safe (``faulty = golden.scores.copy()``).
_COPY_CALLS = frozenset({"copy", "deepcopy", "array", "ascontiguousarray"})


def _name_parts(node: ast.expr) -> list[str]:
    """Name/attribute segments of an lvalue, descending through
    subscripts and calls (``self.goldens[i].scores[mask]`` ->
    ``["self", "goldens", "scores"]``)."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return parts[::-1]
        else:
            return parts[::-1]


def _is_golden(parts: list[str]) -> bool:
    return any("golden" in p.lower() for p in parts)


@register
class GoldenBufferWrite(Rule):
    """Flag in-place writes into golden reference buffers.

    With shared-memory golden state (``repro.core.sharedgolden``) every
    worker's golden activations/weights are *views over one segment*: a
    write through any of them corrupts the reference for every other
    worker.  The views are published read-only, so such a write raises at
    runtime — this rule moves the failure to lint time and also covers
    the single-process path, where goldens are plain writable arrays and
    a stray ``golden.scores[i] = x`` silently skews every later outcome
    comparison.

    The sanctioned idiom is copy-then-corrupt: bind a private buffer via
    ``.copy()`` / ``np.array`` / ``np.ascontiguousarray`` /
    ``copy.deepcopy`` first (the injector does exactly this); names bound
    from those calls are exempt even when they contain "golden".
    """

    id = "RP106"
    name = "golden-buffer-write"
    summary = "in-place write into a golden buffer; copy before corrupting"
    scope_key = "campaign_paths"

    def _copied_names(self, tree: ast.Module) -> set[str]:
        copied: set[str] = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            chain = _attr_chain(node.value.func)
            if chain and chain[-1] in _COPY_CALLS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        copied.add(target.id)
        return copied

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        copied = self._copied_names(ctx.tree)

        def targets_of(node: ast.stmt) -> list[ast.expr]:
            if isinstance(node, ast.Assign):
                return list(node.targets)
            if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                return [node.target]
            return []

        for node in ast.walk(ctx.tree):
            for target in targets_of(node):
                # Only *element* writes (subscript stores) and augmented
                # whole-array writes mutate an existing buffer; a plain
                # ``golden = ...`` rebind is fine.
                if not (
                    isinstance(target, ast.Subscript)
                    or (isinstance(node, ast.AugAssign) and isinstance(target, ast.Attribute))
                ):
                    continue
                parts = _name_parts(target)
                if not _is_golden(parts) or (parts and parts[0] in copied):
                    continue
                yield self.finding(
                    ctx,
                    target,
                    f"write into golden buffer {'.'.join(parts)}; goldens are "
                    "shared read-only references — corrupt a private copy "
                    "(.copy() first) instead",
                )
