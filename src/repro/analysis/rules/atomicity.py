"""RP3xx — atomic-write hygiene under the parallel campaign runner.

Campaign workers share on-disk caches (weight store, experiment
artifacts).  The safe pattern is write-to-temp + ``os.replace``; but if
the temp filename is shared between processes, two workers interleave
writes into the same file and the subsequent rename publishes a torn
archive — the exact ``zipfile.BadZipFile`` class of bug this repository
shipped in ``repro/zoo/store.py``.  A temp name is only safe when it
embeds a per-process/per-call uniqueness token (pid, uuid, mkstemp...).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.rules.determinism import _attr_chain

__all__ = ["SharedTempReplace", "TempWithoutPublish"]

#: Identifiers anywhere in the temp-name expression (or the value it was
#: built from) that make the name unique per process or per call.
_UNIQUENESS_TOKENS = (
    "getpid", "pid", "uuid", "mkstemp", "mkdtemp",
    "namedtemporaryfile", "temporaryfile", "token_hex", "token_urlsafe",
    "unique", "nonce", "getrandbits",
)


def _mentions_tmp(node: ast.expr) -> bool:
    """Does the expression embed a string constant naming a temp file?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if "tmp" in sub.value.lower() or "temp" in sub.value.lower():
                return True
    return False


def _has_uniqueness_token(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        ident = None
        if isinstance(sub, ast.Name):
            ident = sub.id
        elif isinstance(sub, ast.Attribute):
            ident = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            ident = sub.value
        if ident is not None and any(tok in ident.lower() for tok in _UNIQUENESS_TOKENS):
            return True
    return False


def _replace_targets(func: ast.AST) -> set[str]:
    """Names that flow into a rename/replace publishing step in ``func``."""
    targets: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if not chain:
            continue
        # tmp.replace(dst) / tmp.rename(dst): receiver is the temp path.
        if chain[-1] in ("replace", "rename") and len(chain) == 2 and node.args:
            targets.add(chain[0])
        # os.replace(tmp, dst) / os.rename(tmp, dst) / shutil.move(tmp, dst)
        if (
            chain[-1] in ("replace", "rename", "move")
            and len(chain) >= 2
            and chain[0] in ("os", "shutil")
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            targets.add(node.args[0].id)
    return targets


@register
class SharedTempReplace(Rule):
    """Flag write-then-replace temp files not unique per process."""

    id = "RP301"
    name = "shared-temp-replace"
    summary = "temp file renamed into place must embed a per-process token (pid/uuid)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: list[ast.AST] = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes or [ctx.tree]:
            replaced = _replace_targets(scope)
            if not replaced:
                continue
            for node in ast.walk(scope):
                if not isinstance(node, ast.Assign):
                    continue
                names = {t.id for t in node.targets if isinstance(t, ast.Name)}
                if not (names & replaced):
                    continue
                if _mentions_tmp(node.value) and not _has_uniqueness_token(node.value):
                    yield self.finding(
                        ctx,
                        node,
                        "temp filename is shared between processes; concurrent campaign "
                        "workers interleave writes and publish a torn file on replace() "
                        "— embed os.getpid()/uuid4() in the name (or use tempfile.mkstemp)",
                    )


@register
class TempWithoutPublish(Rule):
    """Flag unique temp files that are written but never atomically published.

    The complement of RP301: the checkpoint writer's discipline is
    pid-unique temp + ``os.replace`` — both halves.  A function that
    builds a per-process ``*.tmp`` name but never renames it into place
    either leaks the temp file or (worse) readers are pointed at the
    temp path directly, losing the atomicity the unique name implies.
    """

    id = "RP302"
    name = "temp-without-publish"
    summary = "unique temp file written but never published via os.replace/rename"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: list[ast.AST] = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes or [ctx.tree]:
            replaced = _replace_targets(scope)
            for node in ast.walk(scope):
                if not isinstance(node, ast.Assign):
                    continue
                names = {t.id for t in node.targets if isinstance(t, ast.Name)}
                if not names or names & replaced:
                    continue
                if _mentions_tmp(node.value) and _has_uniqueness_token(node.value):
                    yield self.finding(
                        ctx,
                        node,
                        "per-process temp filename is never renamed into place in this "
                        "function; finish the atomic-write pattern with "
                        "os.replace(tmp, final) (and unlink the temp on failure)",
                    )
