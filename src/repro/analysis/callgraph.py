"""Package-local call graph for cross-function flow propagation.

The RP6xx rules must see through one level of indirection that a purely
syntactic rule cannot: a helper that returns ``time.time()``, a factory
that materializes a float64 array, a worker entry point that calls three
functions before one of them mutates module state.  This module indexes
every function and method defined in the linted file set, resolves the
statically-resolvable calls between them (same-module names, imported
names, module-alias attributes, ``self`` methods), and offers
reachability with parent links so findings can render the full chain.

Resolution is deliberately conservative: dynamic dispatch, higher-order
calls and duck-typed method calls stay unresolved rather than guessed —
an unresolved call simply ends the propagation, it never invents a flow.
Imported modules are matched by dotted-name *suffix* so the index works
for any checkout layout (``src/repro/...``, a tmp fixture tree, a flat
package) without sys.path knowledge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.engine import FileContext, ProjectContext

__all__ = ["FunctionInfo", "CallSite", "CallGraph", "build_callgraph", "module_name_of"]


def module_name_of(display_path: str) -> str:
    """Dotted module name derived from a file path.

    ``src/repro/core/checkpoint.py`` -> ``src.repro.core.checkpoint``;
    consumers match by suffix (``repro.core.checkpoint``), so leading
    layout directories are harmless.
    """
    parts = [p for p in display_path.replace("\\", "/").strip("/").split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the linted set."""

    qualname: str  #: ``<module>:<name>`` or ``<module>:<Class>.<name>``
    module: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: "FileContext"
    params: tuple[str, ...] = ()

    @property
    def display(self) -> str:
        """Human name (``Class.method`` or ``function``)."""
        return f"{self.class_name}.{self.name}" if self.class_name else self.name


@dataclass(frozen=True)
class CallSite:
    """An edge in the call graph: ``caller`` invokes ``callee`` at ``node``."""

    caller: str
    callee: str
    node: ast.Call = field(compare=False, hash=False)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    return tuple(names)


class CallGraph:
    """Function index + resolved static call edges over a lint run."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        #: module -> local binding ("f", "Class.m") -> qualname
        self._locals: dict[str, dict[str, str]] = {}
        #: module -> alias -> imported target (dotted module, or "mod:attr")
        self._imports: dict[str, dict[str, str]] = {}
        #: dotted module name -> itself (exact) for suffix resolution
        self._modules: list[str] = []
        #: caller qualname -> resolved call sites
        self._edges: dict[str, list[CallSite]] = {}

    # -- construction -------------------------------------------------------

    def index_file(self, ctx: "FileContext") -> None:
        module = module_name_of(ctx.display_path)
        self._modules.append(module)
        self._locals.setdefault(module, {})
        imports = self._imports.setdefault(module, {})

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name != "*":
                        imports[alias.asname or alias.name] = f"{node.module}:{alias.name}"

        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, None, stmt, ctx)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(module, stmt.name, sub, ctx)

    def _add_function(
        self,
        module: str,
        class_name: str | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: "FileContext",
    ) -> None:
        local = f"{class_name}.{node.name}" if class_name else node.name
        qualname = f"{module}:{local}"
        info = FunctionInfo(
            qualname=qualname,
            module=module,
            name=node.name,
            class_name=class_name,
            node=node,
            ctx=ctx,
            params=_param_names(node),
        )
        self.functions[qualname] = info
        self._locals.setdefault(module, {})[local] = qualname

    def finalize(self) -> None:
        """Resolve call edges once every file has been indexed."""
        for info in self.functions.values():
            edges: list[CallSite] = []
            for call in self._calls_in(info.node):
                callee = self.resolve_call(info, call)
                if callee is not None:
                    edges.append(CallSite(caller=info.qualname, callee=callee.qualname, node=call))
            self._edges[info.qualname] = edges

    @staticmethod
    def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
        """Calls lexically inside ``node``, not descending into nested defs."""
        todo: list[ast.AST] = list(ast.iter_child_nodes(node))
        while todo:
            sub = todo.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(sub, ast.Call):
                yield sub
            todo.extend(ast.iter_child_nodes(sub))

    # -- resolution ---------------------------------------------------------

    def resolve_module(self, dotted: str) -> str | None:
        """Indexed module matching ``dotted`` exactly or as a suffix."""
        if dotted in self._locals:
            return dotted
        tail = "." + dotted
        matches = [m for m in self._modules if m.endswith(tail)]
        if len(matches) == 1:
            return matches[0]
        return None

    def import_target(self, module: str, name: str) -> tuple[str, str] | None:
        """Resolve ``name`` imported into ``module`` via ``from m import x``.

        Returns ``(defining_module, original_name)`` when the import
        resolves to an indexed module, else None.  Used by the fork rules
        to see cross-module mutations of imported module-level state.
        """
        imported = self._imports.get(module, {}).get(name)
        if imported is None or ":" not in imported:
            return None
        mod, attr = imported.split(":", 1)
        resolved = self.resolve_module(mod)
        if resolved is None:
            return None
        return (resolved, attr)

    def _lookup(self, module: str, local: str) -> FunctionInfo | None:
        qualname = self._locals.get(module, {}).get(local)
        return self.functions.get(qualname) if qualname else None

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> FunctionInfo | None:
        """Statically resolve ``call`` made from inside ``caller``."""
        return self.resolve_callable(caller.module, call.func, caller.class_name)

    def resolve_callable(
        self, module: str, func: ast.expr, class_name: str | None = None
    ) -> FunctionInfo | None:
        imports = self._imports.get(module, {})
        if isinstance(func, ast.Name):
            target = self._lookup(module, func.id)
            if target is not None and target.class_name is None:
                return target
            imported = imports.get(func.id)
            if imported and ":" in imported:
                mod, attr = imported.split(":", 1)
                resolved = self.resolve_module(mod)
                if resolved:
                    # `from m import f` — f may be a function or a class
                    # (constructor calls resolve to __init__ if indexed).
                    return self._lookup(resolved, attr) or self._lookup(
                        resolved, f"{attr}.__init__"
                    )
            # Calling a locally-defined class constructs it: map to __init__.
            if target is None and class_name is None:
                return self._lookup(module, f"{func.id}.__init__")
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base == "self" and class_name is not None:
                return self._lookup(module, f"{class_name}.{attr}")
            imported = imports.get(base)
            if imported and ":" not in imported:
                resolved = self.resolve_module(imported)
                if resolved:
                    return self._lookup(resolved, attr)
            if imported and ":" in imported:
                # `from pkg import mod` then `mod.f(...)`
                mod, sub = imported.split(":", 1)
                resolved = self.resolve_module(f"{mod}.{sub}")
                if resolved:
                    return self._lookup(resolved, attr)
        return None

    # -- traversal ----------------------------------------------------------

    def callees(self, qualname: str) -> list[CallSite]:
        """Resolved call sites made from ``qualname``."""
        return self._edges.get(qualname, [])

    def reachable_from(self, roots: list[str]) -> dict[str, CallSite | None]:
        """BFS over call edges; value is the edge that first reached the key.

        Roots map to ``None``.  The parent links reconstruct one concrete
        entry-point -> function chain for finding traces.
        """
        parent: dict[str, CallSite | None] = {root: None for root in roots if root in self.functions}
        queue = sorted(parent)
        while queue:
            current = queue.pop(0)
            for site in self.callees(current):
                if site.callee not in parent:
                    parent[site.callee] = site
                    queue.append(site.callee)
        return parent


def build_callgraph(project: "ProjectContext") -> CallGraph:
    """Build (and cache on the project) the call graph for a lint run."""
    cached = project.cache.get("callgraph")
    if isinstance(cached, CallGraph):
        return cached
    graph = CallGraph()
    for ctx in project.files:
        graph.index_file(ctx)
    graph.finalize()
    project.cache["callgraph"] = graph
    return graph
