"""``repro-lint`` command line interface.

Exit codes: 0 = clean, 1 = findings (including parse errors), 2 = usage
or configuration error.  ``python -m repro.analysis`` is identical.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.config import LintConfig, find_pyproject, load_config
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules, get_rule
from repro.analysis.reporters import REPORTERS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Fault-injection-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml holding [tool.repro-lint] "
        "(default: nearest one above the first path)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and lint with built-in defaults",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="IDS",
        help="comma-separated rule ids/families to run (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="IDS",
        help="comma-separated rule ids/families to skip (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RPnnn",
        help="print one rule's long-form documentation (for flow rules: "
        "sources, sinks and an example source->sink trace) and exit",
    )
    return parser


def _split_ids(raw: list[str]) -> tuple[str, ...]:
    return tuple(token.strip() for chunk in raw for token in chunk.split(",") if token.strip())


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = f" [scope: {rule.scope_key}]" if rule.scope_key else ""
            print(f"{rule.id} {rule.name:28s} {rule.summary}{scope}")
        return 0

    if args.explain is not None:
        try:
            rule = get_rule(args.explain.strip().upper())
        except KeyError as exc:
            print(f"repro-lint: error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(rule.explain())
        return 0

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    try:
        if args.no_config:
            config = LintConfig()
        else:
            pyproject = Path(args.config) if args.config else find_pyproject(Path(paths[0]))
            config = load_config(pyproject)
        if args.select:
            config = config.__class__(**{**config.__dict__, "select": _split_ids(args.select)})
        if args.ignore:
            config = config.__class__(**{**config.__dict__, "ignore": _split_ids(args.ignore)})
        root = Path(config.config_file).parent if config.config_file else Path.cwd()
        findings = lint_paths(paths, config, root=root)
    except (OSError, KeyError, TypeError) as exc:
        message = exc.args[0] if isinstance(exc, (KeyError, TypeError)) and exc.args else exc
        print(f"repro-lint: error: {message}", file=sys.stderr)
        return 2
    try:
        print(REPORTERS[args.format](findings))
    except BrokenPipeError:
        # Reader (head, pager) closed early; the verdict still stands.
        sys.stderr.close()
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
