"""repro.analysis — fault-injection-aware static analysis (``repro-lint``).

The paper's conclusions rest on statistically valid fault-injection
campaigns: ~3,000 injections per layer, bit-exact datatype semantics and
deterministic re-execution.  Those properties are silently destroyed by
unseeded global RNG use, implicit float64 promotion inside fixed-point
paths, or non-atomic writes under the parallel campaign runner.  This
package enforces the invariants mechanically, on every commit, via an
AST-visitor rule engine with five project-specific pass families:

- ``RP1xx`` determinism — no legacy global-RNG APIs, no wall-clock reads
  in campaign paths; everything flows through :mod:`repro.utils.rng`.
- ``RP2xx`` dtype safety — no float ``==``/``!=``, no array constructors
  without an explicit ``dtype=`` in numeric packages, no bare float
  arithmetic in fixed-point kernels.
- ``RP3xx`` atomic-write hygiene — write-then-``replace`` temp files must
  be unique per process.
- ``RP4xx`` registry consistency — experiment modules and zoo networks
  must be registered, with no orphans.
- ``RP5xx`` API hygiene — ``__all__`` present and accurate in every
  public module.
- ``RP6xx`` flow-aware analysis — an intraprocedural CFG
  (:mod:`~repro.analysis.cfg`), a worklist dataflow solver
  (:mod:`~repro.analysis.dataflow`) and a package-local call graph
  (:mod:`~repro.analysis.callgraph`) track *values* instead of call
  sites: nondeterminism taint reaching seeds/fingerprints (RP601),
  float64 arrays reaching fixed-point consumers (RP611/RP612), and
  fork-unsafe module-state writes / unpublished temp paths under the
  worker pool (RP621/RP622).  Findings carry a machine-readable
  source->sink trace; ``repro-lint --explain RP601`` documents each rule.

Findings can be suppressed inline (``# repro: noqa[RP101]``, or by
family: ``# repro: noqa[RP6]``) or steered via ``[tool.repro-lint]`` in
``pyproject.toml``.  Run as ``repro-lint`` or ``python -m repro.analysis``.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import FileContext, ProjectContext, lint_paths
from repro.analysis.findings import Finding, TraceHop
from repro.analysis.registry import ProjectRule, Rule, all_rules, get_rule, register
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Finding",
    "TraceHop",
    "FileContext",
    "LintConfig",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "load_config",
    "register",
    "render_json",
    "render_text",
]
