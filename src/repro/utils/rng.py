"""Deterministic random-number streams for fault-injection campaigns.

Every stochastic component (fault-site sampling, synthetic datasets,
synthetic weights) draws from a :class:`numpy.random.Generator` derived
from a root seed via ``spawn_key``-style child seeding, so campaigns are
reproducible run-to-run and across process-pool workers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "child_rng", "spawn_rngs"]

#: Library-wide default root seed (campaigns accept explicit seeds too).
DEFAULT_SEED = 0x5C17


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a root generator from ``seed`` (library default if None)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def child_rng(seed: int, *keys: int) -> np.random.Generator:
    """Derive an independent stream identified by integer ``keys``.

    Used to give each injection trial / worker its own reproducible
    stream: ``child_rng(seed, trial_index)``.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=keys))


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child streams from ``seed``."""
    return [child_rng(seed, i) for i in range(n)]
