"""Shared utilities: seeded RNG streams, table rendering, parallel fan-out."""

from repro.utils.ascii_plot import bar_chart, sparkline
from repro.utils.parallel import effective_jobs, map_trials
from repro.utils.rng import child_rng, make_rng, spawn_rngs
from repro.utils.tables import fmt_num, fmt_pct, format_mapping, format_table
from repro.utils.validation import as_f64, check_in, check_positive, check_prob, require

__all__ = [
    "bar_chart",
    "sparkline",
    "effective_jobs",
    "map_trials",
    "child_rng",
    "make_rng",
    "spawn_rngs",
    "fmt_num",
    "fmt_pct",
    "format_mapping",
    "format_table",
    "as_f64",
    "check_in",
    "check_positive",
    "check_prob",
    "require",
]
