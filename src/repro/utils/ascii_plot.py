"""Terminal plotting: horizontal bar charts and sparklines.

The paper's figures are bar/line charts; the experiment harness prints
their data as tables plus these lightweight visualizations so the shape
(which bits spike, where the curve bends) is visible straight from the
terminal without a plotting stack.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["bar_chart", "sparkline"]

#: Eighth-block ramp used by :func:`sparkline`.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    fmt: str = "{:.2%}",
) -> str:
    """Render a horizontal bar chart.

    Args:
        labels: Row labels (stringified).
        values: Non-negative bar magnitudes.
        width: Character width of the longest bar.
        title: Optional heading.
        fmt: Format spec for the printed value.

    Returns:
        Multi-line string; bars scale to the maximum value (an all-zero
        series renders empty bars rather than dividing by zero).
    """
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels for {len(values)} values")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values, default=0.0)
    label_w = max((len(str(l)) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        n = round(width * value / peak) if peak > 0 else 0
        lines.append(f"{str(label):>{label_w}} | {'#' * n}{' ' * (width - n)} {fmt.format(value)}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], lo: float | None = None, hi: float | None = None) -> str:
    """Render a one-line unicode sparkline of ``values``.

    Args:
        values: Series to plot.
        lo, hi: Optional fixed scale bounds (default: the series range).
    """
    vals = list(values)
    if not vals:
        return ""
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = hi - lo
    out = []
    for v in vals:
        if span <= 0:
            idx = 0 if v <= lo else len(_BLOCKS) - 1
        else:
            frac = min(max((v - lo) / span, 0.0), 1.0)
            idx = round(frac * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)
