"""Lightweight argument validation helpers shared across the library."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["require", "check_positive", "check_in", "check_prob", "as_f64"]


def require(cond: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``cond`` holds."""
    if not cond:
        raise ValueError(message)


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    require(value > 0, f"{name} must be positive, got {value}")


def check_in(name: str, value: object, options: Sequence[object]) -> None:
    """Require ``value`` to be one of ``options``."""
    require(value in options, f"{name} must be one of {list(options)}, got {value!r}")


def check_prob(name: str, value: float) -> None:
    """Require ``value`` to be a probability in [0, 1]."""
    require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value}")


def as_f64(x: object) -> np.ndarray:
    """Coerce to a float64 ndarray (no copy if already float64)."""
    return np.asarray(x, dtype=np.float64)
