"""Process-pool fan-out for fault-injection campaigns.

A campaign is thousands of independent single-fault inference runs — an
embarrassingly parallel workload.  ``map_trials`` shards trial indices
across a process pool; each worker rebuilds its (picklable) task object
once and reuses cached golden activations across its shard, following the
fork-once/reuse-state idiom from the HPC guides.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

__all__ = ["effective_jobs", "map_trials"]

_WORKER_TASK = None


def effective_jobs(jobs: int | None) -> int:
    """Resolve a job-count request: None/0 -> all cores, negative -> 1."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    return max(1, jobs)


def _init_worker(task_factory: Callable[[], object]) -> None:
    global _WORKER_TASK
    _WORKER_TASK = task_factory()


def _run_chunk(indices: Sequence[int]) -> list:
    assert _WORKER_TASK is not None, "worker not initialised"
    return [_WORKER_TASK(i) for i in indices]


def map_trials(
    task_factory: Callable[[], Callable[[int], object]],
    n_trials: int,
    jobs: int | None = 1,
    chunk: int = 64,
) -> list:
    """Run ``task(i)`` for ``i in range(n_trials)``, possibly in parallel.

    Args:
        task_factory: Zero-arg callable returning the per-trial callable.
            Invoked once per worker (and once inline when ``jobs == 1``),
            so expensive setup (network construction, golden run) is paid
            per worker rather than per trial.
        n_trials: Number of trials.
        jobs: Worker processes; 1 runs inline (default, deterministic and
            debuggable), None/0 uses every core.
        chunk: Trials per inter-process message.

    Returns:
        List of per-trial results in trial order.
    """
    n_jobs = effective_jobs(jobs)
    if n_jobs == 1 or n_trials <= 1:
        task = task_factory()
        return [task(i) for i in range(n_trials)]

    chunks = [list(range(s, min(s + chunk, n_trials))) for s in range(0, n_trials, chunk)]
    results: list = [None] * n_trials
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(chunks)),
        initializer=_init_worker,
        initargs=(task_factory,),
    ) as pool:
        for idx_chunk, out_chunk in zip(chunks, pool.map(_run_chunk, chunks)):
            for i, out in zip(idx_chunk, out_chunk):
                results[i] = out
    return results
