"""Supervised process-pool fan-out for fault-injection campaigns.

A campaign is thousands of independent single-fault inference runs — an
embarrassingly parallel workload.  ``map_trials`` shards trial indices
across a process pool; each worker rebuilds its (picklable) task object
once and reuses cached golden activations across its shard, following the
fork-once/reuse-state idiom from the HPC guides.

At the paper's scale (~3M injections, Section 4) the pool itself must
survive faults, so the fan-out is *supervised*:

- chunks are submitted as futures with per-chunk deadlines (a hung trial
  cannot stall the campaign forever);
- a crashed worker (``BrokenProcessPool``) triggers a pool rebuild with
  capped exponential backoff instead of aborting;
- failing chunks are retried against a retry budget, then *bisected*
  down to single trials so one poison trial is quarantined as a
  :class:`TrialFailure` instead of taking its chunk-mates down with it;
- when the pool keeps dying before any chunk completes, execution
  degrades gracefully to inline (``jobs=1``) mode.

Inline execution (``jobs=1``) has no crash/hang protection — a trial
that kills or wedges the process kills or wedges the campaign — but
exceptions raised by trials still surface per-trial.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.obs.spans import span

__all__ = ["effective_jobs", "exc_summary", "map_trials", "TrialFailure"]

_WORKER_TASK = None

#: Shortest supervision poll when a deadline is imminent (seconds).
_MIN_TICK = 0.02


def effective_jobs(jobs: int | None) -> int:
    """Resolve a job-count request: None/0 -> all cores.

    Negative values are a caller bug (typically bad CLI arithmetic such
    as ``jobs = cores - reserved`` going below zero) and raise rather
    than being silently coerced to serial execution.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0/None = all cores), got {jobs}")
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs


@dataclass(frozen=True)
class TrialFailure:
    """Sentinel result for a trial the supervised pool could not complete.

    Appears in the ``map_trials`` result list in place of the trial's
    value when the trial raised, crashed its worker, or timed out more
    times than the retry budget allows.

    Attributes:
        index: Trial index the failure stands in for.
        reason: ``"error"`` (trial raised), ``"crash"`` (worker died),
            or ``"timeout"`` (chunk deadline exceeded).
        exc_type: Exception class name for ``"error"`` failures.
        message: Exception message / traceback tail for ``"error"``.
        attempts: Executions attempted before quarantine.
    """

    index: int
    reason: str
    exc_type: str | None = None
    message: str = ""
    attempts: int = 1


@dataclass
class _Chunk:
    """A contiguous slice of trial indices plus its failure history."""

    indices: list[int]
    attempts: int = 0
    #: True once the chunk runs alone for culprit verification: a pool
    #: crash cannot identify which in-flight chunk killed the worker, so
    #: a crash-exhausted singleton is re-run solo — failing alone is
    #: unambiguous guilt, succeeding alone is vindication.
    solo: bool = False
    #: Planner control message for the chunk's round (picklable; applied
    #: via ``task.apply_control`` in whichever worker runs the chunk).
    #: Retries and bisection halves inherit it, so a re-run chunk always
    #: executes under its original round's state.
    ctl: object = None


def _init_worker(task_factory: Callable[[], object]) -> None:
    global _WORKER_TASK
    # Worker-lifetime task cache, rebound exactly once per process at
    # pool start; the sanctioned RP621 exemption (see --explain RP621).
    _WORKER_TASK = task_factory()  # repro: noqa[RP621]


def exc_summary(exc: BaseException, frames: int = 3) -> str:
    """Compact one-string tail of a traceback (innermost ``frames``)."""
    tb = traceback.format_exception(type(exc), exc, exc.__traceback__)
    tail = [line.strip().replace("\n", " | ") for line in tb[-frames:]]
    return " | ".join(tail)[:500]


def _batched(task: object) -> bool:
    """True when a task opts into whole-slice execution.

    A task advertises grouped execution by exposing ``run_many(indices)
    -> list`` (positionally aligned values) and a ``group_size`` attribute
    > 1; the campaign's batched-propagation task is the motivating
    implementation.  Everything else runs one index per call.
    """
    return (
        getattr(task, "group_size", 1) > 1
        and callable(getattr(task, "run_many", None))
    )


def _run_slice(task, indices: Sequence[int]) -> list[tuple] | None:
    """Run a whole index slice via ``task.run_many``; None = fall back.

    ``run_many`` implementations are expected to quarantine per-trial
    failures internally (returning error *values*); an exception escaping
    the whole slice is treated as "batching itself is broken" and sends
    the slice down the per-trial path instead.
    """
    try:
        values = task.run_many(list(indices))
    except Exception:
        return None
    return [("ok", i, v) for i, v in zip(indices, values)]


def _apply_ctl(task: object, ctl: object) -> None:
    """Install a round's control message on a task, when both exist.

    Control messages *replace* prior state (see the campaign task's
    ``apply_control``), so a worker that served round ``w`` and is then
    handed round ``w+2`` holds exactly round ``w+2``'s state — workers
    are interchangeable and chunk placement stays outcome-neutral.
    """
    if ctl is None:
        return
    apply = getattr(task, "apply_control", None)
    if callable(apply):
        apply(ctl)


def _close_task(task: object) -> None:
    """Best-effort ``task.close()`` (shared-memory views and the like)."""
    close = getattr(task, "close", None)
    if callable(close):
        try:
            close()
        except Exception:
            pass


def _run_chunk(indices: Sequence[int], ctl: object = None) -> list:
    """Worker body: run each trial, capturing per-trial exceptions.

    Returns ``("ok", i, value)`` / ``("err", i, exc_type, summary)``
    tuples so one raising trial does not poison its chunk-mates and the
    supervisor can tell a raising trial from a crashed worker.  When the
    task exposes ``collect_obs()``, its per-chunk observability delta
    (metric snapshot) rides along as a final ``("obs", payload)`` tuple:
    snapshot and results travel in the same message, so a crashed or
    timed-out chunk loses both together and re-running it can never
    double-count a trial's metrics.

    Tasks that opt in (see :func:`_batched`) receive the whole chunk via
    ``run_many`` so they can propagate grouped trials in one batched
    forward pass.
    """
    assert _WORKER_TASK is not None, "worker not initialised"
    _apply_ctl(_WORKER_TASK, ctl)
    out: list[tuple] | None = None
    with span("chunk"):
        if _batched(_WORKER_TASK):
            out = _run_slice(_WORKER_TASK, indices)
        if out is None:
            out = []
            for i in indices:
                try:
                    out.append(("ok", i, _WORKER_TASK(i)))
                except Exception as exc:
                    out.append(("err", i, type(exc).__name__, exc_summary(exc)))
    collect = getattr(_WORKER_TASK, "collect_obs", None)
    if callable(collect):
        out.append(("obs", collect()))
    return out


def _emit(on_event: Callable[[str, dict], None] | None, kind: str, **detail) -> None:
    if on_event is not None:
        on_event(kind, detail)


class _Supervisor:
    """Drives chunks through a rebuildable pool until all trials resolve."""

    def __init__(
        self,
        task_factory: Callable[[], Callable[[int], object]],
        indices: Sequence[int],
        n_jobs: int,
        chunk: int,
        timeout: float | None,
        timeout_grace: float,
        max_retries: int,
        max_rebuilds: int,
        backoff_base: float,
        backoff_cap: float,
        on_event: Callable[[str, dict], None] | None,
        on_result: Callable[[int, object], None] | None,
        on_obs: Callable[[object], None] | None = None,
        plan: Callable[[], tuple[Sequence[int], object] | None] | None = None,
    ):
        self.task_factory = task_factory
        self.n_jobs = n_jobs
        self.chunk = chunk
        self.timeout = timeout
        self.timeout_grace = timeout_grace
        self.max_retries = max_retries
        self.max_rebuilds = max_rebuilds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.on_event = on_event
        self.on_result = on_result
        self.on_obs = on_obs
        self.plan = plan

        self.results: dict[int, object] = {}
        self.pending: deque[_Chunk] = deque()
        self.probation: deque[_Chunk] = deque()
        self.in_flight: dict[Future, tuple[_Chunk, float | None]] = {}
        self.error_attempts: dict[int, int] = {}
        self.pool: ProcessPoolExecutor | None = None
        self.consecutive_rebuilds = 0
        self.ever_succeeded = False
        self.degraded = False
        self.inline_task: object | None = None
        if plan is None:
            self._enqueue(indices, None)

    def _enqueue(self, indices: Sequence[int], ctl: object) -> None:
        indices = list(indices)
        self.pending.extend(
            _Chunk(indices[s : s + self.chunk], ctl=ctl)
            for s in range(0, len(indices), self.chunk)
        )

    # -- bookkeeping ------------------------------------------------------ #
    def _record(self, index: int, value: object) -> None:
        self.results[index] = value
        if self.on_result is not None:
            self.on_result(index, value)

    def _quarantine(self, index: int, reason: str, attempts: int,
                    exc_type: str | None = None, message: str = "") -> None:
        _emit(self.on_event, "quarantine", index=index, reason=reason, attempts=attempts)
        self._record(index, TrialFailure(
            index=index, reason=reason, exc_type=exc_type, message=message, attempts=attempts,
        ))

    def _requeue_or_bisect(self, c: _Chunk, reason: str) -> None:
        """Give a failed chunk another try, split it, or quarantine it."""
        span = (c.indices[0], c.indices[-1])
        if c.solo:
            # It failed while running alone: unambiguous culprit.
            self._quarantine(c.indices[0], reason, c.attempts)
        elif c.attempts <= self.max_retries:
            _emit(self.on_event, "retry", span=span, attempt=c.attempts, reason=reason)
            self.pending.append(c)
        elif len(c.indices) > 1:
            mid = len(c.indices) // 2
            _emit(self.on_event, "bisect", span=span, reason=reason)
            # Fresh budgets: each half gets a fair chance to prove the
            # poison trial lives in the other half.
            self.pending.appendleft(_Chunk(c.indices[mid:], ctl=c.ctl))
            self.pending.appendleft(_Chunk(c.indices[:mid], ctl=c.ctl))
        elif reason == "crash":
            # A crash cannot be attributed: this singleton's budget may
            # have been burned by a chunk-mate's worker dying.  Re-run it
            # alone so guilt or innocence is observed directly.
            c.solo = True
            _emit(self.on_event, "retry", span=span, attempt=c.attempts, reason="probation")
            self.probation.append(c)
        else:
            self._quarantine(c.indices[0], reason, c.attempts)

    # -- pool lifecycle ---------------------------------------------------- #
    def _build_pool(self) -> None:
        if self.consecutive_rebuilds:
            delay = min(
                self.backoff_cap,
                self.backoff_base * (2 ** (self.consecutive_rebuilds - 1)),
            )
            _emit(self.on_event, "rebuild",
                  consecutive=self.consecutive_rebuilds, backoff=delay)
            # A real wall-clock pause between pool rebuilds: backoff must
            # scale with elapsed time, not with seeded campaign state.
            time.sleep(delay)  # repro: noqa[RP104]
        self.pool = ProcessPoolExecutor(
            max_workers=self.n_jobs,
            initializer=_init_worker,
            initargs=(self.task_factory,),
        )

    def _teardown_pool(self, kill: bool) -> None:
        if self.pool is None:
            return
        if kill:
            # A hung worker never answers a cooperative shutdown; SIGTERM
            # the worker processes so the executor releases its futures.
            procs = getattr(self.pool, "_processes", None) or {}
            for proc in list(procs.values()):
                proc.terminate()
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = None

    def _reclaim_in_flight(self, reason: str, *, blame: bool) -> None:
        """Return every in-flight chunk to the queue after a pool death."""
        for fut, (c, _) in list(self.in_flight.items()):
            if blame:
                # The culprit cannot be identified after a crash, so every
                # in-flight chunk takes the hit; innocents that exhaust
                # their budget are bisected, not lost.
                c.attempts += 1
                self._requeue_or_bisect(c, reason)
            else:
                self.pending.append(c)
        self.in_flight.clear()

    # -- degraded inline mode ---------------------------------------------- #
    def _degrade_inline(self) -> None:
        self.pending.extend(self.probation)
        self.probation.clear()
        if not self.degraded:
            self.degraded = True
            _emit(self.on_event, "degrade",
                  remaining=sum(len(c.indices) for c in self.pending))
        if self.inline_task is None:
            # Built once and reused across planner rounds: degradation is
            # sticky for the rest of the map, so setup is paid once.
            self.inline_task = self.task_factory()
        task = self.inline_task
        while self.pending:
            c = self.pending.popleft()
            _apply_ctl(task, c.ctl)
            with span("chunk"):
                batched = _run_slice(task, c.indices) if _batched(task) else None
                if batched is not None:
                    for _, i, value in batched:
                        self._record(i, value)
                    continue
                for i in c.indices:
                    try:
                        self._record(i, task(i))
                    except Exception as exc:
                        self._quarantine(i, "error", c.attempts + 1,
                                         exc_type=type(exc).__name__, message=exc_summary(exc))
        collect = getattr(task, "collect_obs", None)
        if callable(collect) and self.on_obs is not None:
            self.on_obs(collect())

    # -- completed-future processing --------------------------------------- #
    def _absorb(self, payload: list, ctl: object = None) -> None:
        for item in payload:
            if item[0] == "ok":
                _, i, value = item
                self._record(i, value)
            elif item[0] == "obs":
                if self.on_obs is not None:
                    self.on_obs(item[1])
            else:
                _, i, exc_type, message = item
                attempts = self.error_attempts.get(i, 0) + 1
                self.error_attempts[i] = attempts
                if attempts > self.max_retries:
                    self._quarantine(i, "error", attempts, exc_type=exc_type, message=message)
                else:
                    _emit(self.on_event, "retry", span=(i, i), attempt=attempts,
                          reason="error", exc_type=exc_type)
                    self.pending.append(_Chunk([i], attempts=attempts, ctl=ctl))

    # -- main loop ---------------------------------------------------------- #
    def run(self) -> dict[int, object]:
        try:
            if self.plan is None:
                self._run_round()
            else:
                # Planner mode: each round is released only after the
                # previous one fully resolved — the barrier that makes
                # the planner's decisions a pure function of the trial
                # prefix, independent of jobs/chunk/arrival order.
                while True:
                    nxt = self.plan()
                    if nxt is None:
                        break
                    round_indices, ctl = nxt
                    self._enqueue(round_indices, ctl)
                    self._run_round()
        finally:
            self._teardown_pool(kill=False)
            if self.inline_task is not None:
                _close_task(self.inline_task)
                self.inline_task = None
        return self.results

    def _run_round(self) -> None:
        if self.degraded:
            self._degrade_inline()
            return
        while self.pending or self.probation or self.in_flight:
            if self.pool is None:
                # Degrade only when the pool has NEVER completed a
                # chunk — i.e. pool execution itself is broken.  Once
                # any chunk has succeeded, crashes are chunk-induced
                # and bisection/solo-probation will isolate them;
                # running a crashing trial inline would kill the
                # parent process.
                if self.consecutive_rebuilds > self.max_rebuilds and not self.ever_succeeded:
                    self._degrade_inline()
                    break
                self._build_pool()
            try:
                self._top_up()
                broken = self._drain()
            except BrokenProcessPool:
                self._reclaim_in_flight("crash", blame=True)
                broken = True
            if broken:
                self.consecutive_rebuilds += 1
                self._teardown_pool(kill=False)

    def _top_up(self) -> None:
        """Keep at most ``n_jobs`` chunks in flight.

        Submitting one chunk per worker keeps submit-time ≈ start-time,
        so per-chunk deadlines measure execution, not queueing.
        """
        assert self.pool is not None
        if any(c.solo for c, _ in self.in_flight.values()):
            return  # a solo verification run owns the pool
        while self.pending or self.probation:
            if self.probation:
                if self.in_flight:
                    return  # drain shared work before the next solo run
                c = self.probation.popleft()
            elif len(self.in_flight) < self.n_jobs:
                c = self.pending.popleft()
            else:
                return
            deadline = None
            if self.timeout is not None:
                deadline = (
                    time.perf_counter() + self.timeout * len(c.indices) + self.timeout_grace
                )
            try:
                fut = self.pool.submit(_run_chunk, c.indices, c.ctl)
            except (BrokenProcessPool, RuntimeError):
                queue = self.probation if c.solo else self.pending
                queue.appendleft(c)
                raise BrokenProcessPool("pool broke on submit")
            self.in_flight[fut] = (c, deadline)
            if c.solo:
                return

    def _drain(self) -> bool:
        """Wait for progress; returns True when the pool must be rebuilt."""
        now = time.perf_counter()
        deadlines = [d for _, d in self.in_flight.values() if d is not None]
        tick = None
        if deadlines:
            tick = max(_MIN_TICK, min(deadlines) - now)
        done, _ = wait(set(self.in_flight), timeout=tick, return_when=FIRST_COMPLETED)

        broken = False
        for fut in done:
            c, _ = self.in_flight.pop(fut)
            try:
                payload = fut.result()
            except BrokenProcessPool:
                broken = True
                c.attempts += 1
                self._requeue_or_bisect(c, "crash")
                continue
            except Exception:
                # Infrastructure failure outside the trial (e.g. the
                # result failed to unpickle): treat like a chunk fault.
                c.attempts += 1
                self._requeue_or_bisect(c, "crash")
                continue
            self.consecutive_rebuilds = 0
            self.ever_succeeded = True
            self._absorb(payload, c.ctl)
        if broken:
            self._reclaim_in_flight("crash", blame=True)
            return True

        # Deadline sweep: a chunk past its deadline means a wedged
        # worker; the only portable remedy is killing the whole pool.
        now = time.perf_counter()
        expired = {
            fut
            for fut, (c, d) in self.in_flight.items()
            # A future that finished between wait() and this sweep is not
            # hung; its result is collected on the next drain.
            if d is not None and now > d and not fut.done()
        }
        if expired:
            for fut in expired:
                c, _ = self.in_flight[fut]
                _emit(self.on_event, "timeout",
                      span=(c.indices[0], c.indices[-1]), attempt=c.attempts + 1)
            self._teardown_pool(kill=True)
            for fut in expired:
                c, _ = self.in_flight.pop(fut)
                c.attempts += 1
                self._requeue_or_bisect(c, "timeout")
            # Chunks that had not expired were victims of our own pool
            # kill: requeue them without burning retry budget.
            self._reclaim_in_flight("timeout", blame=False)
            self.consecutive_rebuilds += 1
        return False


def _run_inline(task, indices: Sequence[int], chunk: int,
                on_result: Callable[[int, object], None] | None) -> list:
    """Run ``indices`` through a task in this process (no supervision)."""
    results: list = []
    if _batched(task) and len(indices) > 1:
        # Chunk-sized slices bound how many prepared-but-unpropagated
        # corruptions are held at once and keep on_result streaming.
        for s in range(0, len(indices), chunk):
            part = list(indices[s : s + chunk])
            with span("chunk"):
                batched = _run_slice(task, part)
            for i, value in (
                ((i, v) for _, i, v in batched)
                if batched is not None
                else ((i, task(i)) for i in part)
            ):
                if on_result is not None:
                    on_result(i, value)
                results.append(value)
    else:
        with span("chunk"):
            for i in indices:
                value = task(i)
                if on_result is not None:
                    on_result(i, value)
                results.append(value)
    return results


def map_trials(
    task_factory: Callable[[], Callable[[int], object]],
    n_trials: int,
    jobs: int | None = 1,
    chunk: int = 64,
    *,
    indices: Sequence[int] | None = None,
    plan: Callable[[], tuple[Sequence[int], object] | None] | None = None,
    timeout: float | None = None,
    timeout_grace: float = 5.0,
    max_retries: int = 2,
    max_rebuilds: int = 3,
    backoff_base: float = 0.5,
    backoff_cap: float = 8.0,
    on_event: Callable[[str, dict], None] | None = None,
    on_result: Callable[[int, object], None] | None = None,
    on_obs: Callable[[object], None] | None = None,
) -> list:
    """Run ``task(i)`` for each trial index, possibly in parallel, supervised.

    Args:
        task_factory: Zero-arg callable returning the per-trial callable.
            Invoked once per worker (and once inline when ``jobs == 1``),
            so expensive setup (network construction, golden run) is paid
            per worker rather than per trial.
        n_trials: Number of trials (ignored when ``indices`` is given).
        jobs: Worker processes; 1 runs inline (default, deterministic and
            debuggable), None/0 uses every core, negative raises.
        chunk: Trials per inter-process message (must be >= 1).
        indices: Explicit trial indices to run instead of
            ``range(n_trials)`` (checkpoint resume runs the gap set).
        plan: Round scheduler (statistical early stopping builds on
            this).  Called with no arguments; returns ``(indices, ctl)``
            for the next round, or None when the map is finished.  Each
            round runs to full resolution before the next ``plan()``
            call — a deterministic barrier — and ``ctl`` (a small
            picklable message) is installed on the executing task via
            ``task.apply_control(ctl)`` before any of the round's trials
            run, including on retries, bisection halves and degraded
            inline execution.  When given, ``n_trials``/``indices`` are
            ignored.
        timeout: Per-trial time budget in seconds; a chunk's deadline is
            ``timeout * len(chunk) + timeout_grace``.  None disables
            deadlines.  Ignored inline (a wedged trial cannot be killed
            from within its own process).
        timeout_grace: Flat per-chunk allowance covering worker startup
            (network build + golden inference happen on first use).
        max_retries: Extra attempts per chunk (crash/timeout) or per
            raising trial before bisection/quarantine.
        max_rebuilds: Consecutive pool rebuilds without any completed
            chunk before degrading to inline execution.
        backoff_base: First rebuild backoff delay (seconds); doubles per
            consecutive rebuild up to ``backoff_cap``.
        backoff_cap: Backoff ceiling (seconds).
        on_event: Observer callback ``(kind, detail)`` for supervision
            events: ``retry``, ``rebuild``, ``timeout``, ``bisect``,
            ``quarantine``, ``degrade``.
        on_result: Streaming callback ``(index, value)`` fired as each
            trial resolves (out of order in parallel mode) — the hook
            campaign checkpointing builds on.
        on_obs: Callback receiving each worker's per-chunk observability
            payload (``task.collect_obs()`` — typically a metric-snapshot
            delta; see :mod:`repro.obs.metrics`).  Payloads arrive in
            completion order; merging must therefore be commutative.
            Inline execution delivers one final payload.

    Returns:
        Per-trial results in trial-index order.  A trial the supervisor
        could not complete yields a :class:`TrialFailure` in its slot;
        callers that want raw failures to propagate should check for it.
    """
    n_jobs = effective_jobs(jobs)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    if indices is None:
        indices = range(n_trials)
    indices = list(indices)

    if plan is not None and n_jobs == 1:
        task = task_factory()
        try:
            results = []
            while True:
                nxt = plan()
                if nxt is None:
                    break
                round_indices, ctl = nxt
                _apply_ctl(task, ctl)
                results.extend(_run_inline(task, list(round_indices), chunk, on_result))
            collect = getattr(task, "collect_obs", None)
            if callable(collect) and on_obs is not None:
                on_obs(collect())
        finally:
            _close_task(task)
        return results

    if plan is None and (n_jobs == 1 or len(indices) <= 1):
        task = task_factory()
        try:
            results = _run_inline(task, indices, chunk, on_result)
            collect = getattr(task, "collect_obs", None)
            if callable(collect) and on_obs is not None:
                on_obs(collect())
        finally:
            _close_task(task)
        return results

    supervisor = _Supervisor(
        task_factory=task_factory,
        indices=indices,
        n_jobs=(
            n_jobs
            if plan is not None
            else min(n_jobs, max(1, (len(indices) + chunk - 1) // chunk))
        ),
        chunk=chunk,
        timeout=timeout,
        timeout_grace=timeout_grace,
        max_retries=max_retries,
        max_rebuilds=max_rebuilds,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        on_event=on_event,
        on_result=on_result,
        on_obs=on_obs,
        plan=plan,
    )
    resolved = supervisor.run()
    if plan is not None:
        return [resolved[i] for i in sorted(resolved)]
    return [resolved[i] for i in indices]
