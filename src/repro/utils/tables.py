"""Plain-text table rendering for the experiment harness.

Experiments print paper-style rows; this keeps formatting in one place so
every table/figure reproduction looks uniform in the terminal and in
EXPERIMENTS.md transcripts.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_mapping", "fmt_pct", "fmt_num"]


def fmt_pct(x: float, digits: int = 2) -> str:
    """Format a probability as a percentage string, e.g. ``0.0719 -> '7.19%'``."""
    return f"{100.0 * x:.{digits}f}%"


def fmt_num(x: float, digits: int = 4) -> str:
    """Format a number compactly, switching to scientific for extremes."""
    if x == 0:
        return "0"
    ax = abs(x)
    if ax >= 10 ** (digits + 2) or ax < 10 ** (-digits):
        return f"{x:.{digits}g}"
    return f"{x:.{digits}g}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: Column names.
        rows: Row cell values (stringified with ``str``).
        title: Optional heading printed above the table.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, object], title: str | None = None) -> str:
    """Render a key/value mapping as a two-column table."""
    return format_table(["key", "value"], list(mapping.items()), title=title)
