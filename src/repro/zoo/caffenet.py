"""CaffeNet: the BVLC reference network (Table 2, row 3).

Identical to AlexNet except for the order of ReLU/pooling vs. LRN within
the first two blocks (paper section 4.1): CaffeNet pools *before*
normalizing.
"""

from __future__ import annotations

from repro.nn.network import Network
from repro.zoo.alexnet import build_alexnet

__all__ = ["build_caffenet"]


def build_caffenet(scale: str = "reduced") -> Network:
    """Construct CaffeNet at the requested scale, untrained/uncalibrated."""
    return build_alexnet(scale=scale, lrn_before_pool=False, name="CaffeNet")
