"""Synthetic image corpora standing in for CIFAR-10 and ImageNet.

The paper evaluates on CIFAR-10 (ConvNet) and ImageNet (AlexNet,
CaffeNet, NiN).  Neither dataset is available offline, and SDC metrics
only compare a network's faulty output against its *own* golden output on
the *same* input — so what matters is (a) input statistics (dynamic range
and spatial correlation matching mean-subtracted natural images) and
(b) for the trained ConvNet, a genuinely learnable class structure.

Two generators are provided:

- :func:`synthetic_cifar`: a 10-class, 32x32x3 task built from per-class
  frequency/orientation templates plus instance noise and jitter —
  learnable by a small CNN yet non-trivial.
- :func:`imagenet_like`: mean-subtracted natural-image-statistics inputs
  (1/f-spectrum noise scaled to the pixel range of mean-subtracted RGB,
  roughly [-120, 135]) for the inference-only ImageNet networks.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import child_rng

__all__ = ["synthetic_cifar", "imagenet_like", "class_templates"]

#: Number of classes in the synthetic CIFAR-like task.
CIFAR_CLASSES = 10

#: Pixel range of mean-subtracted 8-bit images (BVLC Caffe convention).
IMAGENET_PIXEL_LO = -120.0
IMAGENET_PIXEL_HI = 135.0


def class_templates(size: int = 32, seed: int = 1234) -> np.ndarray:
    """Deterministic per-class template images, shape ``(10, 3, size, size)``.

    Each class combines an oriented sinusoidal grating (distinct frequency
    and angle), a class-colored disk at a class-specific position, and a
    fixed random texture — enough structure that a 3-conv CNN separates
    the classes, like CIFAR-10's object categories.
    """
    rng = child_rng(seed, 0)
    yy, xx = np.meshgrid(np.linspace(-1, 1, size), np.linspace(-1, 1, size), indexing="ij")
    templates = np.empty((CIFAR_CLASSES, 3, size, size), dtype=np.float64)
    for k in range(CIFAR_CLASSES):
        angle = np.pi * k / CIFAR_CLASSES
        freq = 2.0 + 0.7 * k
        grating = np.sin(freq * np.pi * (xx * np.cos(angle) + yy * np.sin(angle)))
        cy, cx = 0.8 * np.cos(2 * np.pi * k / CIFAR_CLASSES), 0.8 * np.sin(2 * np.pi * k / CIFAR_CLASSES)
        disk = ((yy - cy) ** 2 + (xx - cx) ** 2 < 0.15).astype(np.float64)
        texture = rng.normal(0.0, 0.25, (3, size, size))
        color = rng.uniform(-1.0, 1.0, 3)
        for ch in range(3):
            templates[k, ch] = 0.8 * grating + color[ch] * disk + texture[ch]
    return templates


def synthetic_cifar(
    n: int,
    seed: int = 0,
    size: int = 32,
    noise: float = 0.7,
    max_shift: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the synthetic CIFAR-like task.

    Args:
        n: Number of images.
        seed: RNG seed (images are deterministic per seed).
        size: Spatial extent.
        noise: Instance-noise standard deviation.
        max_shift: Maximum circular translation jitter in pixels.

    Returns:
        ``(images, labels)`` with images ``(n, 3, size, size)`` roughly in
        [-2, 2] and integer labels in ``[0, 10)``.
    """
    rng = child_rng(seed, 1)
    templates = class_templates(size=size)
    labels = rng.integers(0, CIFAR_CLASSES, n)
    images = templates[labels].copy()
    shifts = rng.integers(-max_shift, max_shift + 1, (n, 2))
    for i in range(n):
        images[i] = np.roll(images[i], tuple(shifts[i]), axis=(1, 2))
    images += rng.normal(0.0, noise, images.shape)
    return images, labels.astype(np.int64)


def _pink_noise(rng: np.random.Generator, c: int, h: int, w: int) -> np.ndarray:
    """Spatially-correlated noise with an approximately 1/f spectrum."""
    fy = np.fft.fftfreq(h)[:, None]
    fx = np.fft.fftfreq(w)[None, :]
    radius = np.sqrt(fy * fy + fx * fx)
    radius[0, 0] = 1.0  # leave DC finite
    spectrum = 1.0 / radius
    out = np.empty((c, h, w), dtype=np.float64)
    for ch in range(c):
        phase = rng.uniform(0, 2 * np.pi, (h, w))
        field = np.fft.ifft2(spectrum * np.exp(1j * phase)).real
        field -= field.mean()
        std = field.std()
        out[ch] = field / std if std > 0 else field
    return out


def imagenet_like(
    n: int,
    size: int = 227,
    seed: int = 0,
) -> np.ndarray:
    """Mean-subtracted natural-statistics inputs for the ImageNet networks.

    Returns images of shape ``(n, 3, size, size)`` whose values span the
    mean-subtracted 8-bit pixel range (about [-120, 135]), giving the
    first convolution the same input dynamic range as the paper's
    pipeline (Table 4's layer-1 ranges of several hundred follow from
    this scale times the kernel fan-in).
    """
    rng = child_rng(seed, 2)
    images = np.empty((n, 3, size, size), dtype=np.float64)
    span = IMAGENET_PIXEL_HI - IMAGENET_PIXEL_LO
    for i in range(n):
        field = _pink_noise(rng, 3, size, size)
        # Map ~N(0,1) correlated noise onto the pixel range, clipping the
        # tails like a real sensor does.
        pix = np.clip(field, -2.5, 2.5) / 5.0 + 0.5  # -> [0, 1]
        images[i] = IMAGENET_PIXEL_LO + span * pix
    return images
