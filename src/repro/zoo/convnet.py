"""ConvNet: the cuda-convnet CIFAR-10 network (Table 2, row 1).

Topology: 3 CONV + 2 FC, 10 output candidates, softmax head, no
normalization layers — the paper's shallowest and most SDC-prone network.
Unlike the ImageNet networks, ConvNet is small enough to genuinely train
on the synthetic CIFAR task, so its weights are *learned*.
"""

from __future__ import annotations

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from repro.nn.network import Network

__all__ = ["build_convnet"]


def build_convnet(scale: str = "reduced") -> Network:
    """Construct ConvNet (untrained).

    ConvNet is already laptop-scale, so ``reduced`` and ``full`` are the
    same topology (kept for interface symmetry with the ImageNet nets).
    """
    if scale not in ("reduced", "full"):
        raise ValueError(f"unknown scale {scale!r}")
    layers = [
        Conv2D("conv1", 3, 32, 5, stride=1, pad=2),
        ReLU("relu1"),
        MaxPool2D("pool1", 3, stride=2),
        Conv2D("conv2", 32, 32, 5, stride=1, pad=2),
        ReLU("relu2"),
        MaxPool2D("pool2", 3, stride=2),
        Conv2D("conv3", 32, 64, 5, stride=1, pad=2),
        ReLU("relu3"),
        MaxPool2D("pool3", 3, stride=2),
        Flatten("flatten"),
        Dense("fc4", 64 * 3 * 3, 64),
        ReLU("relu4"),
        Dense("fc5", 64, 10),
        Softmax("softmax"),
    ]
    return Network(
        "ConvNet", layers, input_shape=(3, 32, 32), dataset="CIFAR-10 (synthetic)"
    )
