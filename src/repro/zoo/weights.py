"""Synthetic pre-trained weights, calibrated against the paper's Table 4.

The BVLC pre-trained Caffe models are not available offline, so the
ImageNet networks use deterministic He-initialized weights whose per-layer
gains are then *calibrated* so the error-free activation dynamic range of
every block matches the range the paper measured for the real weights
(Table 4).  Error propagation in the paper is governed by exactly these
ranges — faults are SDC-prone when they push a value far outside the
layer's natural range — so matching them preserves the propagation physics
(see DESIGN.md, substitutions).

ConvNet is handled differently: it is small enough to genuinely train on
the synthetic CIFAR task (:mod:`repro.nn.training`), which reproduces the
paper's "shallow network with few output candidates" behaviour for real.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.nn.network import Network
from repro.nn.profiling import profile_ranges
from repro.utils.rng import child_rng

__all__ = ["TABLE4_RANGES", "he_init", "calibrate_to_ranges", "max_abs_targets"]

#: Paper Table 4: error-free (min, max) ACT range per layer per network.
TABLE4_RANGES: dict[str, list[tuple[float, float]]] = {
    "AlexNet": [
        (-691.813, 662.505),
        (-228.296, 224.248),
        (-89.051, 98.62),
        (-69.245, 145.674),
        (-36.4747, 133.413),
        (-78.978, 43.471),
        (-15.043, 11.881),
        (-5.542, 15.775),
    ],
    "CaffeNet": [
        (-869.349, 608.659),
        (-406.859, 156.569),
        (-73.4652, 88.5085),
        (-46.3215, 85.3181),
        (-43.9878, 155.383),
        (-81.1167, 38.9238),
        (-14.6536, 10.4386),
        (-5.81158, 15.0622),
    ],
    "NiN": [
        (-738.199, 714.962),
        (-401.86, 1267.8),
        (-397.651, 1388.88),
        (-1041.76, 875.372),
        (-684.957, 1082.81),
        (-249.48, 1244.37),
        (-737.845, 940.277),
        (-459.292, 584.412),
        (-162.314, 437.883),
        (-258.273, 283.789),
        (-124.001, 140.006),
        (-26.4835, 88.1108),
    ],
    "ConvNet": [
        (-1.45216, 1.38183),
        (-2.16061, 1.71745),
        (-1.61843, 1.37389),
        (-3.08903, 4.94451),
        (-9.24791, 11.8078),
    ],
}


def max_abs_targets(network_name: str) -> list[float]:
    """Per-block calibration targets: ``max(|lo|, |hi|)`` from Table 4."""
    try:
        ranges = TABLE4_RANGES[network_name]
    except KeyError:
        raise KeyError(f"no Table 4 ranges for {network_name!r}") from None
    return [max(abs(lo), abs(hi)) for lo, hi in ranges]


def he_init(network: Network, seed: int = 7) -> None:
    """He-initialize every MAC layer of ``network`` in place.

    Weights are N(0, sqrt(2/fan_in)); biases are small positive values,
    matching common CNN initialization.  Deterministic per (network name,
    seed, layer index).
    """
    name_key = zlib.crc32(network.name.encode()) & 0xFFFF
    for j, i in enumerate(network.mac_layer_indices()):
        layer = network.layers[i]
        rng = child_rng(seed, name_key, j)
        w = layer.params()["weight"]
        fan_in = int(np.prod(w.shape[1:]))
        w[:] = rng.normal(0.0, np.sqrt(2.0 / fan_in), w.shape)
        layer.params()["bias"][:] = 0.01
    network.invalidate_weight_caches()


def calibrate_to_ranges(
    network: Network,
    probe_inputs: np.ndarray,
    targets: list[float] | None = None,
    iterations: int = 2,
) -> list[float]:
    """Scale MAC-layer weights so block ACT ranges match Table 4.

    Blocks are calibrated in order; since scaling layer *b* changes the
    inputs of every later block (and LRN responds nonlinearly), a second
    sweep refines the gains.

    Args:
        network: Network to calibrate in place (weights already
            initialized).
        probe_inputs: Representative input batch ``(n, *input_shape)``.
        targets: Per-block max-|ACT| targets; defaults to the paper's
            Table 4 values for ``network.name``.
        iterations: Calibration sweeps.

    Returns:
        The achieved per-block max-|ACT| values after calibration.
    """
    if targets is None:
        targets = max_abs_targets(network.name)
    mac_idx = network.mac_layer_indices()
    if len(targets) != len(mac_idx):
        raise ValueError(
            f"{network.name}: {len(targets)} targets for {len(mac_idx)} MAC blocks"
        )
    for _ in range(iterations):
        profile = profile_ranges(network, probe_inputs, dtype=None, scope="all")
        # One profiling pass per sweep: conv/ReLU/pool blocks are
        # positively homogeneous, so after scaling blocks 1..b-1 the input
        # of block b is multiplied by the cumulative gain `cascade`, and
        # its observed range by the same factor.  LRN breaks homogeneity;
        # the extra sweeps absorb that residual.
        cascade = 1.0
        for b, li in enumerate(mac_idx, start=1):
            observed = max(abs(profile.ranges[b].lo), abs(profile.ranges[b].hi))
            effective = observed * cascade
            if effective <= 0:
                continue
            gain = targets[b - 1] / effective
            layer = network.layers[li]
            layer.params()["weight"] *= gain
            layer.params()["bias"] *= gain
            cascade *= gain
        network.invalidate_weight_caches()
    final = profile_ranges(network, probe_inputs, dtype=None, scope="all")
    return [
        max(abs(final.ranges[b].lo), abs(final.ranges[b].hi))
        for b in range(1, len(mac_idx) + 1)
    ]
