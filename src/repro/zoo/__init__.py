"""The paper's four networks (Table 2) with synthetic calibrated weights."""

from repro.zoo.alexnet import ALEXNET_SCALES, build_alexnet
from repro.zoo.caffenet import build_caffenet
from repro.zoo.convnet import build_convnet
from repro.zoo.datasets import class_templates, imagenet_like, synthetic_cifar
from repro.zoo.nin import NIN_SCALES, build_nin
from repro.zoo.registry import (
    NETWORKS,
    clear_cache,
    describe_networks,
    eval_inputs,
    get_network,
)
from repro.zoo.weights import TABLE4_RANGES, calibrate_to_ranges, he_init, max_abs_targets

__all__ = [
    "ALEXNET_SCALES",
    "NIN_SCALES",
    "build_alexnet",
    "build_caffenet",
    "build_convnet",
    "build_nin",
    "class_templates",
    "imagenet_like",
    "synthetic_cifar",
    "NETWORKS",
    "clear_cache",
    "describe_networks",
    "eval_inputs",
    "get_network",
    "TABLE4_RANGES",
    "calibrate_to_ranges",
    "he_init",
    "max_abs_targets",
]
