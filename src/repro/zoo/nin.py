"""Network-in-Network (Lin et al.): 12 CONV layers, no FC, no softmax.

Four stages, each a spatial convolution followed by two 1x1 "mlpconv"
layers; the classifier is a global average pool over 1000 channel maps.
Because there is no softmax the output has rankings but no confidence
scores, so the SDC-10%/-20% outcome classes are undefined for NiN
(paper sections 4.1 and 5.1.1).
"""

from __future__ import annotations

from repro.nn.layers import Conv2D, GlobalAvgPool, MaxPool2D, ReLU
from repro.nn.network import Network

__all__ = ["build_nin", "NIN_SCALES"]

#: Geometry per scale: (input_size, stage channels s1..s4).
NIN_SCALES: dict[str, tuple[int, tuple[int, int, int, int]]] = {
    "full": (227, (96, 256, 384, 1024)),
    "reduced": (115, (32, 48, 64, 96)),
}


def build_nin(scale: str = "reduced") -> Network:
    """Construct NiN at the requested scale, untrained/uncalibrated."""
    try:
        input_size, (s1, s2, s3, s4) = NIN_SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; options: {sorted(NIN_SCALES)}") from None

    def stage(idx: int, cin: int, cout: int, kernel: int, stride: int, pad: int, pool: bool) -> list:
        base = 3 * (idx - 1)
        layers: list = [
            Conv2D(f"conv{idx}", cin, cout, kernel, stride=stride, pad=pad),
            ReLU(f"relu{base + 1}"),
            Conv2D(f"cccp{base + 1}", cout, cout, 1),
            ReLU(f"relu{base + 2}"),
        ]
        # Final 1x1 of the last stage maps onto the 1000 output channels.
        out = 1000 if idx == 4 else cout
        layers += [Conv2D(f"cccp{base + 2}", cout, out, 1), ReLU(f"relu{base + 3}")]
        if pool:
            layers.append(MaxPool2D(f"pool{idx}", 3, stride=2))
        return layers

    layers = (
        stage(1, 3, s1, 11, 4, 0, pool=True)
        + stage(2, s1, s2, 5, 1, 2, pool=True)
        + stage(3, s2, s3, 3, 1, 1, pool=True)
        + stage(4, s3, s4, 3, 1, 1, pool=False)
        + [GlobalAvgPool("gap")]
    )
    return Network(
        "NiN",
        layers,
        input_shape=(3, input_size, input_size),
        dataset="ImageNet (synthetic)",
        has_confidence=False,
    )
