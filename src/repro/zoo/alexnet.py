"""AlexNet (Krizhevsky et al.): 5 CONV (first two with LRN) + 3 FC.

Block order follows the original network: conv -> ReLU -> LRN -> maxpool
in the first two blocks.  The ``full`` variant is the exact BVLC geometry
(227x227 input, 96/256/384/384/256 filters, 4096-wide FC, 1000 classes);
``reduced`` shrinks spatial extent and channel counts by ~4x while
keeping the topology, layer kinds, LRN placement and the 1000-way output
— the properties the paper's propagation analysis depends on.
"""

from __future__ import annotations

from repro.nn.layers import LRN, Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from repro.nn.network import Network

__all__ = ["build_alexnet", "ALEXNET_SCALES"]

#: Geometry per scale: (input_size, conv channels c1..c5, fc width).
ALEXNET_SCALES: dict[str, tuple[int, tuple[int, int, int, int, int], int]] = {
    "full": (227, (96, 256, 384, 384, 256), 4096),
    "reduced": (115, (24, 64, 96, 96, 64), 256),
}


def _alexnet_layers(
    channels: tuple[int, int, int, int, int],
    fc_width: int,
    spatial_after_pool5: int,
    lrn_before_pool: bool,
) -> list:
    c1, c2, c3, c4, c5 = channels
    block1: list = [Conv2D("conv1", 3, c1, 11, stride=4), ReLU("relu1")]
    block2: list = [Conv2D("conv2", c1, c2, 5, stride=1, pad=2), ReLU("relu2")]
    if lrn_before_pool:  # AlexNet order: conv, relu, LRN, pool
        block1 += [LRN("norm1"), MaxPool2D("pool1", 3, stride=2)]
        block2 += [LRN("norm2"), MaxPool2D("pool2", 3, stride=2)]
    else:  # CaffeNet order: conv, relu, pool, LRN
        block1 += [MaxPool2D("pool1", 3, stride=2), LRN("norm1")]
        block2 += [MaxPool2D("pool2", 3, stride=2), LRN("norm2")]
    return block1 + block2 + [
        Conv2D("conv3", c2, c3, 3, stride=1, pad=1),
        ReLU("relu3"),
        Conv2D("conv4", c3, c4, 3, stride=1, pad=1),
        ReLU("relu4"),
        Conv2D("conv5", c4, c5, 3, stride=1, pad=1),
        ReLU("relu5"),
        MaxPool2D("pool5", 3, stride=2),
        Flatten("flatten"),
        Dense("fc6", c5 * spatial_after_pool5 * spatial_after_pool5, fc_width),
        ReLU("relu6"),
        Dense("fc7", fc_width, fc_width),
        ReLU("relu7"),
        Dense("fc8", fc_width, 1000),
        Softmax("softmax"),
    ]


def _pool5_extent(input_size: int) -> int:
    s1 = (input_size - 11) // 4 + 1  # conv1
    p1 = (s1 - 3) // 2 + 1  # pool1
    p2 = (p1 - 3) // 2 + 1  # pool2 (conv2 is 'same')
    return (p2 - 3) // 2 + 1  # pool5 (conv3..5 are 'same')


def build_alexnet(scale: str = "reduced", lrn_before_pool: bool = True, name: str = "AlexNet") -> Network:
    """Construct AlexNet (or, with ``lrn_before_pool=False``, its CaffeNet
    block ordering) at the requested scale, untrained/uncalibrated."""
    try:
        input_size, channels, fc_width = ALEXNET_SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; options: {sorted(ALEXNET_SCALES)}") from None
    layers = _alexnet_layers(channels, fc_width, _pool5_extent(input_size), lrn_before_pool)
    return Network(
        name,
        layers,
        input_shape=(3, input_size, input_size),
        dataset="ImageNet (synthetic)",
    )
