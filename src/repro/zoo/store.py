"""On-disk parameter store for zoo networks.

Building a zoo network involves He-init + Table-4 calibration (ImageNet
networks) or actual SGD training (ConvNet) — deterministic but not free.
The store persists the resulting parameters as ``.npz`` files keyed by a
build signature, so campaign worker processes and repeated runs load
instantly.  Location defaults to ``<repo>/.cache/repro-weights`` and can
be overridden with the ``REPRO_CACHE`` environment variable.
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path

import numpy as np

from repro.nn.network import Network

__all__ = ["cache_dir", "save_params", "load_params", "params_path"]


def cache_dir() -> Path:
    """Resolve the weight-cache directory (created on demand)."""
    root = os.environ.get("REPRO_CACHE")
    path = Path(root) if root else Path.cwd() / ".cache" / "repro-weights"
    path.mkdir(parents=True, exist_ok=True)
    return path


def params_path(signature: str) -> Path:
    """Cache file path for a build signature."""
    safe = "".join(ch if (ch.isalnum() or ch in "-_.") else "_" for ch in signature)
    return cache_dir() / f"{safe}.npz"


def save_params(network: Network, signature: str) -> Path:
    """Persist all layer parameters of ``network`` under ``signature``."""
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(network.layers):
        for pname, arr in layer.params().items():
            arrays[f"{i}.{pname}"] = arr
    path = params_path(signature)
    # The temp name carries the writer's PID: concurrent campaign workers
    # racing to persist the same signature must never interleave writes
    # into one file (a shared ".tmp" produced truncated npz archives that
    # failed later loads with zipfile.BadZipFile).  os.replace is atomic
    # within a filesystem, so last-writer-wins with no torn state.
    tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp.npz")
    try:
        np.savez_compressed(tmp, **arrays)
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_params(network: Network, signature: str) -> bool:
    """Load parameters for ``signature`` into ``network`` if cached.

    Returns:
        True when parameters were found and loaded; False when absent or
        shape-incompatible (in which case the network is left untouched).
    """
    path = params_path(signature)
    if not path.exists():
        return False
    try:
        with np.load(path) as data:
            staged: list[tuple[np.ndarray, np.ndarray]] = []
            for i, layer in enumerate(network.layers):
                for pname, arr in layer.params().items():
                    key = f"{i}.{pname}"
                    if key not in data or data[key].shape != arr.shape:
                        return False
                    staged.append((arr, data[key]))
            for dst, src in staged:
                dst[:] = src
    except (OSError, ValueError, zipfile.BadZipFile):
        # A corrupt archive (e.g. left behind by the pre-PID-suffix race)
        # is unrecoverable: drop it so the caller rebuilds and re-saves.
        path.unlink(missing_ok=True)
        return False
    network.invalidate_weight_caches()
    return True
