"""VGG-16 (Simonyan & Zisserman): the depth-study extension network.

The paper cites VGG as a standard accelerator benchmark (section 4.1)
but does not evaluate it.  We add it as the deep end of the
depth-vs-masking study (`repro-exp depth`): 13 CONV + 3 FC layers, no
normalization — twice AlexNet's depth with the same layer kinds, so any
resilience difference is attributable to depth alone.

VGG is absent from Table 4, so calibration targets follow the decay
profile the paper's networks share: first-layer ranges of several
hundred (mean-subtracted pixels times fan-in) shrinking geometrically to
a few tens at the classifier (see :func:`vgg_targets`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from repro.nn.network import Network

__all__ = ["build_vgg16", "vgg_targets", "VGG_SCALES"]

#: Geometry per scale: (input size, per-stage channels, fc width).
VGG_SCALES: dict[str, tuple[int, tuple[int, int, int, int, int], int]] = {
    "full": (224, (64, 128, 256, 512, 512), 4096),
    "reduced": (64, (16, 32, 64, 96, 96), 256),
}

#: Convs per stage in VGG-16 (13 total).
STAGE_DEPTHS = (2, 2, 3, 3, 3)


def build_vgg16(scale: str = "reduced") -> Network:
    """Construct VGG-16 at the requested scale, untrained/uncalibrated."""
    try:
        input_size, stage_channels, fc_width = VGG_SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; options: {sorted(VGG_SCALES)}") from None
    layers: list = []
    cin = 3
    conv_id = 0
    for stage, (depth, cout) in enumerate(zip(STAGE_DEPTHS, stage_channels), start=1):
        for _ in range(depth):
            conv_id += 1
            layers.append(Conv2D(f"conv{conv_id}", cin, cout, 3, stride=1, pad=1))
            layers.append(ReLU(f"relu{conv_id}"))
            cin = cout
        layers.append(MaxPool2D(f"pool{stage}", 2, stride=2))
    spatial = input_size // 2 ** len(STAGE_DEPTHS)
    layers += [
        Flatten("flatten"),
        Dense("fc14", cin * spatial * spatial, fc_width),
        ReLU("relu14"),
        Dense("fc15", fc_width, fc_width),
        ReLU("relu15"),
        Dense("fc16", fc_width, 1000),
        Softmax("softmax"),
    ]
    return Network(
        "VGG16",
        layers,
        input_shape=(3, input_size, input_size),
        dataset="ImageNet (synthetic)",
    )


def vgg_targets(n_blocks: int = 16, first: float = 700.0, last: float = 16.0) -> list[float]:
    """Geometric per-block max-|ACT| calibration profile.

    Mirrors the decay every Table 4 network shows: hundreds at the first
    convolution down to tens at the classifier output.
    """
    if n_blocks < 2:
        raise ValueError("need at least two blocks")
    return list(np.geomspace(first, last, n_blocks))
