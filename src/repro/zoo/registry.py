"""Network factory: build, initialize and cache the paper's four networks.

``get_network(name, scale)`` returns a ready-to-use network:

- ImageNet networks (AlexNet, CaffeNet, NiN) are He-initialized and then
  calibrated so each block's error-free ACT range matches the paper's
  Table 4 (see :mod:`repro.zoo.weights`).
- ConvNet is trained with SGD on the synthetic CIFAR task.

Results are memoized in-process and persisted to the on-disk store, so
fault-injection worker processes pay the cost once per machine.
"""

from __future__ import annotations

import numpy as np

from repro.nn.network import Network
from repro.nn.training import SGDTrainer
from repro.utils.rng import child_rng
from repro.zoo import store
from repro.zoo.alexnet import build_alexnet
from repro.zoo.caffenet import build_caffenet
from repro.zoo.convnet import build_convnet
from repro.zoo.datasets import imagenet_like, synthetic_cifar
from repro.zoo.nin import build_nin
from repro.zoo.vgg import build_vgg16, vgg_targets
from repro.zoo.weights import TABLE4_RANGES, calibrate_to_ranges, he_init

__all__ = ["NETWORKS", "get_network", "eval_inputs", "describe_networks", "clear_cache"]

#: Network name -> builder; the paper's four (Table 2 order) plus the
#: VGG-16 depth-study extension.
NETWORKS = {
    "ConvNet": build_convnet,
    "AlexNet": build_alexnet,
    "CaffeNet": build_caffenet,
    "NiN": build_nin,
    "VGG16": build_vgg16,
}

#: ConvNet training hyper-parameters (deterministic).  Training stops
#: around ~85% train accuracy on purpose: the paper's CIFAR-10 ConvNet
#: has moderate accuracy and unsaturated confidence scores, which is what
#: makes it the most SDC-prone network (Figure 3b); training to 100%
#: would saturate the logit margins and artificially mask faults.
_CONVNET_TRAIN = {"images": 600, "epochs": 4, "batch": 16, "lr": 0.003, "seed": 11}

_memo: dict[tuple[str, str], Network] = {}


def clear_cache() -> None:
    """Drop the in-process network memo (on-disk store is untouched)."""
    _memo.clear()


def _init_imagenet_net(net: Network, scale: str) -> None:
    he_init(net, seed=7)
    size = net.input_shape[1]
    probe = imagenet_like(2, size=size, seed=21)
    # Networks absent from Table 4 (VGG16) calibrate to the shared
    # decay profile instead of measured paper ranges.
    targets = None if net.name in TABLE4_RANGES else vgg_targets(net.n_blocks)
    calibrate_to_ranges(net, probe, targets=targets, iterations=3)


def _train_convnet(net: Network) -> None:
    cfg = _CONVNET_TRAIN
    he_init(net, seed=5)
    x, y = synthetic_cifar(cfg["images"], seed=cfg["seed"])
    trainer = SGDTrainer(net, lr=cfg["lr"], momentum=0.9, weight_decay=1e-4)
    trainer.fit(
        x,
        y,
        epochs=cfg["epochs"],
        batch_size=cfg["batch"],
        rng=child_rng(cfg["seed"], 3),
        lr_decay=0.85,
    )


def get_network(name: str, scale: str = "reduced", use_store: bool = True) -> Network:
    """Return an initialized network, memoized per (name, scale).

    Args:
        name: One of ``ConvNet``, ``AlexNet``, ``CaffeNet``, ``NiN``.
        scale: ``"reduced"`` (default; laptop-sized, topology-faithful) or
            ``"full"`` (paper-sized geometry).
        use_store: Allow on-disk parameter caching.

    Note:
        The returned network is shared: treat its parameters as
        read-only, or build a private copy via the underlying builder.
    """
    key = (name, scale)
    if key in _memo:
        return _memo[key]
    try:
        builder = NETWORKS[name]
    except KeyError:
        raise KeyError(f"unknown network {name!r}; known: {sorted(NETWORKS)}") from None
    net = builder(scale=scale)
    signature = f"{name}-{scale}-v1"
    if not (use_store and store.load_params(net, signature)):
        if name == "ConvNet":
            _train_convnet(net)
        else:
            _init_imagenet_net(net, scale)
        if use_store:
            store.save_params(net, signature)
    _memo[key] = net
    return net


def eval_inputs(name: str, n: int, scale: str = "reduced", seed: int = 100) -> np.ndarray:
    """Representative evaluation inputs for a network.

    ConvNet gets held-out synthetic CIFAR images (disjoint seed from the
    training set); ImageNet networks get :func:`imagenet_like` inputs at
    their native input size.
    """
    if name == "ConvNet":
        x, _ = synthetic_cifar(n, seed=seed)
        return x
    net = NETWORKS[name](scale=scale)
    return imagenet_like(n, size=net.input_shape[1], seed=seed)


#: The paper's evaluated networks (Table 2 order); NETWORKS additionally
#: carries extension networks (VGG16) that Table 2 must not list.
PAPER_NETWORKS = ("ConvNet", "AlexNet", "CaffeNet", "NiN")


def describe_networks(scale: str = "reduced", include_extensions: bool = False) -> list[dict]:
    """Regenerate Table 2: one description row per network."""
    names = tuple(NETWORKS) if include_extensions else PAPER_NETWORKS
    return [get_network(name, scale).describe() for name in names]
