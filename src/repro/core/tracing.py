"""Error-propagation tracing (Figure 7 and Table 5 machinery).

Figure 7 measures, per layer, the Euclidean distance between the faulty
and golden ACT values after a fault is injected at layer 1 — showing LRN
slashing the deviation while plain stacks carry it flat.  Table 5 counts
the fraction of faults whose corruption is still present bit-wise in the
final fmap (the campaign's ``record_propagation`` covers the rates; this
module provides the per-block distance trace).
"""

from __future__ import annotations

import numpy as np

from repro.core.injector import InjectionResult
from repro.nn.network import InferenceResult, Network

__all__ = [
    "block_output_layers",
    "relu_trace_layers",
    "euclidean_by_block",
    "bitwise_mismatch_by_block",
]


def block_output_layers(network: Network) -> dict[int, int]:
    """Map block index -> layer index of the block's final output
    (terminal softmax excluded)."""
    out: dict[int, int] = {}
    for i, layer in enumerate(network.layers):
        if layer.block is not None and layer.kind != "softmax":
            out[layer.block] = i
    return out


def relu_trace_layers(network: Network) -> dict[int, int]:
    """Map block index -> layer index of the block's activation output.

    Figure 7 samples ACT values right after each layer's activation
    function — *before* any NORM/POOL that follows — which is what makes
    the AlexNet/CaffeNet curves drop between layer 1 and layer 2 (the
    LRN sits between the two sample points).  Falls back to the block's
    MAC layer when it has no ReLU.
    """
    out: dict[int, int] = {}
    for i, layer in enumerate(network.layers):
        if layer.block is None:
            continue
        if layer.kind == "relu" or (layer.block not in out and layer.kind in ("conv", "fc")):
            out[layer.block] = i
    return out


def _faulty_activation(injection: InjectionResult, layer_index: int) -> np.ndarray | None:
    """Output of ``layer_index`` in the faulty run, if re-executed."""
    j = layer_index - injection.resume_index + 1
    if j < 0 or j >= len(injection.faulty_activations):
        return None
    return injection.faulty_activations[j]


def euclidean_by_block(
    network: Network,
    golden: InferenceResult,
    injection: InjectionResult,
    points: dict[int, int] | None = None,
) -> dict[int, float]:
    """Euclidean distance between faulty and golden ACTs per block.

    Args:
        points: Map of block -> layer index to sample at; defaults to
            block outputs.  Figure 7 passes :func:`relu_trace_layers`.

    Blocks upstream of the fault have distance 0 (they were not
    re-executed and equal the golden run).  Non-finite corrupted values
    are compared on a clipped scale so a single inf/NaN yields a large
    but finite distance.
    """
    distances: dict[int, float] = {}
    for block, li in (points or block_output_layers(network)).items():
        faulty = _faulty_activation(injection, li)
        if faulty is None:
            distances[block] = 0.0
            continue
        ref = golden.activations[li + 1]
        with np.errstate(invalid="ignore", over="ignore"):
            diff = faulty - ref
        bad = ~np.isfinite(diff)
        if bad.any():
            finite_mag = min(float(np.abs(diff[~bad]).max(initial=0.0)), 1e149)
            diff = np.where(bad, max(finite_mag, 1.0) * 10.0, diff)
        # Clip before squaring: a ~1e300 deviation would overflow the sum.
        diff = np.clip(diff, -1e150, 1e150)
        distances[block] = float(np.sqrt((diff * diff).sum()))
    return distances


def bitwise_mismatch_by_block(
    network: Network,
    golden: InferenceResult,
    injection: InjectionResult,
) -> dict[int, float]:
    """Fraction of mismatching ACT values per block output (element-wise).

    The paper compares "the ACT values bit by bit"; at operation
    granularity any value mismatch implies a bit mismatch, so element
    inequality is the equivalent measure.
    """
    mismatch: dict[int, float] = {}
    for block, li in block_output_layers(network).items():
        faulty = _faulty_activation(injection, li)
        if faulty is None:
            mismatch[block] = 0.0
            continue
        ref = golden.activations[li + 1]
        with np.errstate(invalid="ignore"):
            neq = faulty != ref
        both_nan = np.isnan(faulty) & np.isnan(ref)
        neq &= ~both_nan
        mismatch[block] = float(neq.mean())
    return mismatch
