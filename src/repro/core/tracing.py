"""Error-propagation tracing (Figure 7 and Table 5 machinery) and
campaign-execution event tracing.

Figure 7 measures, per layer, the Euclidean distance between the faulty
and golden ACT values after a fault is injected at layer 1 — showing LRN
slashing the deviation while plain stacks carry it flat.  Table 5 counts
the fraction of faults whose corruption is still present bit-wise in the
final fmap (the campaign's ``record_propagation`` covers the rates; this
module provides the per-block distance trace).

The second half of the module makes *long campaigns* observable: the
supervised pool (:mod:`repro.utils.parallel`) and the campaign runner
emit ``retry`` / ``rebuild`` / ``timeout`` / ``bisect`` / ``quarantine``
/ ``degrade`` / ``resume`` / ``checkpoint`` events, which an
:class:`EventRecorder` counts (and optionally forwards to a sink such as
``print``) so a multi-hour run reports what its harness survived.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.injector import InjectionResult
from repro.nn.network import InferenceResult, Network

__all__ = [
    "block_output_layers",
    "relu_trace_layers",
    "euclidean_by_block",
    "bitwise_mismatch_by_block",
    "CampaignEvent",
    "EventRecorder",
]


@dataclass(frozen=True)
class CampaignEvent:
    """One supervision event emitted while executing a campaign.

    Attributes:
        seq: Monotonic sequence number within the recorder.
        kind: Event kind (``retry``, ``rebuild``, ``timeout``,
            ``bisect``, ``quarantine``, ``degrade``, ``resume``,
            ``checkpoint``, ``abort``).
        detail: Kind-specific payload (chunk span, attempt count, ...).
    """

    seq: int
    kind: str
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[campaign:{self.kind}] {parts}".rstrip()


class EventRecorder:
    """Collects campaign supervision events; the pool's ``on_event`` hook.

    Retains the **most recent** ``max_events`` events in a ring buffer (a
    multi-million-trial campaign must not grow an unbounded log, but the
    tail of a long run is exactly what post-mortem debugging needs) and
    counts every emission, so :meth:`count` stays exact regardless of
    truncation.

    Args:
        sink: Optional callable invoked with every :class:`CampaignEvent`
            as it is emitted (e.g. ``lambda e: print(e, file=sys.stderr)``
            for live progress on a long run).  Further sinks — a
            :class:`~repro.obs.progress.ProgressReporter`, a run-log
            writer — attach via :meth:`add_sink`.
        max_events: Retention cap for the in-memory event buffer.
    """

    def __init__(
        self,
        sink: Callable[[CampaignEvent], None] | None = None,
        max_events: int = 1000,
    ):
        self.events: deque[CampaignEvent] = deque(maxlen=max_events)
        self._counts: Counter[str] = Counter()
        self._sinks: list[Callable[[CampaignEvent], None]] = [] if sink is None else [sink]
        self._seq = 0

    def add_sink(self, sink: Callable[[CampaignEvent], None]) -> None:
        """Attach one more per-event observer (all sinks see all events)."""
        self._sinks.append(sink)

    def emit(self, kind: str, detail: dict | None = None, **extra) -> CampaignEvent:
        """Record one event; signature matches the pool's ``on_event``."""
        payload = dict(detail or {})
        payload.update(extra)
        event = CampaignEvent(seq=self._seq, kind=kind, detail=payload)
        self._seq += 1
        self._counts[kind] += 1
        self.events.append(event)
        for sink in self._sinks:
            sink(event)
        return event

    def count(self, kind: str) -> int:
        """Total emissions of ``kind`` (unaffected by retention cap)."""
        return self._counts[kind]

    @property
    def counts(self) -> dict[str, int]:
        """Emission totals by kind."""
        return dict(self._counts)

    def tail(self, n: int = 50) -> list[CampaignEvent]:
        """The most recent ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        return list(self.events)[-n:]


def block_output_layers(network: Network) -> dict[int, int]:
    """Map block index -> layer index of the block's final output
    (terminal softmax excluded)."""
    out: dict[int, int] = {}
    for i, layer in enumerate(network.layers):
        if layer.block is not None and layer.kind != "softmax":
            out[layer.block] = i
    return out


def relu_trace_layers(network: Network) -> dict[int, int]:
    """Map block index -> layer index of the block's activation output.

    Figure 7 samples ACT values right after each layer's activation
    function — *before* any NORM/POOL that follows — which is what makes
    the AlexNet/CaffeNet curves drop between layer 1 and layer 2 (the
    LRN sits between the two sample points).  Falls back to the block's
    MAC layer when it has no ReLU.
    """
    out: dict[int, int] = {}
    for i, layer in enumerate(network.layers):
        if layer.block is None:
            continue
        if layer.kind == "relu" or (layer.block not in out and layer.kind in ("conv", "fc")):
            out[layer.block] = i
    return out


def _faulty_activation(injection: InjectionResult, layer_index: int) -> np.ndarray | None:
    """Output of ``layer_index`` in the faulty run, if re-executed."""
    j = layer_index - injection.resume_index + 1
    if j < 0 or j >= len(injection.faulty_activations):
        return None
    return injection.faulty_activations[j]


def euclidean_by_block(
    network: Network,
    golden: InferenceResult,
    injection: InjectionResult,
    points: dict[int, int] | None = None,
) -> dict[int, float]:
    """Euclidean distance between faulty and golden ACTs per block.

    Args:
        points: Map of block -> layer index to sample at; defaults to
            block outputs.  Figure 7 passes :func:`relu_trace_layers`.

    Blocks upstream of the fault have distance 0 (they were not
    re-executed and equal the golden run).  Non-finite corrupted values
    are compared on a clipped scale so a single inf/NaN yields a large
    but finite distance.
    """
    distances: dict[int, float] = {}
    for block, li in (points or block_output_layers(network)).items():
        faulty = _faulty_activation(injection, li)
        if faulty is None:
            distances[block] = 0.0
            continue
        ref = golden.activations[li + 1]
        with np.errstate(invalid="ignore", over="ignore"):
            diff = faulty - ref
        bad = ~np.isfinite(diff)
        if bad.any():
            finite_mag = min(float(np.abs(diff[~bad]).max(initial=0.0)), 1e149)
            diff = np.where(bad, max(finite_mag, 1.0) * 10.0, diff)
        # Clip before squaring: a ~1e300 deviation would overflow the sum.
        diff = np.clip(diff, -1e150, 1e150)
        distances[block] = float(np.sqrt((diff * diff).sum()))
    return distances


def bitwise_mismatch_by_block(
    network: Network,
    golden: InferenceResult,
    injection: InjectionResult,
) -> dict[int, float]:
    """Fraction of mismatching ACT values per block output (element-wise).

    The paper compares "the ACT values bit by bit"; at operation
    granularity any value mismatch implies a bit mismatch, so element
    inequality is the equivalent measure.
    """
    mismatch: dict[int, float] = {}
    for block, li in block_output_layers(network).items():
        faulty = _faulty_activation(injection, li)
        if faulty is None:
            mismatch[block] = 0.0
            continue
        ref = golden.activations[li + 1]
        with np.errstate(invalid="ignore"):
            neq = faulty != ref
        both_nan = np.isnan(faulty) & np.isnan(ref)
        neq &= ~both_nan
        mismatch[block] = float(neq.mean())
    return mismatch
