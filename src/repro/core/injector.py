"""Bit-exact fault injection into DNN inference.

Two engines, matching the paper's two fault origins:

- :func:`inject_datapath` replays the single corrupted MAC chain with the
  target format's per-step rounding/saturation semantics, patches the
  victim output element, and resumes the network from the next layer
  (read-once semantics of PE latches).
- :func:`inject_buffer` spreads one corrupted buffer entry according to
  its reuse scope — a whole-layer weight (Filter SRAM), a one-row ifmap
  residency (Img REG), a next-layer activation (Global Buffer) or a
  single partial-sum read (PSum REG).

Both consume a cached golden :class:`~repro.nn.network.InferenceResult`
so each injection costs only the corrupted chain(s) plus a partial
forward pass from the fault layer onward.

Each engine is split into two separable stages:

- ``prepare_*`` builds the corruption — it replays the corrupted MAC
  chain(s), decides maskedness, and produces a
  :class:`PreparedInjection` holding the patched activation plus the
  input-row span the corruption is confined to;
- :func:`finish_injection` propagates a prepared corruption through the
  network tail.

``inject_datapath`` / ``inject_buffer`` compose the two for the serial
path; the campaign runner instead prepares a whole chunk of trials,
groups them by resume layer, and propagates each group in one call to
:meth:`~repro.nn.network.Network.forward_from_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes.base import DataType
from repro.nn.layers.base import MacChain, MacLayer
from repro.nn.network import InferenceResult, Network
from repro.core.fault import BufferFault, DatapathFault
from repro.obs.spans import span

__all__ = [
    "InjectionResult",
    "PreparedInjection",
    "replay_chain",
    "prepare_datapath",
    "prepare_buffer",
    "finish_injection",
    "inject_datapath",
    "inject_buffer",
]


@dataclass
class InjectionResult:
    """Outcome of one fault injection.

    Attributes:
        scores: Final output scores of the faulty run.
        masked: True when the flip did not change any architecturally
            visible value (the faulty run equals the golden run exactly).
        value_before: Victim value before corruption (golden).
        value_after: Victim value after corruption.
        resume_index: Layer index from which execution was re-run.
        faulty_activations: Activations of the re-run segment;
            ``faulty_activations[0]`` is the (corrupted) input to layer
            ``resume_index``.  Empty when ``masked`` or recording is off.
    """

    scores: np.ndarray
    masked: bool
    value_before: float
    value_after: float
    resume_index: int
    faulty_activations: list[np.ndarray] = field(default_factory=list)


@dataclass
class PreparedInjection:
    """A corruption that has been built but not yet propagated.

    Attributes:
        resume_index: Layer index execution must resume from.
        masked: True when the flip changed no architecturally visible
            value; no propagation is needed.
        value_before: Victim value before corruption.
        value_after: Victim value after corruption.
        act: Corrupted input to ``layers[resume_index]`` (``None`` when
            masked).
        dirty_rows: Half-open row span ``(r0, r1)`` of ``act`` confining
            the corruption, in the fmap's h dimension; ``None`` when the
            corruption may be anywhere (FC-stage faults, whole-layer
            weight faults).
    """

    resume_index: int
    masked: bool
    value_before: float
    value_after: float
    act: np.ndarray | None = None
    dirty_rows: tuple[int, int] | None = None


def replay_chain(
    dtype: DataType,
    chain: MacChain,
    fault: DatapathFault | None = None,
) -> float:
    """Accumulate a MAC chain bit-exactly, optionally with one latch fault.

    The accumulator starts at the bias and adds one product per step with
    the format's per-step rounding (FP) or saturation (FxP).  A fault of
    kind ``weight_operand``/``input_operand`` corrupts the multiplier
    operand of step ``fault.step``; ``product`` corrupts the multiplier
    output; ``psum`` corrupts the running sum *entering* the adder at
    that step; ``accumulator`` corrupts the sum *leaving* it.

    Returns:
        The final accumulated value (the victim output element before
        any subsequent activation function).
    """
    w = chain.weights
    a = chain.inputs
    products = dtype.multiply(w, a)
    if fault is None:
        full = np.concatenate(([chain.bias], products))
        return float(dtype.partials(full)[-1])

    k = fault.step
    if not 0 <= k < chain.length:
        raise ValueError(f"fault step {k} outside chain of length {chain.length}")

    if fault.latch == "weight_operand":
        wk = dtype.flip_bits(np.array([w[k]]), fault.bit, fault.burst)[0]
        products = products.copy()
        products[k] = dtype.multiply(np.array([wk]), np.array([a[k]]))[0]
        full = np.concatenate(([chain.bias], products))
        return float(dtype.partials(full)[-1])
    if fault.latch == "input_operand":
        ak = dtype.flip_bits(np.array([a[k]]), fault.bit, fault.burst)[0]
        products = products.copy()
        products[k] = dtype.multiply(np.array([w[k]]), np.array([ak]))[0]
        full = np.concatenate(([chain.bias], products))
        return float(dtype.partials(full)[-1])
    if fault.latch == "product":
        products = products.copy()
        products[k] = dtype.flip_bits(np.array([products[k]]), fault.bit, fault.burst)[0]
        full = np.concatenate(([chain.bias], products))
        return float(dtype.partials(full)[-1])
    if fault.latch in ("psum", "accumulator"):
        prefix = dtype.partials(np.concatenate(([chain.bias], products[:k])))
        running = prefix[-1]
        if fault.latch == "psum":
            # Corrupt the partial sum entering the adder at step k.
            running = dtype.flip_bits(np.array([running]), fault.bit, fault.burst)[0]
            rest = np.concatenate(([running], products[k:]))
        else:
            # Corrupt the adder output of step k.
            running = dtype.add(np.array([running]), np.array([products[k]]))[0]
            running = dtype.flip_bits(np.array([running]), fault.bit, fault.burst)[0]
            rest = np.concatenate(([running], products[k + 1 :]))
        return float(dtype.partials(rest)[-1])
    raise ValueError(f"unknown latch {fault.latch!r}")


def _patched_resume(
    network: Network,
    dtype: DataType,
    resume_index: int,
    act: np.ndarray,
    value_before: float,
    value_after: float,
    record: bool,
    storage_dtype: DataType | None = None,
) -> InjectionResult:
    """Resume the forward pass with a patched activation."""
    res = network.forward_from(
        resume_index, act, dtype=dtype, record=record, storage_dtype=storage_dtype
    )
    return InjectionResult(
        scores=res.scores,
        masked=False,
        value_before=value_before,
        value_after=value_after,
        resume_index=resume_index,
        faulty_activations=[act] + res.activations[1:] if record else [],
    )


def _masked_result(golden: InferenceResult, resume_index: int, value: float) -> InjectionResult:
    return InjectionResult(
        scores=golden.scores,
        masked=True,
        value_before=value,
        value_after=value,
        resume_index=resume_index,
    )


def finish_injection(
    network: Network,
    dtype: DataType,
    prep: PreparedInjection,
    golden: InferenceResult,
    record: bool = False,
    storage_dtype: DataType | None = None,
) -> InjectionResult:
    """Propagate a prepared corruption through the network tail."""
    if prep.masked:
        return _masked_result(golden, prep.resume_index, prep.value_before)
    assert prep.act is not None
    return _patched_resume(
        network, dtype, prep.resume_index, prep.act, prep.value_before,
        prep.value_after, record, storage_dtype=storage_dtype,
    )


def prepare_datapath(
    network: Network,
    dtype: DataType,
    fault: DatapathFault,
    golden: InferenceResult,
    storage_dtype: DataType | None = None,
) -> PreparedInjection:
    """Build (without propagating) one datapath-latch corruption.

    Args:
        network: Target network (weights untouched).
        dtype: Numeric format of the accelerator datapath.
        fault: Fault site (see :class:`~repro.core.fault.DatapathFault`).
        golden: Fault-free inference (with recorded activations) of the
            same input under the same formats.
        storage_dtype: Reduced-precision buffer storage format, when the
            golden run used one (Proteus protocol, paper section 6.1).
    """
    layer = network.layers[fault.layer_index]
    if not isinstance(layer, MacLayer):
        raise TypeError(f"layer {fault.layer_index} is not a MAC layer")
    x = golden.activations[fault.layer_index]
    with span("inject_datapath"):
        chain = layer.mac_operands(x, fault.out_index, dtype)
        clean = replay_chain(dtype, chain)
        faulty = replay_chain(dtype, chain, fault)
        if storage_dtype is not None and fault.layer_index in network.block_output_indices():
            # The corrupted MAC result is immediately narrowed for storage.
            clean = float(storage_dtype.quantize(np.array([clean]))[0])
            faulty = float(storage_dtype.quantize(np.array([faulty]))[0])
        if faulty == clean or (np.isnan(faulty) and np.isnan(clean)):
            return PreparedInjection(fault.layer_index + 1, True, clean, clean)
        act = golden.activations[fault.layer_index + 1].copy()
        act[fault.out_index] = faulty
    rows = (
        (fault.out_index[1], fault.out_index[1] + 1)
        if len(fault.out_index) == 3
        else None  # FC output: no spatial locality to exploit
    )
    return PreparedInjection(fault.layer_index + 1, False, clean, faulty, act, rows)


def inject_datapath(
    network: Network,
    dtype: DataType,
    fault: DatapathFault,
    golden: InferenceResult,
    record: bool = False,
    storage_dtype: DataType | None = None,
) -> InjectionResult:
    """Inject one datapath-latch fault and run the inference to the end.

    Equivalent to :func:`prepare_datapath` + :func:`finish_injection`.
    """
    prep = prepare_datapath(network, dtype, fault, golden, storage_dtype)
    return finish_injection(network, dtype, prep, golden, record, storage_dtype)


def _prepare_layer_weight(
    network: Network,
    dtype: DataType,
    fault: BufferFault,
    golden: InferenceResult,
    storage_dtype: DataType | None,
) -> PreparedInjection:
    """Filter-SRAM fault: one weight corrupted for the whole layer."""
    layer = network.layers[fault.layer_index]
    w, b = layer.quantized_weights(dtype)
    store = storage_dtype or dtype
    before = float(store.quantize(np.array([w[fault.victim]]))[0])
    after = float(store.flip_bits(np.array([before]), fault.bit, fault.burst)[0])
    if after == before:
        return PreparedInjection(fault.layer_index + 1, True, before, before)
    w_bad = w.copy()
    w_bad[fault.victim] = dtype.quantize(np.array([after]))[0]
    x = golden.activations[fault.layer_index]
    y = layer.forward_with_weights(x[None], dtype, w_bad, b)[0]
    if storage_dtype is not None and fault.layer_index in network.block_output_indices():
        y = storage_dtype.quantize(y)
    # Every output element read the corrupted weight: nothing is confined.
    return PreparedInjection(fault.layer_index + 1, False, before, after, y, None)


def _prepare_next_layer(
    network: Network,
    dtype: DataType,
    fault: BufferFault,
    golden: InferenceResult,
    storage_dtype: DataType | None,
) -> PreparedInjection:
    """Global-Buffer fault: one stored ACT corrupted for all consumers.

    The flip happens in the *storage* representation: under the Proteus
    protocol the stored word is narrower than the datapath word.
    """
    store = storage_dtype or dtype
    x = golden.activations[fault.layer_index]
    before = float(x[fault.victim])
    after = float(store.flip_bits(np.array([before]), fault.bit, fault.burst)[0])
    if after == before:
        return PreparedInjection(fault.layer_index, True, before, before)
    act = x.copy()
    act[fault.victim] = dtype.quantize(np.array([after]))[0]
    rows = (fault.victim[1], fault.victim[1] + 1) if len(fault.victim) == 3 else None
    return PreparedInjection(fault.layer_index, False, before, after, act, rows)


def _prepare_row_activation(
    network: Network,
    dtype: DataType,
    fault: BufferFault,
    golden: InferenceResult,
    storage_dtype: DataType | None,
) -> PreparedInjection:
    """Img-REG fault: corrupted ifmap value read by one output row only.

    Only the output elements of ``fault.residency_row`` whose windows
    cover the victim pixel consume the corrupted register; every other
    window re-reads the (correct) value from the Filter/Global buffers.
    Each affected element's chain is replayed with the corrupted tap.
    """
    layer = network.layers[fault.layer_index]
    store = storage_dtype or dtype
    x = golden.activations[fault.layer_index]
    before = float(x[fault.victim])
    _, yy, xx_pos = fault.victim
    oy = fault.residency_row
    if not (oy * layer.stride - layer.pad <= yy <= oy * layer.stride - layer.pad + layer.kernel - 1):
        # Residency row does not read the victim pixel: fault never
        # consumed.  Checked before any chain/copy work — a miss costs
        # nothing (this check once ran after the affected-column scan and
        # the full ifmap copy, doing that work just to discard it).
        return PreparedInjection(fault.layer_index + 1, True, before, before)
    after = float(store.flip_bits(np.array([before]), fault.bit, fault.burst)[0])
    if after == before:
        return PreparedInjection(fault.layer_index + 1, True, before, before)

    x_bad = x.copy()
    x_bad[fault.victim] = dtype.quantize(np.array([after]))[0]
    _, _, ow = layer.out_shape(x.shape)
    affected_cols = [
        ox
        for ox in range(ow)
        if ox * layer.stride - layer.pad <= xx_pos <= ox * layer.stride - layer.pad + layer.kernel - 1
    ]
    act = golden.activations[fault.layer_index + 1].copy()
    narrow = (
        storage_dtype
        if storage_dtype is not None
        and fault.layer_index in network.block_output_indices()
        else None
    )
    # Batch the affected chains: all (filter, column) pairs of the
    # residency row, replayed bit-exactly with and without the corrupt
    # tap in one vectorized accumulate each.
    indices = [(f, oy, ox) for f in range(layer.out_channels) for ox in affected_cols]
    prods_bad, prods_ok, biases = [], [], []
    for idx in indices:
        chain_bad = layer.mac_operands(x_bad, idx, dtype)
        chain_ok = layer.mac_operands(x, idx, dtype)
        prods_bad.append(dtype.multiply(chain_bad.weights, chain_bad.inputs))
        prods_ok.append(dtype.multiply(chain_ok.weights, chain_ok.inputs))
        biases.append(chain_bad.bias)
    bias_vec = np.asarray(biases)
    v_bad = dtype.accumulate_batch(np.asarray(prods_bad), bias_vec)
    v_ok = dtype.accumulate_batch(np.asarray(prods_ok), bias_vec)
    if narrow is not None:
        v_bad = narrow.quantize(v_bad)
        v_ok = narrow.quantize(v_ok)
    with np.errstate(invalid="ignore"):
        differs = (v_bad != v_ok) & ~(np.isnan(v_bad) & np.isnan(v_ok))
    if not differs.any():
        return PreparedInjection(fault.layer_index + 1, True, before, before)
    for pos, idx in enumerate(indices):
        if differs[pos]:
            act[idx] = v_bad[pos]
    # All patched elements sit in output row ``oy``.
    return PreparedInjection(
        fault.layer_index + 1, False, before, after, act, (oy, oy + 1)
    )


def _prepare_single_read(
    network: Network,
    dtype: DataType,
    fault: BufferFault,
    golden: InferenceResult,
    storage_dtype: DataType | None,
) -> PreparedInjection:
    """PSum-REG fault: identical semantics to a datapath psum latch."""
    *out_index, step = fault.victim
    dp = DatapathFault(
        layer_index=fault.layer_index,
        out_index=tuple(out_index),
        step=int(step),
        latch="psum",
        bit=fault.bit,
        burst=fault.burst,
    )
    return prepare_datapath(network, dtype, dp, golden, storage_dtype)


_BUFFER_DISPATCH = {
    "layer_weight": _prepare_layer_weight,
    "next_layer": _prepare_next_layer,
    "row_activation": _prepare_row_activation,
    "single_read": _prepare_single_read,
}


def prepare_buffer(
    network: Network,
    dtype: DataType,
    fault: BufferFault,
    golden: InferenceResult,
    storage_dtype: DataType | None = None,
) -> PreparedInjection:
    """Build (without propagating) one buffer corruption.

    ``storage_dtype`` enables the Proteus reduced-precision protocol:
    buffered values (weights, fmaps) live in the narrow storage format,
    so the flip lands in that representation, while the datapath keeps
    computing in ``dtype``.
    """
    try:
        handler = _BUFFER_DISPATCH[fault.scope]
    except KeyError:
        raise ValueError(f"unknown buffer fault scope {fault.scope!r}") from None
    with span("inject_buffer"):
        return handler(network, dtype, fault, golden, storage_dtype)


def inject_buffer(
    network: Network,
    dtype: DataType,
    fault: BufferFault,
    golden: InferenceResult,
    record: bool = False,
    storage_dtype: DataType | None = None,
) -> InjectionResult:
    """Inject one buffer fault (dispatching on its reuse scope).

    Equivalent to :func:`prepare_buffer` + :func:`finish_injection`.
    """
    prep = prepare_buffer(network, dtype, fault, golden, storage_dtype)
    return finish_injection(network, dtype, prep, golden, record, storage_dtype)
