"""Rate estimation with 95% confidence intervals.

The paper reports every SDC probability with a 95% confidence interval
("error bars ... calculated based on 95% confidence intervals").  The
normal (Wald) approximation matches that methodology; a Wilson interval
is also provided for small-sample robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RateEstimate", "wilson_interval", "wilson_halfwidth", "combine_counts"]

_Z95 = 1.959963984540054  # two-sided 95% normal quantile


@dataclass(frozen=True)
class RateEstimate:
    """A binomial rate with its sampling uncertainty.

    Attributes:
        successes: Number of positive trials.
        n: Number of trials.
    """

    successes: int
    n: int

    def __post_init__(self) -> None:
        if self.n < 0 or not 0 <= self.successes <= max(self.n, 0):
            raise ValueError(f"invalid counts: {self.successes}/{self.n}")

    @property
    def p(self) -> float:
        """Point estimate (0 when there are no trials)."""
        return self.successes / self.n if self.n else 0.0

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the 95% interval (the paper's error bar).

        The Wald half-width collapses to 0.0 whenever every trial agreed
        (0 or ``n`` successes) — with n=1 that would declare the rate
        exactly known after a single injection, which is what made naive
        early stopping unsound.  Degenerate counts therefore fall back to
        the Wilson score half-width, which never collapses for finite
        ``n`` (and is 0.5 — "anywhere in [0, 1]" — when ``n == 0``).
        """
        if self.n == 0 or self.successes in (0, self.n):
            return wilson_halfwidth(self.successes, self.n)
        p = self.p
        return _Z95 * np.sqrt(p * (1.0 - p) / self.n)

    @property
    def wilson95_halfwidth(self) -> float:
        """Half-width of the 95% Wilson score interval.

        The quantity campaign early stopping compares against
        ``CampaignSpec.target_halfwidth``: unlike the Wald width it is
        strictly positive for every finite ``n``, so a stratum can never
        be closed on the false certainty of a unanimous small sample.
        """
        return wilson_halfwidth(self.successes, self.n)

    @property
    def ci95(self) -> tuple[float, float]:
        """95% Wald interval clipped to [0, 1]."""
        h = self.ci95_halfwidth
        return (max(0.0, self.p - h), min(1.0, self.p + h))

    def wilson95(self) -> tuple[float, float]:
        """95% Wilson score interval (better behaved near 0 and 1)."""
        return wilson_interval(self.successes, self.n)

    def __str__(self) -> str:
        return f"{100 * self.p:.2f}% (+/-{100 * self.ci95_halfwidth:.2f}%, n={self.n})"


def wilson_interval(successes: int, n: int) -> tuple[float, float]:
    """Wilson 95% score interval for a binomial proportion."""
    if n == 0:
        return (0.0, 1.0)
    p = successes / n
    z2 = _Z95 * _Z95
    denom = 1.0 + z2 / n
    center = (p + z2 / (2 * n)) / denom
    half = (_Z95 / denom) * np.sqrt(p * (1 - p) / n + z2 / (4 * n * n))
    # Guard against float rounding excluding the point estimate at p=0/1.
    lo = min(max(0.0, center - half), p)
    hi = max(min(1.0, center + half), p)
    return (lo, hi)


def wilson_halfwidth(successes: int, n: int) -> float:
    """Half-width of the 95% Wilson score interval.

    ``(hi - lo) / 2`` of :func:`wilson_interval`; 0.5 when ``n == 0``
    (the interval is all of [0, 1] — nothing is known yet).
    """
    lo, hi = wilson_interval(successes, n)
    return (hi - lo) / 2.0


def combine_counts(estimates: list[RateEstimate]) -> RateEstimate:
    """Pool several rate estimates (summing successes and trials).

    An empty list pools to the empty estimate ``0/0`` — merged shard
    results can legitimately contain empty strata.
    """
    if not estimates:
        return RateEstimate(successes=0, n=0)
    return RateEstimate(
        successes=sum(e.successes for e in estimates),
        n=sum(e.n for e in estimates),
    )
