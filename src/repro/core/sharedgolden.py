"""Shared-memory golden state for fault-injection campaigns.

Every campaign worker needs the same immutable inputs: the golden
(fault-free) activations of each evaluation input, and the quantized
weight tensors of the network.  Before this module, every worker process
re-ran golden inference (and the SED learning phase) during pool
startup — pure duplicated work, since trial outcomes are a function of
the golden *bits*, not of who computed them.

The parent now computes the golden state once, packs every array
back-to-back into a single ``multiprocessing.shared_memory`` segment and
ships workers a tiny picklable :class:`GoldenDescriptor` (segment name +
per-array offset/shape/dtype + the learned detector, whose bounds are a
few floats).  Workers attach the segment and reconstruct **read-only**
numpy views — no golden inference, no detector learning, no array
pickling in the task factory.

Lifecycle contract
------------------
- The *parent* is the only creator and the only unlinker.  Segments are
  named ``repro-golden-<pid>-<counter>``; a name collision (pid reuse
  against a stale segment) is resolved by retrying the next counter —
  creators never attach to a segment they did not fill.
- *Workers* (including every pool rebuild after a ``BrokenProcessPool``)
  only ever attach; the attach path cannot create a segment, so a crash
  loop can never shadow the parent's golden bits with an empty segment.
- The parent releases the segment in the campaign's ``finally`` path
  (:func:`release_segment` is idempotent), covering normal completion,
  :class:`~repro.core.campaign.CampaignAbortedError` and raising trials.
  If the parent is SIGKILLed, the stdlib ``resource_tracker`` — which
  keeps the create-time registration — unlinks the segment when the
  parent dies, so killed runs leak nothing.
- On Python < 3.13 ``SharedMemory`` registers on *attach* as well as on
  create.  Forked workers share the parent's tracker, where the extra
  registration is an idempotent no-op; spawned workers own a private
  tracker that would unlink the parent's segment when the worker exits,
  so those (and only those) deregister after attaching — the descriptor
  carries the creator's tracker pid to tell the two apart.

Golden immutability
-------------------
All reconstructed views have ``writeable = False``: the injection engine
only ever *reads* goldens (it copies before corrupting — see
``repro.core.injector`` and the RP106 lint rule), and a stray in-place
write in a worker raises immediately instead of silently corrupting
every other worker's golden reference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.nn.network import InferenceResult

__all__ = [
    "SharedArray",
    "GoldenDescriptor",
    "SharedGoldenView",
    "publish_golden_state",
    "attach_golden_state",
    "release_segment",
]

#: Fresh names tried before giving up on segment creation.  Collisions
#: require pid reuse *and* a stale same-pid segment surviving its
#: resource tracker — each retry just bumps the counter suffix.
_CREATE_ATTEMPTS = 64

#: Per-array alignment inside the segment (cache-line sized).
_ALIGN = 64


@dataclass(frozen=True)
class SharedArray:
    """Placement of one numpy array inside the shared segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str  # numpy dtype string, endianness included (e.g. "<f8")


@dataclass(frozen=True)
class GoldenDescriptor:
    """Everything a worker needs to reconstruct the golden state.

    Picklable and small: array *placements*, never array payloads.

    Attributes:
        segment: Shared-memory segment name.
        nbytes: Segment size (attach-time sanity check).
        goldens: One ``(scores, activations)`` placement tuple per golden
            input, mirroring :class:`~repro.nn.network.InferenceResult`.
        weights: ``(layer_index, dtype_name, weight, bias)`` placements
            for every quantized-weight cache entry the parent had warmed.
        detector: The learned :class:`~repro.core.detectors.SymptomDetector`
            (or None); its bounds dict is a few floats — it travels in
            the descriptor, not the segment.
    """

    segment: str
    nbytes: int
    goldens: tuple[tuple[SharedArray, tuple[SharedArray, ...]], ...]
    weights: tuple[tuple[int, str, SharedArray, SharedArray], ...]
    detector: object | None = None
    #: Pid of the creator's resource-tracker process; lets attachers tell
    #: a shared tracker (fork workers — leave the create registration
    #: alone) from their own private one (spawn workers — deregister so
    #: worker exit cannot unlink the parent's segment).
    tracker_pid: int | None = None


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a fresh segment, retrying new names on collision.

    The retry-or-attach policy for ``SharedMemory(create=True)`` name
    collisions: a *creator* must never adopt a stale segment's bytes, so
    it retries fresh names; only the attach path (workers, pool
    rebuilds) reuses an existing name — and that path cannot create.
    """
    pid = os.getpid()
    for attempt in range(_CREATE_ATTEMPTS):
        name = f"repro-golden-{pid}-{attempt}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:
            continue
    raise RuntimeError(
        f"could not create a shared golden segment after {_CREATE_ATTEMPTS} "
        f"name attempts (stale repro-golden-{pid}-* segments?)"
    )


def _tracker_pid() -> int | None:
    """Pid of this process's resource-tracker process, if one is running."""
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    return getattr(tracker, "_pid", None)


def _attach_segment(name: str, creator_tracker: int | None = None) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    On Python >= 3.13 ``track=False`` skips resource-tracker
    registration.  Earlier versions register on attach too, and the
    right correction depends on *whose* tracker got the registration:

    - forked workers share the creator's tracker process, so the attach
      registration is an idempotent no-op on the creator's entry —
      deregistering there would strip the creator's SIGKILL protection;
    - spawned workers own a private tracker, whose attach registration
      would unlink the segment out from under the creator when the
      worker exits — that one must be removed.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        shm = shared_memory.SharedMemory(name=name, create=False)
        if _tracker_pid() != creator_tracker:
            try:
                # _name is what SharedMemory.__init__ registered (the
                # leading-slash POSIX spelling); unregister must match it.
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass  # tracker absent (e.g. in a daemon): nothing registered
        return shm


def release_segment(shm: shared_memory.SharedMemory | None) -> None:
    """Close and unlink a parent-owned segment; idempotent.

    Safe to call from ``finally`` paths in any state: double release,
    live views (``BufferError``), or a segment someone else already
    unlinked are all absorbed.
    """
    if shm is None:
        return
    try:
        shm.close()
    except BufferError:
        pass  # live exported views; the mapping dies with the process
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _plan(arrays: list[np.ndarray]) -> tuple[list[SharedArray], int]:
    """Assign aligned offsets to ``arrays``; returns (placements, total)."""
    placements: list[SharedArray] = []
    offset = 0
    for arr in arrays:
        placements.append(
            SharedArray(offset=offset, shape=tuple(arr.shape), dtype=arr.dtype.str)
        )
        offset += arr.nbytes
        offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
    return placements, max(offset, 1)


def _view(shm: shared_memory.SharedMemory, spec: SharedArray, *, writeable: bool) -> np.ndarray:
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset)
    if not writeable:
        arr.flags.writeable = False
    return arr


def publish_golden_state(task) -> tuple[GoldenDescriptor, shared_memory.SharedMemory]:
    """Pack a built campaign task's golden state into a shared segment.

    Args:
        task: A fully initialised ``_CampaignTask`` — its ``goldens``,
            ``network`` (with warmed quantized-weight caches) and
            ``detector`` are the published state.

    Returns:
        ``(descriptor, segment)``.  The caller owns the segment and must
        :func:`release_segment` it when the campaign ends.
    """
    arrays: list[np.ndarray] = []

    def add(arr: np.ndarray) -> int:
        arrays.append(np.ascontiguousarray(arr))
        return len(arrays) - 1

    golden_slots: list[tuple[int, tuple[int, ...]]] = []
    for golden in task.goldens:
        scores_slot = add(golden.scores)
        act_slots = tuple(add(a) for a in golden.activations)
        golden_slots.append((scores_slot, act_slots))

    weight_slots: list[tuple[int, str, int, int]] = []
    for li in task.network.mac_layer_indices():
        for dtype_name, (w, b) in sorted(
            task.network.layers[li].cached_quantized_weights().items()
        ):
            weight_slots.append((li, dtype_name, add(w), add(b)))

    placements, nbytes = _plan(arrays)
    shm = _create_segment(nbytes)
    for arr, spec in zip(arrays, placements):
        _view(shm, spec, writeable=True)[...] = arr

    descriptor = GoldenDescriptor(
        segment=shm.name,
        nbytes=nbytes,
        goldens=tuple(
            (placements[s], tuple(placements[a] for a in acts))
            for s, acts in golden_slots
        ),
        weights=tuple(
            (li, dtype_name, placements[ws], placements[bs])
            for li, dtype_name, ws, bs in weight_slots
        ),
        detector=task.detector,
        tracker_pid=_tracker_pid(),
    )
    return descriptor, shm


class SharedGoldenView:
    """A worker's read-only window onto the published golden state.

    Holds the attached segment open for the lifetime of the view: numpy
    views over ``shm.buf`` do NOT keep the mapping alive (numpy re-bases
    onto the underlying mmap, whose ``close()`` unmaps regardless of
    array references), so the arrays are valid exactly as long as this
    object stays un-closed.  Workers never need to call :meth:`close` —
    process exit releases the mapping — but an in-process (inline)
    campaign must purge every installed view before closing; see
    ``_CampaignTask.close``.
    """

    def __init__(self, descriptor: GoldenDescriptor):
        self.descriptor = descriptor
        self.shm = _attach_segment(descriptor.segment, descriptor.tracker_pid)
        if self.shm.size < descriptor.nbytes:
            raise ValueError(
                f"segment {descriptor.segment} is {self.shm.size} bytes, "
                f"descriptor expects {descriptor.nbytes}"
            )
        self.goldens: list[InferenceResult] = [
            InferenceResult(
                scores=_view(self.shm, scores, writeable=False),
                activations=[_view(self.shm, a, writeable=False) for a in acts],
            )
            for scores, acts in descriptor.goldens
        ]
        self.detector = descriptor.detector
        #: ``(layer_index, dtype_name)`` weight-cache entries this view
        #: actually installed (see :meth:`install_weights`).
        self.installed: list[tuple[int, str]] = []

    def install_weights(self, network) -> None:
        """Seed ``network``'s quantized-weight caches with shared views.

        Formats the network already has cached (forked workers inherit
        the parent's warm private arrays) are left untouched; only the
        entries actually installed here are recorded in ``installed`` so
        the campaign can purge exactly those before detaching — segment
        views die with the mapping, private arrays must survive it.
        """
        for li, dtype_name, wspec, bspec in self.descriptor.weights:
            if network.layers[li].install_quantized_weights(
                dtype_name,
                _view(self.shm, wspec, writeable=False),
                _view(self.shm, bspec, writeable=False),
            ):
                self.installed.append((li, dtype_name))

    def close(self) -> None:
        """Detach the segment; every view dies with the mapping.

        Callers must drop all references to the view's arrays first —
        an array read after close aliases unmapped memory.
        """
        self.goldens = []
        try:
            self.shm.close()
        except BufferError:
            pass


def attach_golden_state(descriptor: GoldenDescriptor) -> SharedGoldenView:
    """Reconstruct read-only golden state from a descriptor (worker side)."""
    return SharedGoldenView(descriptor)
