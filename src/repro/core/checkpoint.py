"""Campaign checkpoint/resume: atomic JSONL snapshots of completed trials.

At the paper's scale (~3M injections, Section 4) a campaign can run for
hours; losing every completed trial to one machine fault is not
acceptable.  :func:`repro.core.campaign.run_campaign` periodically hands
its completed :class:`~repro.core.campaign.TrialRecord` /
:class:`~repro.core.campaign.TrialError` batches to a
:class:`CheckpointWriter`, and on restart resumes from exactly the trial
indices that are missing.  Resume is *bit-identical* to an uninterrupted
run regardless of parallelism because every trial draws from its own
``child_rng(seed, trial_index)`` stream — a trial's outcome depends only
on its index, never on which worker ran it or when.

File format (version 1) — JSON Lines:

- line 1: header ``{"format": "repro-campaign-checkpoint", "version": 1,
  "fingerprint": ..., "spec": {...}}``
- one line per completed trial: ``{"index": i, "record": {...}}`` for a
  classified trial, ``{"index": i, "error": {...}}`` for a quarantined
  one, or ``{"index": i, "skip": {...}}`` for a trial whose propagation
  statistical early stopping elided (the skip carries the sampled fault
  coordinates, so a resumed run replays the same decisions
  bit-identically instead of re-deriving — or worse, re-running — them).

Every flush rewrites the file as an atomic snapshot — pid-unique temp
name + ``os.replace`` (the RP3xx atomic-write discipline, see
``docs/static_analysis.md``) — so a reader, or a resume after SIGKILL,
never observes a torn line.  The ``fingerprint`` keys the checkpoint to
its :class:`~repro.core.campaign.CampaignSpec`: resuming under a spec
with any differing field is refused rather than silently mixing trials
from two different fault models.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

from repro.core.campaign import CampaignSpec, TrialError, TrialRecord, TrialSkip
from repro.core.outcome import Outcome
from repro.core.serialize import from_jsonable, to_jsonable

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointMismatchError",
    "CheckpointState",
    "CheckpointWriter",
    "atomic_write_text",
    "campaign_fingerprint",
    "decode_record",
    "encode_record",
    "load_checkpoint",
]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Publish ``text`` at ``path`` via pid-unique temp + ``os.replace``.

    The RP3xx atomic-write discipline in one place: a concurrent writer
    or a SIGKILL mid-write can never leave a torn file behind.  Used by
    checkpoint snapshots and the run manifests of :mod:`repro.obs`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path

CHECKPOINT_VERSION = 1
_FORMAT = "repro-campaign-checkpoint"


class CheckpointMismatchError(RuntimeError):
    """The checkpoint on disk belongs to a different campaign spec."""


def campaign_fingerprint(spec: CampaignSpec) -> str:
    """Stable hash of every spec field that shapes trial outcomes.

    Any change to the spec — network, dtype, seed, trial count, fault
    model knobs — changes the fingerprint, so a checkpoint can never be
    resumed into a campaign it does not describe.
    """
    payload = json.dumps(to_jsonable(spec), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def encode_record(record: TrialRecord) -> dict:
    """Serialize one trial record to JSON-safe types."""
    return to_jsonable(dataclasses.asdict(record))


def decode_record(data: dict) -> TrialRecord:
    """Rebuild a :class:`TrialRecord` from its :func:`encode_record` form.

    Uses :func:`repro.core.serialize.from_jsonable` so non-finite
    corrupted values (``inf``/``nan`` after an exponent-bit flip) reload
    as floats, not strings.
    """
    plain = from_jsonable(data)
    assert isinstance(plain, dict)
    outcome = Outcome(**{
        f.name: plain["outcome"][f.name] for f in dataclasses.fields(Outcome)
    })
    kwargs = {
        f.name: plain[f.name]
        for f in dataclasses.fields(TrialRecord)
        if f.name != "outcome" and f.name in plain
    }
    return TrialRecord(outcome=outcome, **kwargs)


def _decode_error(data: dict) -> TrialError:
    plain = from_jsonable(data)
    assert isinstance(plain, dict)
    return TrialError(**{
        f.name: plain[f.name] for f in dataclasses.fields(TrialError) if f.name in plain
    })


def _decode_skip(data: dict) -> TrialSkip:
    plain = from_jsonable(data)
    assert isinstance(plain, dict)
    return TrialSkip(**{
        f.name: plain[f.name] for f in dataclasses.fields(TrialSkip) if f.name in plain
    })


@dataclasses.dataclass(frozen=True)
class CheckpointState:
    """Completed work recovered from a checkpoint file."""

    fingerprint: str | None
    records: dict[int, TrialRecord]
    errors: dict[int, TrialError]
    skips: dict[int, TrialSkip] = dataclasses.field(default_factory=dict)

    @property
    def n_completed(self) -> int:
        return len(self.records) + len(self.errors) + len(self.skips)


def load_checkpoint(path: str | Path, spec: CampaignSpec | None = None) -> CheckpointState | None:
    """Read a checkpoint; None when ``path`` does not exist.

    Args:
        path: Checkpoint JSONL file.
        spec: When given, the file's fingerprint must match the spec's
            (raises :class:`CheckpointMismatchError` otherwise).

    Undecodable lines are skipped rather than fatal — a checkpoint can
    only lose trials to corruption, never abort the campaign (skipped
    trials simply re-run).
    """
    path = Path(path)
    if not path.exists():
        return None
    fingerprint: str | None = None
    records: dict[int, TrialRecord] = {}
    errors: dict[int, TrialError] = {}
    skips: dict[int, TrialSkip] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                continue
            if data.get("format") == _FORMAT:
                fingerprint = data.get("fingerprint")
                continue
            index = int(data["index"])
            if "record" in data:
                records[index] = decode_record(data["record"])
            elif "error" in data:
                errors[index] = _decode_error(data["error"])
            elif "skip" in data:
                skips[index] = _decode_skip(data["skip"])
        except (KeyError, TypeError, ValueError):
            continue
    if spec is not None:
        expected = campaign_fingerprint(spec)
        if fingerprint != expected:
            raise CheckpointMismatchError(
                f"checkpoint {path} was written for fingerprint {fingerprint!r}, "
                f"but the requested campaign has {expected!r}; delete the file or "
                "point --checkpoint elsewhere to start fresh"
            )
    return CheckpointState(
        fingerprint=fingerprint, records=records, errors=errors, skips=skips
    )


class CheckpointWriter:
    """Accumulates completed trials and snapshots them atomically.

    Each :meth:`flush` rewrites the whole file (header + one line per
    completed trial, in index order) to a pid-unique temp name and
    publishes it with ``os.replace`` — concurrent or killed writers can
    never leave a torn file behind.  Snapshot cost is linear in completed
    trials; at the default flush cadence (one flush per completed chunk)
    this stays far below injection cost.
    """

    def __init__(self, path: str | Path, spec: CampaignSpec):
        self.path = Path(path)
        self.fingerprint = campaign_fingerprint(spec)
        self._header = {
            "format": _FORMAT,
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "spec": to_jsonable(spec),
        }
        self._entries: dict[int, dict] = {}
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)

    def preload(self, state: CheckpointState) -> None:
        """Carry a resumed run's prior trials into subsequent snapshots."""
        for index, record in state.records.items():
            self._entries[index] = {"index": index, "record": encode_record(record)}
        for index, error in state.errors.items():
            self._entries[index] = {
                "index": index,
                "error": to_jsonable(dataclasses.asdict(error)),
            }
        for index, skip in state.skips.items():
            self._entries[index] = {
                "index": index,
                "skip": to_jsonable(dataclasses.asdict(skip)),
            }
        self._dirty = self._dirty or state.n_completed > 0

    def add_record(self, index: int, record: TrialRecord) -> None:
        self._entries[index] = {"index": index, "record": encode_record(record)}
        self._dirty = True

    def add_error(self, index: int, error: TrialError) -> None:
        self._entries[index] = {"index": index, "error": to_jsonable(dataclasses.asdict(error))}
        self._dirty = True

    def add_skip(self, index: int, skip: TrialSkip) -> None:
        self._entries[index] = {"index": index, "skip": to_jsonable(dataclasses.asdict(skip))}
        self._dirty = True

    def flush(self) -> Path:
        """Publish an atomic snapshot of everything added so far."""
        if not self._dirty and self.path.exists():
            return self.path
        lines = [json.dumps(self._header, sort_keys=True)]
        lines.extend(
            json.dumps(self._entries[index], sort_keys=True) for index in sorted(self._entries)
        )
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._dirty = False
        return self.path
