"""FIT-rate calculation (paper Equation 1 and section 4.7).

``FIT = sum_component R_raw * S_component * SDC_component`` where
``R_raw`` is the raw upset rate per megabit, ``S`` the component size in
megabits and ``SDC`` the measured SDC probability of faults in that
component.

The paper estimates ``R_raw = 20.49 FIT/Mb`` at 16nm by extrapolating
Neale et al.'s 28nm SRAM measurement (157.62 FIT/MB, corrected by the
authors' acknowledged factor of 0.65) along the paper's Figure-1 trend.
ISO 26262 allots less than 10 FIT to the whole SoC; the accelerator's
budget is a small fraction of that (section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.buffers import BufferSpec
from repro.accel.datapath import LATCH_CLASSES, DatapathModel
from repro.accel.eyeriss import EyerissConfig

__all__ = [
    "R_RAW_FIT_PER_MBIT_16NM",
    "ISO26262_SOC_FIT_BUDGET",
    "fit_rate",
    "ComponentFit",
    "datapath_fit",
    "buffer_fit",
    "eyeriss_total_fit",
]

#: Raw soft-error rate at 16nm, FIT per megabit (paper section 4.7).
R_RAW_FIT_PER_MBIT_16NM = 20.49

#: ISO 26262 FIT budget for the whole SoC (section 2.3).
ISO26262_SOC_FIT_BUDGET = 10.0


def fit_rate(size_mbit: float, sdc_probability: float, r_raw: float = R_RAW_FIT_PER_MBIT_16NM) -> float:
    """Equation 1 for a single component."""
    if size_mbit < 0 or not 0.0 <= sdc_probability <= 1.0:
        raise ValueError("size must be >= 0 and SDC probability in [0, 1]")
    return r_raw * size_mbit * sdc_probability


@dataclass(frozen=True)
class ComponentFit:
    """FIT contribution of one hardware component."""

    component: str
    size_mbit: float
    sdc_probability: float
    fit: float


def datapath_fit(
    datapath: DatapathModel,
    sdc_by_latch: dict[str, float],
    r_raw: float = R_RAW_FIT_PER_MBIT_16NM,
) -> list[ComponentFit]:
    """Per-latch-class FIT of a PE-array datapath (Table 6 machinery).

    Args:
        datapath: Latch population model.
        sdc_by_latch: Measured SDC probability per latch class; a single
            ``"datapath"`` key applies one probability to every class.
    """
    out = []
    for lc in LATCH_CLASSES:
        sdc = sdc_by_latch.get(lc.name, sdc_by_latch.get("datapath"))
        if sdc is None:
            raise KeyError(f"no SDC probability for latch class {lc.name!r}")
        size_mbit = datapath.bits_of(lc.name) / 1e6
        out.append(ComponentFit(lc.name, size_mbit, sdc, fit_rate(size_mbit, sdc, r_raw)))
    return out


def buffer_fit(
    spec: BufferSpec,
    sdc_probability: float,
    r_raw: float = R_RAW_FIT_PER_MBIT_16NM,
) -> ComponentFit:
    """FIT of one buffer component (Table 8 machinery)."""
    return ComponentFit(
        spec.name, spec.size_mbit, sdc_probability, fit_rate(spec.size_mbit, sdc_probability, r_raw)
    )


def eyeriss_total_fit(
    config: EyerissConfig,
    datapath_sdc: dict[str, float],
    buffer_sdc: dict[str, float],
    detector_recall: float = 0.0,
    r_raw: float = R_RAW_FIT_PER_MBIT_16NM,
) -> dict[str, float]:
    """Overall FIT of an Eyeriss instance, optionally SED-protected.

    Args:
        config: Accelerator configuration (16nm projection for the paper).
        datapath_sdc: SDC probability per latch class (or ``"datapath"``).
        buffer_sdc: SDC probability per buffer component name.
        detector_recall: Fraction of SDC-causing faults caught by the
            symptom detector; detected faults no longer count as SDCs
            (section 6.2 reduces Eyeriss FIT by exactly this factor).

    Returns:
        Mapping of component name to FIT, plus ``"total"``.
    """
    if not 0.0 <= detector_recall <= 1.0:
        raise ValueError("detector_recall must be in [0, 1]")
    survive = 1.0 - detector_recall
    result: dict[str, float] = {}
    dp = datapath_fit(config.datapath, datapath_sdc, r_raw)
    result["datapath"] = sum(c.fit for c in dp) * survive
    for spec in config.buffers():
        if spec.name not in buffer_sdc:
            raise KeyError(f"no SDC probability for buffer {spec.name!r}")
        result[spec.name] = buffer_fit(spec, buffer_sdc[spec.name], r_raw).fit * survive
    result["total"] = sum(result.values())
    return result
