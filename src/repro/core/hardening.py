"""Selective Latch Hardening (SLH) — paper section 6.3.

The paper leverages the asymmetric per-bit SDC sensitivity (Figure 4):
only a few high-order bit latches dominate the datapath FIT rate, so
hardening those few latches with the cheapest sufficient technique buys
large FIT reductions at small area cost (Sullivan et al.'s analytical
model).  Three hardened latch designs are considered (Table 9):

==========================  =============  ===================
latch type                  area overhead  FIT-rate reduction
==========================  =============  ===================
Baseline                    1.0x           1x
Strike Suppression (RCC)    1.15x          6.3x
Redundant Node (SEUT)       2.0x           37x
Triplicated (TMR)           3.5x           1,000,000x
==========================  =============  ===================

This module provides: the hardened-latch library, the perfect-protection
coverage curve with its beta fit (Figure 9a), single-technique and
multi-technique (optimal mix) overhead-versus-target curves (Figures
9b/9c), and a greedy cost optimizer for choosing per-latch techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "HardenedLatch",
    "HARDENING_TECHNIQUES",
    "coverage_curve",
    "fit_beta",
    "single_technique_overhead",
    "optimize_hardening",
    "HardeningPlan",
]


@dataclass(frozen=True)
class HardenedLatch:
    """One hardened latch design point (Table 9)."""

    name: str
    area: float  # area relative to the baseline latch
    fit_reduction: float  # upset-rate reduction factor

    @property
    def overhead(self) -> float:
        """Extra area relative to the baseline latch."""
        return self.area - 1.0


#: Table 9's design points, in increasing strength.
HARDENING_TECHNIQUES: tuple[HardenedLatch, ...] = (
    HardenedLatch("RCC", 1.15, 6.3),
    HardenedLatch("SEUT", 2.0, 37.0),
    HardenedLatch("TMR", 3.5, 1_000_000.0),
)


def _normalize(per_latch_fit: np.ndarray) -> np.ndarray:
    fit = np.asarray(per_latch_fit, dtype=np.float64)
    if fit.ndim != 1 or fit.size == 0:
        raise ValueError("per_latch_fit must be a non-empty 1-D array")
    if (fit < 0).any():
        raise ValueError("per-latch FIT values must be non-negative")
    return fit


def coverage_curve(per_latch_fit: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """FIT reduction versus fraction of latches protected (Figure 9a).

    Latches are protected most-sensitive-first with a *perfect* hardening
    technique.  Returns ``(fraction_protected, fit_reduction)`` arrays of
    length ``n + 1`` starting at (0, 0); ``fit_reduction`` is the
    fraction of total FIT removed.
    """
    fit = _normalize(per_latch_fit)
    order = np.argsort(fit)[::-1]
    total = fit.sum()
    removed = np.concatenate(([0.0], np.cumsum(fit[order])))
    fraction = np.arange(fit.size + 1) / fit.size
    reduction = removed / total if total > 0 else np.zeros_like(removed)
    return fraction, reduction


def fit_beta(fraction: np.ndarray, reduction: np.ndarray) -> float:
    """Fit the paper's beta to a coverage curve.

    Models the curve as ``reduction(f) = 1 - exp(-beta * f)`` (normalized
    so reduction(1) = its observed endpoint); larger beta means fewer
    latches dominate the FIT rate.  Least squares on the log residual.
    """
    f = np.asarray(fraction, dtype=np.float64)
    r = np.asarray(reduction, dtype=np.float64)
    mask = (f > 0) & (r < 1.0) & (f < 1.0)
    if not mask.any():
        return float("inf")
    # log(1 - r) = -beta * f  ->  beta = -sum(f * log1p(-r)) / sum(f^2)
    lf = f[mask]
    lr = np.log1p(-r[mask])
    denom = float((lf * lf).sum())
    return float(-(lf * lr).sum() / denom) if denom else float("inf")


def single_technique_overhead(
    per_latch_fit: np.ndarray,
    technique: HardenedLatch,
    target_reduction: float,
) -> float | None:
    """Minimum area overhead to reach a FIT-reduction target with one
    technique applied to the most sensitive latches (Figures 9b/9c).

    Args:
        per_latch_fit: FIT contribution of each latch.
        technique: Hardened latch design to apply.
        target_reduction: Desired total FIT reduction factor (e.g. 37.0
            means the hardened datapath has 1/37 the original FIT).

    Returns:
        Fractional extra latch area (e.g. 0.2 = 20%), or None when the
        technique cannot reach the target even if applied to every latch.
    """
    fit = _normalize(per_latch_fit)
    if target_reduction <= 1.0:
        return 0.0
    total = fit.sum()
    if total == 0:
        return 0.0
    order = np.argsort(fit)[::-1]
    sorted_fit = fit[order]
    # Hardening the top-k latches leaves sum(rest) + sum(top)/r residual.
    # Compare in achieved-reduction space (total / residual >= target) so
    # the acceptance predicate is the same expression callers check the
    # result against; residual-vs-budget round-trips one more division
    # and can disagree by an ULP on exactly-met targets.
    protected_cum = np.concatenate(([0.0], np.cumsum(sorted_fit)))
    residual = (total - protected_cum) + protected_cum / technique.fit_reduction
    ok = np.nonzero(total / residual >= target_reduction)[0]
    if ok.size == 0:
        return None
    k = int(ok[0])
    return k / fit.size * technique.overhead


@dataclass
class HardeningPlan:
    """Output of the multi-technique optimizer.

    Attributes:
        assignment: Technique name per latch (``"Baseline"`` if unhardened).
        achieved_reduction: Resulting total FIT reduction factor.
        area_overhead: Fractional extra latch area.
    """

    assignment: list[str]
    achieved_reduction: float
    area_overhead: float


def _evaluate(
    fit: np.ndarray, choice: np.ndarray, options: list[tuple[str, float, float]]
) -> tuple[float, float]:
    """Residual FIT and mean area overhead of a per-latch assignment.

    The residual is accumulated per technique — sum the FIT assigned to
    each option, then divide once by its reduction — not per latch.  A
    division per latch rounds each term separately, which pushes plans
    that meet the target exactly in real arithmetic one ULP past it
    (e.g. ``1/37 + 30/37 > 31/37`` in float64).
    """
    residual = 0.0
    overhead = 0.0
    for c, (_, cost, reduction) in enumerate(options):
        mask = choice == c
        count = int(mask.sum())
        if not count:
            continue
        residual += float(fit[mask].sum()) / reduction
        overhead += cost * count
    return residual, overhead / fit.size


def optimize_hardening(
    per_latch_fit: np.ndarray,
    target_reduction: float,
    techniques: tuple[HardenedLatch, ...] = HARDENING_TECHNIQUES,
) -> HardeningPlan:
    """Choose per-latch hardening to hit a FIT target at minimum area.

    Lagrangian sweep: for a multiplier ``lam``, each latch independently
    picks the option minimizing ``fit_i / r + lam * cost``; sweeping
    ``lam`` over all per-latch switch points traces the lower convex hull
    of the (residual FIT, area) trade-off — the paper's "Multi" curve
    (Sullivan et al.'s error-sensitivity-proportional technique mix).
    Single-technique top-k plans are included as additional candidates,
    so the mix is never worse than any one technique alone.
    """
    fit = _normalize(per_latch_fit)
    n = fit.size
    total = fit.sum()
    if target_reduction <= 1.0 or total == 0:
        return HardeningPlan(["Baseline"] * n, 1.0 if total else float("inf"), 0.0)

    def achieved_of(residual: float) -> float:
        return total / residual if residual > 0 else float("inf")

    ordered = sorted(techniques, key=lambda t: t.area)
    options: list[tuple[str, float, float]] = [("Baseline", 0.0, 1.0)] + [
        (t.name, t.overhead, t.fit_reduction) for t in ordered
    ]

    # Switch-point multipliers where some latch changes its preference.
    lambdas = {0.0}
    for fi in fit:
        for _, ca, ra in options:
            for _, cb, rb in options:
                if cb > ca:
                    lam = fi * (1.0 / ra - 1.0 / rb) / (cb - ca)
                    if lam > 0:
                        lambdas.add(lam)

    candidates: list[np.ndarray] = []
    costs = np.array([c for _, c, _ in options])
    inv_red = np.array([1.0 / r for _, _, r in options])
    for lam in lambdas:
        scores = fit[:, None] * inv_red[None, :] + lam * costs[None, :]
        # Tie-break toward the cheaper option.
        choice = np.lexsort((costs[None, :].repeat(n, 0), scores))[:, 0]
        candidates.append(choice)

    # Single-technique top-k plans (k minimal to meet the target).
    order = np.argsort(fit)[::-1]
    for t_idx in range(1, len(options)):
        protected_cum = np.concatenate(([0.0], np.cumsum(fit[order])))
        residuals = (total - protected_cum) + protected_cum * inv_red[t_idx]
        ok = np.nonzero(total / residuals >= target_reduction)[0]
        if ok.size:
            choice = np.zeros(n, dtype=np.intp)
            choice[order[: int(ok[0])]] = t_idx
            candidates.append(choice)

    # Accept in achieved-reduction space — the same expression the plan
    # reports — so an accepted plan can never round to one ULP below the
    # target it was accepted against.
    best_choice = None
    best_area = np.inf
    for choice in candidates:
        residual, area = _evaluate(fit, choice, options)
        if achieved_of(residual) >= target_reduction and area < best_area:
            best_choice, best_area = choice, area
    if best_choice is None:
        # Unreachable target: strongest option everywhere.
        best_choice = np.full(n, len(options) - 1, dtype=np.intp)
        _, best_area = _evaluate(fit, best_choice, options)

    residual, _ = _evaluate(fit, best_choice, options)
    names = [options[c][0] for c in best_choice]
    return HardeningPlan(names, achieved_of(residual), best_area)
