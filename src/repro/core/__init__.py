"""The paper's core contribution: fault injection, SDC/FIT analysis and
the two protection techniques (SED, SLH)."""

from repro.core.campaign import CampaignResult, CampaignSpec, TrialRecord, run_campaign
from repro.core.detectors import DetectorQuality, SymptomDetector, learn_detector
from repro.core.fault import (
    DATAPATH_LATCHES,
    BufferFault,
    DatapathFault,
    sample_buffer_fault,
    sample_datapath_fault,
)
from repro.core.fit import (
    ISO26262_SOC_FIT_BUDGET,
    R_RAW_FIT_PER_MBIT_16NM,
    ComponentFit,
    buffer_fit,
    datapath_fit,
    eyeriss_total_fit,
    fit_rate,
)
from repro.core.hardening import (
    HARDENING_TECHNIQUES,
    HardenedLatch,
    HardeningPlan,
    coverage_curve,
    fit_beta,
    optimize_hardening,
    single_technique_overhead,
)
from repro.core.injector import InjectionResult, inject_buffer, inject_datapath, replay_chain
from repro.core.outcome import SDC_CLASSES, Outcome, classify_outcome
from repro.core.planner import (
    PlannerInputs,
    ProtectionPlan,
    plan_protection,
    sec_ded_overhead,
)
from repro.core.stats import RateEstimate, combine_counts, wilson_interval
from repro.core.tracing import (
    bitwise_mismatch_by_block,
    block_output_layers,
    euclidean_by_block,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "TrialRecord",
    "run_campaign",
    "DetectorQuality",
    "SymptomDetector",
    "learn_detector",
    "DATAPATH_LATCHES",
    "BufferFault",
    "DatapathFault",
    "sample_buffer_fault",
    "sample_datapath_fault",
    "ISO26262_SOC_FIT_BUDGET",
    "R_RAW_FIT_PER_MBIT_16NM",
    "ComponentFit",
    "buffer_fit",
    "datapath_fit",
    "eyeriss_total_fit",
    "fit_rate",
    "HARDENING_TECHNIQUES",
    "HardenedLatch",
    "HardeningPlan",
    "coverage_curve",
    "fit_beta",
    "optimize_hardening",
    "single_technique_overhead",
    "InjectionResult",
    "inject_buffer",
    "inject_datapath",
    "replay_chain",
    "SDC_CLASSES",
    "Outcome",
    "classify_outcome",
    "PlannerInputs",
    "ProtectionPlan",
    "plan_protection",
    "sec_ded_overhead",
    "RateEstimate",
    "combine_counts",
    "wilson_interval",
    "bitwise_mismatch_by_block",
    "block_output_layers",
    "euclidean_by_block",
]
