"""SDC outcome classification (paper section 4.6).

A DNN's output is a ranked candidate list with confidence scores, so the
paper defines four SDC classes instead of bit-compare:

- **SDC-1**: the faulty top-1 differs from the golden top-1.
- **SDC-5**: the faulty top-1 is not in the golden top-5.
- **SDC-10% / SDC-20%**: the confidence score of the top-ranked element
  deviates by more than 10% / 20% of its fault-free value.  Undefined
  for networks without confidence scores (NiN).

The paper defines SDC probability conditioned on the fault affecting an
architecturally visible state ("the fault was activated").  The injector
corrupts a value that is live by construction — the latch/buffer entry is
read by the computation — so *every* trial is activated and the SDC
denominator is the full injection count.  ``Outcome.masked`` records the
separate phenomenon of the corruption being erased on its way to the
output (POOL/ReLU/LRN masking, section 5.1.4): masked trials are non-SDC
outcomes, not excluded trials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import InferenceResult

__all__ = ["Outcome", "classify_outcome", "SDC_CLASSES"]

#: Outcome-class keys in paper order.
SDC_CLASSES = ("sdc1", "sdc5", "sdc10", "sdc20")


@dataclass(frozen=True)
class Outcome:
    """Classification of one injection trial.

    ``sdc10``/``sdc20`` are None for confidence-less networks.
    """

    masked: bool
    sdc1: bool
    sdc5: bool
    sdc10: bool | None
    sdc20: bool | None

    @property
    def benign(self) -> bool:
        """No critical (SDC-1) outcome — includes masked trials."""
        return not self.sdc1

    def flag(self, sdc_class: str) -> bool | None:
        """Look up one SDC-class flag by key (``"sdc1"`` ... ``"sdc20"``)."""
        if sdc_class not in SDC_CLASSES:
            raise KeyError(f"unknown SDC class {sdc_class!r}")
        return getattr(self, sdc_class)


def _confidence_deviation(golden: np.ndarray, faulty: np.ndarray) -> float:
    """Relative deviation of the top-ranked confidence score.

    Compares the faulty run's top-1 confidence against the golden run's
    top-1 confidence, relative to the golden value ("varies by more than
    +/-10% of its fault-free execution").
    """
    g_top = float(np.max(golden))
    f_top = float(faulty[int(np.argmax(faulty))])
    if not np.isfinite(f_top):
        return np.inf
    # Exact-zero guard before dividing by g_top; any nonzero golden top-1
    # (however small) must use the relative-deviation formula.
    if g_top == 0.0:  # repro: noqa[RP201]
        return np.inf if f_top != g_top else 0.0
    return abs(f_top - g_top) / abs(g_top)


def classify_outcome(
    golden: InferenceResult,
    faulty_scores: np.ndarray,
    has_confidence: bool,
    masked: bool = False,
) -> Outcome:
    """Classify one trial against its golden run.

    Args:
        golden: Fault-free inference result.
        faulty_scores: Output scores of the faulty run.
        has_confidence: Whether scores are confidences (softmax present).
        masked: Pre-computed masking flag from the injector; if False the
            score vectors are additionally compared for exact equality.
    """
    if masked or np.array_equal(golden.scores, faulty_scores):
        return Outcome(masked=True, sdc1=False, sdc5=False,
                       sdc10=False if has_confidence else None,
                       sdc20=False if has_confidence else None)
    g_top1 = golden.top1()
    with np.errstate(invalid="ignore"):
        f_top1 = int(np.argmax(faulty_scores))
    if np.isnan(faulty_scores).any():
        # A NaN-poisoned score vector has no meaningful ranking: the
        # downstream consumer would read a corrupted top-1.
        nan_all = np.isnan(faulty_scores).all()
        sdc1 = True if nan_all else (f_top1 != g_top1)
        sdc5 = True if nan_all else (f_top1 not in golden.topk(5))
    else:
        sdc1 = f_top1 != g_top1
        sdc5 = f_top1 not in golden.topk(5)
    if has_confidence:
        dev = _confidence_deviation(golden.scores, faulty_scores)
        sdc10: bool | None = bool(dev > 0.10)
        sdc20: bool | None = bool(dev > 0.20)
    else:
        sdc10 = sdc20 = None
    return Outcome(masked=False, sdc1=bool(sdc1), sdc5=bool(sdc5), sdc10=sdc10, sdc20=sdc20)
