"""Fault-injection campaign runner.

A campaign is N independent trials of: sample a fault site, inject it
into one inference, classify the outcome (section 4.6), optionally
evaluate the symptom detector on the faulty run.  Trials are seeded
individually (reproducible regardless of parallelism) and can fan out
over a process pool.

The aggregation API mirrors the paper's figures: SDC probability overall
(Figure 3), by bit position (Figure 4), by layer position (Figure 6), by
latch class or buffer component, with 95% confidence intervals
throughout.  SDC probabilities are over all injections: every sampled
fault corrupts a live value, so every trial is "activated" in the
paper's sense, and masked trials count as non-SDC outcomes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

import numpy as np

from repro.core.detectors import SymptomDetector, learn_detector
from repro.core.fault import (
    DATAPATH_LATCHES,
    sample_buffer_fault,
    sample_datapath_fault,
)
from repro.core.injector import (
    InjectionResult,
    finish_injection,
    prepare_buffer,
    prepare_datapath,
)
from repro.core.outcome import SDC_CLASSES, Outcome, classify_outcome
from repro.core.stats import RateEstimate, wilson_halfwidth
from repro.core.tracing import EventRecorder
from repro.dtypes.registry import get_dtype
from repro.obs.metrics import (
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    merge_timing,
)
from repro.obs.spans import enable_spans, span, timing_snapshot
from repro.obs.tracer import (
    TRACE_MODES,
    TraceWriter,
    build_trace,
    default_trace_path,
    load_trace,
)
from repro.utils.parallel import TrialFailure, effective_jobs, exc_summary, map_trials
from repro.utils.rng import child_rng
from repro.zoo.registry import eval_inputs, get_network

__all__ = [
    "CampaignSpec",
    "TrialRecord",
    "TrialError",
    "TrialSkip",
    "ExecutionStats",
    "CampaignAbortedError",
    "CampaignResult",
    "record_trial_metrics",
    "record_skip_metrics",
    "stratum_key",
    "run_campaign",
]

#: Campaign targets: the datapath, or one buffer reuse scope.
TARGETS = ("datapath", "layer_weight", "row_activation", "next_layer", "single_read")

#: Early-stopping stratum keys (see ``CampaignSpec.stop_stratify``).
STOP_STRATIFIERS = ("overall", "site", "block", "bit")


@dataclass(frozen=True)
class CampaignSpec:
    """Configuration of one fault-injection campaign.

    Attributes:
        network: Zoo network name.
        dtype: Data-type name (Table 3).
        target: ``"datapath"`` or a buffer scope (Table 8 components map
            to scopes via :mod:`repro.accel.buffers`).
        n_trials: Number of injections.
        scale: Network scale profile (``"reduced"`` / ``"full"``).
        n_inputs: Distinct golden inputs rotated across trials.
        seed: Root seed; every trial derives its own stream.
        latch: Pin the datapath latch class (None = uniform).
        bit: Pin the flipped bit position (None = uniform).
        burst: Adjacent bits flipped per fault (1 = the paper's
            single-event-upset model; >1 models multi-cell upsets).
        layer_index: Pin the victim MAC layer (None = MAC-weighted).
        with_detection: Evaluate the symptom detector on each trial.
        sed_cushion: Detector range cushion (paper: 0.10).
        sed_learn_inputs: Fault-free inputs used by the SED learning
            phase; enough to cover the eval distribution (golden runs
            must not trip the detector).
        detector_kind: ``"sed"`` (symptom-based, the paper's proposal) or
            ``"dmr"`` (bit-wise duplicate-and-compare baseline, which
            flags *every* activated fault — the paper's section-5.1.4
            argument for why DMR over-detects).
        record_propagation: Track whether the corruption survives to the
            network's final ACT fmap (Table 5's bit-wise SDC).
        storage_dtype: Optional reduced-precision buffer storage format
            (the Proteus protocol of section 6.1): fmaps/weights at rest
            hold the narrow representation, the datapath computes in
            ``dtype``, and buffer flips land in the narrow word.
        occupancy_weighted: Draw buffer-fault victim layers from the
            row-stationary schedule's bit-cycle exposures (strike uniform
            in space and time) instead of static data sizes.
        target_halfwidth: When set, stop sampling a stratum once the
            Wilson 95% half-width of its ``stop_sdc_class`` rate drops to
            this value (statistical early stopping; None = run every
            trial).  Part of the campaign identity: the set of executed
            trials depends on it.
        stop_stratify: Stratum key for early stopping: ``"overall"``
            (one global estimate), ``"site"`` (per latch class / buffer
            scope), ``"block"`` (per paper-level layer position) or
            ``"bit"`` (per flipped bit position).
        stop_check_every: Trial-index boundary between stop-decision
            evaluations.  Decisions look only at trials *before* the
            boundary — all resolved by then — so they are a pure function
            of the spec, never of ``jobs``/``batch``/``chunk``, arrival
            order or wall-clock.  In the spec (unlike ``chunk``) exactly
            because it shapes which trials run.
        stop_sdc_class: SDC class whose confidence interval early
            stopping drives (default ``"sdc1"``, the paper's headline
            rate).
        trace_mode: Propagation-trace selection policy: ``"off"`` (no
            traces), ``"sample"`` (trials whose index is divisible by
            ``trace_every``) or ``"all"``.  Selection is by trial index
            — a pure function of the spec — so the traced subset is
            part of the campaign identity (it changes the fingerprint),
            never of ``jobs``/``batch``/arrival order.
        trace_every: Sampling stride for ``trace_mode="sample"``.
    """

    network: str
    dtype: str
    target: str = "datapath"
    n_trials: int = 300
    scale: str = "reduced"
    n_inputs: int = 3
    seed: int = 0
    latch: str | None = None
    bit: int | None = None
    burst: int = 1
    layer_index: int | None = None
    with_detection: bool = False
    sed_cushion: float = 0.10
    sed_learn_inputs: int = 16
    detector_kind: str = "sed"
    record_propagation: bool = False
    storage_dtype: str | None = None
    occupancy_weighted: bool = False
    target_halfwidth: float | None = None
    stop_stratify: str = "overall"
    stop_check_every: int = 64
    stop_sdc_class: str = "sdc1"
    trace_mode: str = "off"
    trace_every: int = 16

    def trace_selected(self, index: int) -> bool:
        """Whether trial ``index`` is in the traced subset.

        Pure function of the spec and the index (the same discipline as
        ``child_rng`` seeding), so serial, parallel, batched and
        resumed executions trace exactly the same trials.
        """
        if self.trace_mode == "all":
            return True
        if self.trace_mode == "sample":
            return index % self.trace_every == 0
        return False

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"target must be one of {TARGETS}, got {self.target!r}")
        if self.n_trials < 0 or self.n_inputs < 1:
            raise ValueError("n_trials must be >= 0 and n_inputs >= 1")
        if self.latch is not None and self.latch not in DATAPATH_LATCHES:
            raise ValueError(f"unknown latch {self.latch!r}")
        if self.detector_kind not in ("sed", "dmr"):
            raise ValueError(f"unknown detector kind {self.detector_kind!r}")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.target_halfwidth is not None and not 0.0 < self.target_halfwidth < 0.5:
            raise ValueError(
                f"target_halfwidth must be in (0, 0.5), got {self.target_halfwidth}"
            )
        if self.stop_stratify not in STOP_STRATIFIERS:
            raise ValueError(
                f"stop_stratify must be one of {STOP_STRATIFIERS}, got {self.stop_stratify!r}"
            )
        if self.stop_check_every < 1:
            raise ValueError("stop_check_every must be >= 1")
        if self.stop_sdc_class not in SDC_CLASSES:
            raise ValueError(f"unknown SDC class {self.stop_sdc_class!r}")
        if self.trace_mode not in TRACE_MODES:
            raise ValueError(
                f"trace_mode must be one of {TRACE_MODES}, got {self.trace_mode!r}"
            )
        if self.trace_every < 1:
            raise ValueError("trace_every must be >= 1")


@dataclass(frozen=True)
class TrialRecord:
    """One injection trial's fault coordinates and outcome."""

    outcome: Outcome
    bit: int
    site: str  # latch class (datapath) or buffer scope
    block: int  # paper-level layer position of the victim
    value_before: float
    value_after: float
    detected: bool | None = None
    reached_output: bool | None = None


@dataclass(frozen=True)
class TrialError:
    """A quarantined trial: the harness survived, the trial did not.

    Attributes:
        index: Trial index that failed.
        reason: ``"error"`` (the trial raised), ``"crash"`` (its worker
            process died), or ``"timeout"`` (it exceeded the per-chunk
            deadline).
        exc_type: Exception class name, when one was caught.
        message: Exception message / compact traceback tail.
        site: Fault site sampled before the failure, when known.
        attempts: Executions attempted before quarantine.
    """

    index: int
    reason: str
    exc_type: str | None = None
    message: str = ""
    site: str | None = None
    attempts: int = 1


@dataclass(frozen=True)
class TrialSkip:
    """A trial whose propagation early stopping elided.

    The fault *was* sampled (its RNG stream, site, block and bit are the
    same as in a full run — that is what keeps skip decisions a pure
    function of the trial index), but its stratum had already met
    ``CampaignSpec.target_halfwidth``, so the expensive corruption build
    and propagation never ran.  Skips are checkpointed so a resumed run
    replays the same decisions bit-identically, and they are excluded
    from every rate aggregation (they have no outcome).
    """

    index: int
    site: str
    block: int
    bit: int


def stratum_key(stratify: str, site: str, block: int, bit: int) -> str:
    """The early-stopping stratum a fault belongs to.

    A plain string so the closed-strata set pickles compactly into
    worker control messages and checkpoint replay stays text-stable.
    """
    if stratify == "site":
        return str(site)
    if stratify == "block":
        return str(block)
    if stratify == "bit":
        return str(bit)
    return "overall"


def record_skip_metrics(metrics: MetricsRegistry, spec: CampaignSpec, skip: TrialSkip) -> None:
    """Fold one elided trial into the samples-saved counters.

    Same discipline as :func:`record_trial_metrics`: integer counters
    only, incremented identically by workers (live skips) and by the
    parent's checkpoint replay (resumed skips), so totals stay
    byte-identical across serial / parallel / shared-mem / resume.
    """
    metrics.inc("early_stop/skipped")
    metrics.inc(
        "early_stop/skipped/"
        + stratum_key(spec.stop_stratify, skip.site, skip.block, skip.bit)
    )


@dataclass(frozen=True)
class ExecutionStats:
    """Supervision counters for one :func:`run_campaign` invocation."""

    resumed: int = 0
    retries: int = 0
    rebuilds: int = 0
    timeouts: int = 0
    bisections: int = 0
    quarantined: int = 0
    degraded: bool = False

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Field-wise combination (for pooled multi-campaign results)."""
        return ExecutionStats(
            resumed=self.resumed + other.resumed,
            retries=self.retries + other.retries,
            rebuilds=self.rebuilds + other.rebuilds,
            timeouts=self.timeouts + other.timeouts,
            bisections=self.bisections + other.bisections,
            quarantined=self.quarantined + other.quarantined,
            degraded=self.degraded or other.degraded,
        )


class CampaignAbortedError(RuntimeError):
    """Raised when quarantined trials exceed the error-fraction budget.

    Completed trials are flushed to the checkpoint (when one is
    configured) before raising, so an aborted campaign loses no work.
    """

    def __init__(self, message: str, n_errors: int, n_completed: int,
                 checkpoint: Path | None = None):
        super().__init__(message)
        self.n_errors = n_errors
        self.n_completed = n_completed
        self.checkpoint = checkpoint


@dataclass
class CampaignResult:
    """Trial records plus the paper-style aggregations.

    ``records`` holds successfully classified trials only; trials the
    resilient runner had to quarantine appear in ``errors`` and are
    excluded from every aggregation (their outcomes are unknown, not
    non-SDC).  ``skips`` holds trials early stopping elided (their
    strata had met ``target_halfwidth``); they too are excluded from
    aggregations — an estimate's ``n`` is always the number of trials
    that actually propagated.  ``stopped_at`` is the trial-index
    boundary where sampling stopped globally (None = the campaign ran
    or skipped through all ``spec.n_trials`` indices).  ``stats``
    reports what the harness survived.  ``metrics`` is the merged
    observability snapshot (see :mod:`repro.obs.metrics`): its
    ``counters``/``histograms`` sections are deterministic — the same
    for any ``jobs`` value and across kill/resume — while anything
    wall-clock lives under its ``timing`` key.  ``traces`` maps trial
    index -> propagation-trace row for the traced subset (see
    :mod:`repro.obs.tracer`); trace rows obey the same determinism
    contract as ``records``.
    """

    spec: CampaignSpec
    records: list[TrialRecord] = field(default_factory=list)
    errors: list[TrialError] = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    metrics: dict = field(default_factory=empty_snapshot)
    skips: list[TrialSkip] = field(default_factory=list)
    stopped_at: int | None = None
    traces: dict[int, dict] = field(default_factory=dict)

    # -- basic counts ----------------------------------------------------- #
    @property
    def n_trials(self) -> int:
        return len(self.records)

    @property
    def masked_fraction(self) -> float:
        """Fraction of injections fully masked before the output
        (the paper observes ~84% masked by POOL/ReLU, Table 5)."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.outcome.masked) / len(self.records)

    # -- SDC rates ----------------------------------------------------------- #
    def sdc_rate(self, sdc_class: str = "sdc1", records: list[TrialRecord] | None = None) -> RateEstimate:
        """SDC probability over all injections, with 95% CI.

        Every sampled fault corrupts a live value (it is activated by
        construction), so the denominator is the full trial count;
        masked trials are non-SDC outcomes (see repro.core.outcome).
        """
        if sdc_class not in SDC_CLASSES:
            raise KeyError(f"unknown SDC class {sdc_class!r}")
        pool = records if records is not None else self.records
        flags = [r.outcome.flag(sdc_class) for r in pool]
        known = [f for f in flags if f is not None]
        return RateEstimate(successes=sum(known), n=len(known))

    def sdc_rates(self) -> dict[str, RateEstimate]:
        """All four SDC-class rates (Figure 3 bars for one config)."""
        return {c: self.sdc_rate(c) for c in SDC_CLASSES}

    def rate_by_bit(self, sdc_class: str = "sdc1") -> dict[int, RateEstimate]:
        """SDC probability per flipped bit position (Figure 4)."""
        bits = sorted({r.bit for r in self.records})
        return {
            b: self.sdc_rate(sdc_class, [r for r in self.records if r.bit == b])
            for b in bits
        }

    def rate_by_block(self, sdc_class: str = "sdc1") -> dict[int, RateEstimate]:
        """SDC probability per paper-level layer position (Figure 6)."""
        blocks = sorted({r.block for r in self.records})
        return {
            blk: self.sdc_rate(sdc_class, [r for r in self.records if r.block == blk])
            for blk in blocks
        }

    def rate_by_site(self, sdc_class: str = "sdc1") -> dict[str, RateEstimate]:
        """SDC probability per latch class / buffer scope."""
        sites = sorted({r.site for r in self.records})
        return {
            s: self.sdc_rate(sdc_class, [r for r in self.records if r.site == s])
            for s in sites
        }

    def propagation_rate(self, records: list[TrialRecord] | None = None) -> RateEstimate:
        """Fraction of injected faults whose corruption survives to the
        final fmap (Table 5's bit-wise SDC)."""
        pool = records if records is not None else self.records
        flags = [r.reached_output for r in pool if r.reached_output is not None]
        return RateEstimate(successes=sum(flags), n=len(flags))

    def propagation_by_block(self) -> dict[int, RateEstimate]:
        """Per-layer propagation rate (Table 5 columns)."""
        blocks = sorted({r.block for r in self.records})
        return {
            blk: self.propagation_rate([r for r in self.records if r.block == blk])
            for blk in blocks
        }

    # -- detector quality ----------------------------------------------------- #
    def detection_quality(self, sdc_class: str = "sdc1"):
        """Precision/recall of the symptom detector (Figure 8)."""
        from repro.core.detectors import DetectorQuality

        scored = [r for r in self.records if r.detected is not None]
        tp = sum(1 for r in scored if r.detected and r.outcome.flag(sdc_class))
        fp = sum(1 for r in scored if r.detected and not r.outcome.flag(sdc_class))
        total_sdc = sum(1 for r in scored if r.outcome.flag(sdc_class))
        return DetectorQuality(
            true_positives=tp,
            false_positives=fp,
            total_sdc=total_sdc,
            total_injected=len(scored),
        )

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        """Pool trials of two campaigns (for multi-config aggregates)."""
        return CampaignResult(
            spec=self.spec,
            records=self.records + other.records,
            errors=self.errors + other.errors,
            stats=self.stats.merge(other.stats),
            metrics=merge_snapshots(self.metrics, other.metrics),
            skips=self.skips + other.skips,
            stopped_at=self.stopped_at if self.stopped_at is not None else other.stopped_at,
            traces={**self.traces, **other.traces},
        )


def record_trial_metrics(metrics: MetricsRegistry, record: TrialRecord) -> None:
    """Fold one classified trial into the deterministic metric counters.

    Touches integer counters and a fixed-bucket histogram only, so a
    parent merging per-worker delta snapshots in any completion order —
    or replaying checkpointed records after a resume — reaches totals
    byte-identical to a serial run (see ``docs/observability.md``).
    """
    metrics.inc("trials")
    outcome = record.outcome
    if outcome.masked:
        metrics.inc("outcome/masked")
    for cls in SDC_CLASSES:
        if outcome.flag(cls):
            metrics.inc(f"outcome/{cls}")
    metrics.inc(f"site/{record.site}")
    metrics.inc(f"block/{record.block}")
    metrics.inc(f"bit/{record.bit}")
    if record.detected is not None:
        metrics.inc("detected/true" if record.detected else "detected/false")
    if record.reached_output:
        metrics.inc("reached_output")
    value = float(record.value_after)
    if np.isfinite(value):
        metrics.observe("abs_value_after", abs(value))
    else:
        metrics.inc("value_after/nonfinite")


def _maybe_test_fault(trial: int) -> None:
    """Meta fault injection: fail the *harness* on purpose (tests/CI only).

    A fault-injection framework must be able to inject faults into
    itself; the resilience tests and the CI kill/resume smoke drive this
    hook.  ``REPRO_CAMPAIGN_FAULT`` holds ``kind:selector[:arg]``:

    - ``crash:7`` — the worker running trial 7 calls ``os._exit``;
    - ``hang:7[:secs]`` — trial 7 sleeps (default 3600 s);
    - ``raise:7`` — trial 7 raises ``RuntimeError``;
    - ``slow:*[:secs]`` — every trial sleeps (default 0.05 s), stretching
      the campaign so a kill can land mid-flight.

    The selector is a trial index or ``*``.  Unset (the normal case),
    the hook is a no-op.
    """
    directive = os.environ.get("REPRO_CAMPAIGN_FAULT")
    if not directive:
        return
    kind, _, rest = directive.partition(":")
    selector, _, arg = rest.partition(":")
    if selector != "*" and (not selector or int(selector) != trial):
        return
    if kind == "crash":
        os._exit(41)
    elif kind == "hang":
        # Deliberate wedge so the supervisor's deadline machinery fires.
        time.sleep(float(arg) if arg else 3600.0)  # repro: noqa[RP104]
    elif kind == "slow":
        time.sleep(float(arg) if arg else 0.05)  # repro: noqa[RP104]
    elif kind == "raise":
        raise RuntimeError(f"injected test fault at trial {trial}")


class _CampaignTask:
    """Per-worker task: builds the network/goldens once, runs one trial
    per call.  Constructed lazily inside each worker process.

    When a :class:`~repro.core.sharedgolden.GoldenDescriptor` is given,
    the golden activations, quantized weights and learned detector are
    *attached* from the parent's shared-memory segment instead of being
    recomputed — the expensive ``golden_infer`` / ``learn_detector``
    phases run exactly once per campaign, in the parent.  Either way the
    golden bits are identical (the parent computed them with this same
    code), so trial outcomes are unaffected by the transport.
    """

    def __init__(self, spec: CampaignSpec, golden=None):
        self.spec = spec
        self.last_site: str | None = None
        self.dtype = get_dtype(spec.dtype)
        self.storage_dtype = get_dtype(spec.storage_dtype) if spec.storage_dtype else None
        self.network = get_network(spec.network, spec.scale)
        self._shm_view = None
        if golden is not None:
            from repro.core.sharedgolden import attach_golden_state

            with span("golden_attach"):
                self._shm_view = attach_golden_state(golden)
            self.goldens = self._shm_view.goldens
            self._shm_view.install_weights(self.network)
            self.detector: SymptomDetector | None = None
            if spec.with_detection and spec.detector_kind == "sed":
                self.detector = golden.detector
        else:
            self.network.prepare(self.dtype)
            inputs = eval_inputs(spec.network, spec.n_inputs, spec.scale, seed=100)
            with span("golden_infer"):
                self.goldens = [
                    self.network.forward(
                        x, dtype=self.dtype, record=True, storage_dtype=self.storage_dtype
                    )
                    for x in inputs
                ]
            self.detector = None
            if spec.with_detection and spec.detector_kind == "sed":
                learn_x = eval_inputs(spec.network, spec.sed_learn_inputs, spec.scale, seed=200)
                with span("learn_detector"):
                    self.detector = learn_detector(
                        self.network, learn_x, dtype=self.dtype, cushion=spec.sed_cushion
                    )
        #: Layer index -> block for detector checkpoints; the tracer
        #: derives the detector-firing layer from it (empty when no
        #: symptom detector is configured).
        self.detector_checkpoints: dict[int, int] = (
            self.detector.checkpoints(self.network) if self.detector is not None else {}
        )
        self.occupancy = None
        if spec.occupancy_weighted:
            from repro.accel.eyeriss import EYERISS_16NM
            from repro.accel.occupancy import build_occupancy

            self.occupancy = build_occupancy(self.network, EYERISS_16NM)
        self._final_act_layer = len(self.network.layers) - 1
        if self.network.layers[-1].kind == "softmax":
            self._final_act_layer -= 1

    def _reached(self, golden, injection) -> bool | None:
        if not injection.faulty_activations:
            return False if injection.masked else None
        # activations[j] = output of layer (resume_index + j - 1)
        j = self._final_act_layer - injection.resume_index + 1
        if j < 0 or j >= len(injection.faulty_activations):
            return None
        return not np.array_equal(
            injection.faulty_activations[j],
            golden.activations[self._final_act_layer + 1],
        )

    def sample_trial(self, trial: int):
        """Draw trial ``trial``'s fault without building its corruption.

        Consumes exactly the RNG stream a full run would (the fault's
        coordinates are a pure function of the trial index), so early
        stopping can decide from the returned ``meta`` whether the
        expensive :meth:`build_trial` + propagation is needed at all.
        Returns ``(fault, meta)``.
        """
        spec = self.spec
        self.last_site = None
        _maybe_test_fault(trial)
        rng = child_rng(spec.seed, trial)
        golden = self.goldens[trial % len(self.goldens)]
        # Traced trials need the per-layer activations recorded even
        # when detection/propagation tracking is off.  Recording never
        # changes the arithmetic, so forcing it per-trial keeps outcomes
        # bit-identical to an untraced run of the same spec.
        traced = spec.trace_selected(trial)
        record = spec.with_detection or spec.record_propagation or traced
        if spec.target == "datapath":
            fault = sample_datapath_fault(
                self.network,
                self.dtype,
                rng,
                latch=spec.latch,
                bit=spec.bit,
                layer_index=spec.layer_index,
                burst=spec.burst,
            )
            site = self.last_site = fault.latch
        else:
            # Buffer flips land in the storage word (Proteus-aware).
            fault_dtype = self.storage_dtype or self.dtype
            fault = sample_buffer_fault(
                self.network, spec.target, fault_dtype, rng, bit=spec.bit,
                burst=spec.burst, occupancy=self.occupancy,
            )
            site = self.last_site = fault.scope
        meta = {
            "golden": golden,
            "site": site,
            "block": self.network.layers[fault.layer_index].block or 0,
            "bit": fault.bit,
            "record": record,
            "traced": traced,
        }
        return fault, meta

    def build_trial(self, fault, meta: dict):
        """Build a sampled fault's corruption (no propagation yet)."""
        if self.spec.target == "datapath":
            return prepare_datapath(
                self.network, self.dtype, fault, meta["golden"], self.storage_dtype
            )
        return prepare_buffer(
            self.network, self.dtype, fault, meta["golden"], self.storage_dtype
        )

    def prepare_trial(self, trial: int):
        """Sample and build trial ``trial``'s corruption without propagating.

        Returns ``(prep, meta)`` where ``prep`` is the
        :class:`~repro.core.injector.PreparedInjection` and ``meta``
        carries everything :meth:`complete_trial` needs (golden, site,
        block, bit, record flag).
        """
        fault, meta = self.sample_trial(trial)
        return self.build_trial(fault, meta), meta

    def close(self) -> None:
        """Detach the shared golden view, if one is attached.

        Closing unmaps the segment immediately (numpy views do NOT keep
        the mapping alive — they alias freed memory afterwards), so every
        shared view must be purged first.  ``get_network`` memoizes
        network instances per process, so the quantized-weight caches we
        installed views into would otherwise serve dangling pointers to
        the *next* campaign in this process.
        """
        if self._shm_view is None:
            return
        for li, dtype_name in self._shm_view.installed:
            self.network.layers[li].discard_quantized_weights(dtype_name)
        self.goldens = []
        self._shm_view.close()
        self._shm_view = None

    def complete_trial(self, meta: dict, injection: InjectionResult) -> TrialRecord:
        """Classify one propagated injection into a :class:`TrialRecord`."""
        spec = self.spec
        golden = meta["golden"]
        outcome = classify_outcome(
            golden, injection.scores, self.network.has_confidence, masked=injection.masked
        )
        detected: bool | None = None
        if spec.with_detection and spec.detector_kind == "dmr":
            # Bit-wise duplicate-and-compare flags any architecturally
            # visible mismatch, even those later masked by POOL/ReLU.
            detected = not injection.masked
        elif self.detector is not None:
            detected = (
                False
                if injection.masked
                else self.detector.scan(
                    self.network, injection.faulty_activations, injection.resume_index
                )
            )
        reached = self._reached(golden, injection) if spec.record_propagation else None
        return TrialRecord(
            outcome=outcome,
            bit=meta["bit"],
            site=meta["site"],
            block=meta["block"],
            value_before=injection.value_before,
            value_after=injection.value_after,
            detected=detected,
            reached_output=reached,
        )

    def __call__(self, trial: int) -> TrialRecord:
        prep, meta = self.prepare_trial(trial)
        injection = finish_injection(
            self.network, self.dtype, prep, meta["golden"],
            record=meta["record"], storage_dtype=self.storage_dtype,
        )
        return self.complete_trial(meta, injection)


class _SafeTrialTask:
    """Per-worker wrapper: an exception inside a trial becomes a
    quarantined :class:`TrialError` instead of poisoning the chunk.

    Also the per-worker observability surface.  Successful trials fold
    into a process-local :class:`MetricsRegistry`; :meth:`collect_obs`
    takes a *delta* snapshot that travels back in the same message as the
    chunk's results (see ``repro.utils.parallel``), so a crashed or
    timed-out chunk loses its metrics and its records together — retries
    can never double-count.  Quarantined trials increment nothing: the
    registry counts classified outcomes only, which is what keeps serial,
    parallel and resumed totals byte-identical.
    """

    def __init__(self, spec: CampaignSpec, spans: bool = False, batch: int = 1,
                 golden=None):
        if spans:
            # Before _CampaignTask so golden_infer / learn_detector and
            # the per-layer forward spans inside them are captured.
            enable_spans()
        self.metrics = MetricsRegistry()
        #: Propagation-trace rows for trials in the traced subset; like
        #: the metric deltas, they ship back with the chunk's results in
        #: :meth:`collect_obs`, so a crashed chunk loses its traces and
        #: its records together and retries never duplicate rows.
        self.traces: list[dict] = []
        #: Trials propagated per forward_from_batch call; the parallel
        #: layer dispatches whole index slices to run_many when > 1.
        self.group_size = max(1, int(batch))
        self.task = _CampaignTask(spec, golden)
        #: Strata the early-stopping planner has closed.  Updated per
        #: round via :meth:`apply_control`; faults in a closed stratum
        #: skip corruption build + propagation.
        self._closed: frozenset[str] = frozenset()

    def apply_control(self, ctl: object) -> None:
        """Install the planner's per-round control message.

        Called by the parallel layer before a chunk runs (in the worker
        that executes it).  The message replaces — never augments — the
        previous round's state, so a worker that served round ``w`` and
        then round ``w+2`` holds exactly round ``w+2``'s closed set.
        """
        closed = () if not isinstance(ctl, dict) else ctl.get("closed", ())
        self._closed = frozenset(closed)

    def _maybe_skip(self, trial: int, meta: dict) -> TrialSkip | None:
        """Elide the trial when its stratum is closed (early stopping)."""
        if not self._closed:
            return None
        key = stratum_key(
            self.task.spec.stop_stratify, meta["site"], meta["block"], meta["bit"]
        )
        if key not in self._closed:
            return None
        skip = TrialSkip(
            index=trial, site=meta["site"], block=meta["block"], bit=meta["bit"]
        )
        record_skip_metrics(self.metrics, self.task.spec, skip)
        return skip

    def close(self) -> None:
        """Release per-worker resources (the shared golden view)."""
        self.task.close()

    def __call__(self, trial: int) -> TrialRecord | TrialError | TrialSkip:
        try:
            with span("trial"):
                fault, meta = self.task.sample_trial(trial)
                skip = self._maybe_skip(trial, meta)
                if skip is not None:
                    return skip
                prep = self.task.build_trial(fault, meta)
                injection = finish_injection(
                    self.task.network, self.task.dtype, prep, meta["golden"],
                    record=meta["record"], storage_dtype=self.task.storage_dtype,
                )
                record = self.task.complete_trial(meta, injection)
        except Exception as exc:
            return TrialError(
                index=trial,
                reason="error",
                exc_type=type(exc).__name__,
                message=exc_summary(exc),
                site=self.task.last_site,
            )
        record_trial_metrics(self.metrics, record)
        self._emit_trace(trial, meta, injection, record)
        return record

    def _emit_trace(self, trial: int, meta: dict, injection: InjectionResult,
                    record: TrialRecord) -> None:
        """Derive and stage the trial's propagation-trace row, if traced."""
        if not meta.get("traced"):
            return
        self.traces.append(
            build_trace(
                trial=trial,
                meta=meta,
                injection=injection,
                record=record,
                network=self.task.network,
                detector=self.task.detector,
                detector_checkpoints=self.task.detector_checkpoints,
            )
        )

    def _quarantine(self, trial: int, exc: Exception, site: str | None) -> TrialError:
        return TrialError(
            index=trial,
            reason="error",
            exc_type=type(exc).__name__,
            message=exc_summary(exc),
            site=site,
        )

    def _complete(self, trial: int, meta: dict, injection: InjectionResult):
        try:
            record = self.task.complete_trial(meta, injection)
        except Exception as exc:
            return self._quarantine(trial, exc, meta["site"])
        record_trial_metrics(self.metrics, record)
        self._emit_trace(trial, meta, injection, record)
        return record

    def _finish_serial(self, trial: int, prep, meta: dict):
        try:
            injection = finish_injection(
                self.task.network, self.task.dtype, prep, meta["golden"],
                record=meta["record"], storage_dtype=self.task.storage_dtype,
            )
        except Exception as exc:
            return self._quarantine(trial, exc, meta["site"])
        return self._complete(trial, meta, injection)

    def run_many(self, indices: list[int]) -> list:
        """Run a slice of trials with grouped (batched) propagation.

        Corruption building, outcome classification and the metric folds
        stay per-trial; only the network-tail propagation is grouped, by
        resume layer (``spec.storage_dtype`` is constant per campaign, so
        the resume index alone determines the tail computation).  Results
        are positionally aligned with ``indices`` and bit-identical to
        calling ``self(i)`` for each index; a failing group falls back to
        serial propagation so one bad trial cannot poison its batch-mates.
        """
        results: list = [None] * len(indices)
        groups: dict[int, list] = {}
        for pos, trial in enumerate(indices):
            try:
                with span("trial"):
                    fault, meta = self.task.sample_trial(trial)
                    skip = self._maybe_skip(trial, meta)
                    if skip is not None:
                        results[pos] = skip
                        continue
                    prep = self.task.build_trial(fault, meta)
                    if prep.masked:
                        injection = finish_injection(
                            self.task.network, self.task.dtype, prep,
                            meta["golden"], record=meta["record"],
                            storage_dtype=self.task.storage_dtype,
                        )
                        results[pos] = self._complete(trial, meta, injection)
                    else:
                        groups.setdefault(prep.resume_index, []).append(
                            (pos, trial, prep, meta)
                        )
            except Exception as exc:
                results[pos] = self._quarantine(trial, exc, self.task.last_site)
        for items in groups.values():
            # Cluster corruptions on nearby rows into the same batch: the
            # delta engine recomputes each batch's *union* row span, so a
            # sorted split keeps unions narrow where a random split would
            # push them toward the full feature map and forfeit the delta
            # savings.  Per-trial results are independent of batch
            # composition (bit-exactness contract), so ordering is purely
            # an efficiency choice.
            items.sort(
                key=lambda it: (it[2].dirty_rows is None, it[2].dirty_rows or (0, 0))
            )
            for start in range(0, len(items), self.group_size):
                self._run_group(items[start : start + self.group_size], results)
        return results

    def _run_group(self, items: list, results: list) -> None:
        task = self.task
        resume_index = items[0][2].resume_index
        # Record when *any* trial in the group needs activations (trace
        # sampling makes the flag per-trial); recording never changes
        # the arithmetic, so batch-mates are unaffected.
        record = any(meta["record"] for _, _, _, meta in items)
        try:
            with span("propagate_batch"):
                batch = task.network.forward_from_batch(
                    resume_index,
                    [prep.act for _, _, prep, _ in items],
                    dtype=task.dtype,
                    record=record,
                    storage_dtype=task.storage_dtype,
                    goldens=[meta["golden"] for _, _, _, meta in items],
                    dirty_rows=[prep.dirty_rows for _, _, prep, _ in items],
                )
        except Exception:
            # Batched propagation failed (e.g. one pathological trial):
            # redo the whole group serially so each trial quarantines —
            # or succeeds — on its own.
            for pos, trial, prep, meta in items:
                results[pos] = self._finish_serial(trial, prep, meta)
            return
        for b, (pos, trial, prep, meta) in enumerate(items):
            injection = InjectionResult(
                scores=batch.scores[b],
                masked=False,
                value_before=prep.value_before,
                value_after=prep.value_after,
                resume_index=prep.resume_index,
                faulty_activations=batch.activations[b] if meta["record"] else [],
            )
            results[pos] = self._complete(trial, meta, injection)

    def collect_obs(self) -> dict:
        """Delta snapshot of metrics plus span timings since last call.

        Trace rows staged since the previous collection ride along under
        a ``"traces"`` key; the parent pops them into the trace sink
        before merging the rest into its metrics registry.
        """
        snap = self.metrics.snapshot(reset=True)
        snap["timing"] = merge_timing(snap["timing"], timing_snapshot(reset=True))
        if self.traces:
            snap["traces"] = self.traces
            self.traces = []
        return snap


class _EarlyStopPlanner:
    """Wave scheduler for statistical early stopping.

    Trials are planned in fixed waves of ``spec.stop_check_every``
    indices.  Before wave ``w`` is released, every trial of waves
    ``< w`` has resolved (the parallel layer runs rounds to completion),
    so the stop decision for wave ``w`` looks at exactly the records in
    the index prefix ``[0, w * stop_check_every)`` — a pure function of
    the spec and the checkpoint contents, never of ``jobs``, ``batch``,
    ``chunk``, arrival order or wall-clock.  Serial, parallel,
    shared-memory and kill/resume executions therefore make identical
    skip decisions trial-for-trial.

    A stratum *closes* once the Wilson 95% half-width of its
    ``stop_sdc_class`` rate drops to ``target_halfwidth``.  Closed
    strata stop accumulating records (their trials are skipped), so
    their estimates — and the closed set — are monotone: a closed
    stratum never reopens.  The campaign stops globally at the first
    boundary where every *observed* stratum is closed.
    """

    def __init__(self, spec: CampaignSpec, done: dict, recorder: EventRecorder):
        self.spec = spec
        self.done = done
        self.recorder = recorder
        #: First index of the next wave to release.
        self.lo = 0
        #: Next index to fold into ``counts`` (everything below is in).
        self._counted = 0
        #: stratum key -> [successes, n] over resolved records.
        self.counts: dict[str, list[int]] = {}
        #: Boundary where the campaign stopped (None until it does).
        self.stopped_at: int | None = None

    def _fold_prefix(self, hi: int) -> None:
        spec = self.spec
        for i in range(self._counted, hi):
            value = self.done.get(i)
            if not isinstance(value, TrialRecord):
                continue  # errors and skips carry no outcome
            flag = value.outcome.flag(spec.stop_sdc_class)
            if flag is None:
                continue
            key = stratum_key(spec.stop_stratify, value.site, value.block, value.bit)
            cell = self.counts.setdefault(key, [0, 0])
            cell[0] += int(flag)
            cell[1] += 1
        self._counted = hi

    def _closed_strata(self) -> frozenset[str]:
        target = self.spec.target_halfwidth
        return frozenset(
            key
            for key, (successes, n) in self.counts.items()
            if n > 0 and wilson_halfwidth(successes, n) <= target
        )

    def __call__(self):
        """Next round: ``(indices, control)`` — or None when finished.

        Skips waves fully covered by the checkpoint (their records still
        fold into the counts, so a resumed run replays every decision of
        the interrupted one bit-identically).
        """
        spec = self.spec
        step = spec.stop_check_every
        while self.lo < spec.n_trials:
            self._fold_prefix(self.lo)
            closed = self._closed_strata()
            if self.counts and len(closed) == len(self.counts):
                self.stopped_at = self.lo
                self.recorder.emit(
                    "early_stop", boundary=self.lo, strata=sorted(closed)
                )
                return None
            hi = min(self.lo + step, spec.n_trials)
            todo = [i for i in range(self.lo, hi) if i not in self.done]
            self.lo = hi
            if todo:
                return todo, {"closed": tuple(sorted(closed))}
        return None


def run_campaign(
    spec: CampaignSpec,
    jobs: int | None = 1,
    *,
    batch: int = 1,
    chunk: int = 64,
    shared_golden: bool | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    checkpoint_every: int = 64,
    trial_timeout: float | None = None,
    max_retries: int = 2,
    max_error_frac: float = 0.0,
    backoff_base: float = 0.5,
    backoff_cap: float = 8.0,
    timeout_grace: float = 5.0,
    events: EventRecorder | None = None,
    metrics: MetricsRegistry | None = None,
    spans: bool = False,
    manifest: str | Path | None = None,
    run_log: str | Path | None = None,
    progress_every: float = 0.0,
    trace_path: str | Path | None = None,
) -> CampaignResult:
    """Execute a campaign resiliently, optionally across a process pool.

    Trial ``i`` always uses the RNG stream ``child_rng(spec.seed, i)``,
    so results are identical for any ``jobs`` value — and, because a
    trial's outcome depends only on its index, a checkpointed campaign
    resumes bit-identically after a kill.

    Args:
        spec: Campaign configuration.
        jobs: Worker processes (1 = inline, None/0 = all cores).
        batch: Trials propagated per ``forward_from_batch`` call (1 =
            the serial per-trial path).  An execution knob, not part of
            the campaign identity: results, checkpoints and metric
            counters are bit-identical for every value (the batched
            engine replays the serial arithmetic exactly), so it is
            deliberately *not* in :class:`CampaignSpec` or the
            checkpoint fingerprint — a campaign checkpointed at one
            batch size resumes correctly at another.
        chunk: Trials per inter-process message.
        shared_golden: Publish the golden activations / quantized
            weights / detector into a ``multiprocessing.shared_memory``
            segment computed once by the parent; workers attach
            read-only views instead of re-running golden inference.
            ``None`` (the default) auto-enables it for multi-worker
            runs.  Like ``batch``, a pure execution knob: the golden
            bits are identical either way, so results, checkpoints and
            metric counters are bit-identical with it on or off.
        checkpoint: JSONL checkpoint path; completed trials are
            periodically snapshotted there (atomically).
        resume: Skip trial indices already present in ``checkpoint``.
            A checkpoint written under any other spec is refused
            (:class:`~repro.core.checkpoint.CheckpointMismatchError`).
            Previously quarantined trials are *not* re-run; delete the
            checkpoint to retry them.
        checkpoint_every: Completed trials between snapshot flushes.
        trial_timeout: Per-trial seconds before a chunk is declared hung
            (see :func:`repro.utils.parallel.map_trials`); None disables.
        max_retries: Retry budget per failing chunk / raising trial.
        max_error_frac: Abort (:class:`CampaignAbortedError`) once more
            than this fraction of ``spec.n_trials`` is quarantined.  The
            default 0.0 tolerates no errors — raising it is an explicit
            statement that partial campaigns are acceptable.
        backoff_base / backoff_cap: Pool-rebuild backoff schedule.
        timeout_grace: Flat per-chunk allowance for worker startup.
        events: :class:`~repro.core.tracing.EventRecorder` observing
            retry/rebuild/quarantine/resume events (a fresh one is used
            when None; note ``stats`` counts reflect every emission the
            recorder has seen).
        metrics: :class:`~repro.obs.metrics.MetricsRegistry` that worker
            delta snapshots merge into (a fresh one when None).  Resumed
            checkpoint records are replayed into it, so a resumed run's
            totals equal an uninterrupted run's.
        spans: Enable hierarchical timing spans — in this process and in
            every worker (``trial``, ``golden_infer``, per-layer forward,
            injection phases).  Off by default; the disabled path is a
            single flag check.
        manifest: Run-manifest JSON path.  When None and ``checkpoint``
            is set, defaults to ``<checkpoint>.manifest.json`` next to
            it (see :func:`repro.obs.manifest.default_obs_paths`).
        run_log: Structured JSONL run-log path; same defaulting rule
            (``<checkpoint>.runlog.jsonl``).
        progress_every: Seconds between ``progress`` events on the
            recorder (throughput / ETA material for a
            :class:`~repro.obs.progress.ProgressReporter` sink); 0
            disables periodic emission.  A final ``progress`` event is
            emitted either way when any trials ran.
        trace_path: Propagation-trace JSONL path (only meaningful when
            ``spec.trace_mode != "off"``).  When None and ``checkpoint``
            is set, defaults to ``<checkpoint>.trace.jsonl`` next to it;
            with neither, trace rows are collected in memory only
            (``CampaignResult.traces``).  The file is byte-identical
            across serial / parallel / batched / shared-mem / resumed
            executions: rows are pure functions of the trial index, and
            a resumed run re-executes any checkpointed trial whose trace
            row had not reached disk (re-deriving identical bytes)
            instead of leaving a hole.
    """
    recorder = events if events is not None else EventRecorder()
    registry = metrics if metrics is not None else MetricsRegistry()
    if spans:
        enable_spans()
    writer = None
    done: dict[int, TrialRecord | TrialError | TrialSkip] = {}
    resumed = 0
    resumed_skips = 0
    tracing = spec.trace_mode != "off"
    trace_writer = None
    trace_rows: dict[int, dict] = {}
    if tracing:
        if trace_path is None and checkpoint is not None:
            trace_path = default_trace_path(checkpoint)
        if trace_path is not None:
            # Imported lazily: checkpoint.py depends on this module's types.
            from repro.core.checkpoint import campaign_fingerprint

            trace_writer = TraceWriter(
                trace_path, campaign_fingerprint(spec), spec.trace_mode, spec.trace_every
            )
    if checkpoint is not None:
        # Imported lazily: checkpoint.py depends on this module's types.
        from repro.core.checkpoint import CheckpointWriter, load_checkpoint

        writer = CheckpointWriter(checkpoint, spec)
        if resume:
            state = load_checkpoint(checkpoint, spec=spec)
            if state is not None:
                retrace: set[int] = set()
                if tracing:
                    if trace_writer is not None:
                        prior_header, prior_rows = load_trace(trace_writer.path)
                        if (
                            prior_header is not None
                            and prior_header.get("fingerprint") == trace_writer.fingerprint
                        ):
                            trace_writer.preload(prior_rows)
                            trace_rows.update(prior_rows)
                    # Checkpointed trials whose trace row never reached
                    # disk re-run purely for their trace: outcomes are
                    # pure functions of the trial index, so the re-run
                    # re-derives identical records and identical trace
                    # bytes (already-traced trials are skipped as usual).
                    retrace = {
                        i for i in state.records
                        if spec.trace_selected(i) and i not in trace_rows
                    }
                done.update(
                    {i: r for i, r in state.records.items() if i not in retrace}
                )
                done.update(state.errors)
                done.update(state.skips)
                writer.preload(state)
                resumed = state.n_completed - len(retrace)
                resumed_skips = len(state.skips)
                # Replay completed trials into the registry so resumed
                # totals match an uninterrupted run's exactly (re-traced
                # trials are excluded: their live re-run counts them).
                for index, prior in state.records.items():
                    if index not in retrace:
                        record_trial_metrics(registry, prior)
                for prior_skip in state.skips.values():
                    record_skip_metrics(registry, spec, prior_skip)
                recorder.emit("resume", completed=resumed, path=str(checkpoint))

    if checkpoint is not None and (manifest is None or run_log is None):
        from repro.obs.manifest import default_obs_paths

        auto_manifest, auto_log = default_obs_paths(checkpoint)
        manifest = manifest if manifest is not None else auto_manifest
        run_log = run_log if run_log is not None else auto_log

    remaining = [i for i in range(spec.n_trials) if i not in done]
    planner = _EarlyStopPlanner(spec, done, recorder) if spec.target_halfwidth is not None else None
    # Shared golden state pays off exactly when more than one worker
    # would otherwise duplicate golden inference; ``shared_golden``
    # forces it either way (it is outcome-neutral, see the docstring).
    use_shm = (
        shared_golden
        if shared_golden is not None
        else effective_jobs(jobs) > 1 and len(remaining) > 1
    )

    observer = None
    if manifest is not None or run_log is not None:
        from repro.core.checkpoint import campaign_fingerprint
        from repro.core.serialize import to_jsonable
        from repro.obs.manifest import RunObserver

        observer = RunObserver(
            manifest_path=manifest,
            run_log_path=run_log,
            kind="campaign",
            meta={
                "fingerprint": campaign_fingerprint(spec),
                "network": spec.network,
                "dtype": spec.dtype,
                "target": spec.target,
                "seed": spec.seed,
                "n_trials": spec.n_trials,
                "jobs": jobs,
                "batch": batch,
                "resumed": resumed > 0,
                "resumed_trials": resumed,
                "shared_golden": use_shm,
                "trace": {
                    "mode": spec.trace_mode,
                    "every": spec.trace_every,
                    "path": str(trace_writer.path) if trace_writer is not None else None,
                },
                "spec": to_jsonable(spec),
            },
        )
        observer.begin()
        recorder.add_sink(observer.event_sink)

    error_budget = max_error_frac * spec.n_trials
    n_errors = sum(1 for v in done.values() if isinstance(v, TrialError))
    n_skips = 0
    since_flush = 0
    start = time.perf_counter()
    last_progress = start

    def emit_progress(final: bool = False) -> None:
        # Early-stopped (skipped) trials count toward completion — they
        # are resolved indices — but are also reported separately so the
        # progress reporter can show a ``skipped`` column and compute
        # trials/s over trials that actually propagated.
        recorder.emit(
            "progress",
            completed=len(done),
            total=spec.n_trials,
            completed_here=len(done) - resumed,
            skipped=resumed_skips + n_skips,
            skipped_here=n_skips,
            quarantined=n_errors,
            elapsed_s=round(time.perf_counter() - start, 3),
            final=final,
        )

    def quarantined_total() -> int:
        return sum(1 for v in done.values() if isinstance(v, TrialError))

    def build_stats() -> ExecutionStats:
        return ExecutionStats(
            resumed=resumed,
            retries=recorder.count("retry"),
            rebuilds=recorder.count("rebuild"),
            timeouts=recorder.count("timeout"),
            bisections=recorder.count("bisect"),
            quarantined=quarantined_total(),
            degraded=recorder.count("degrade") > 0,
        )

    def drain_spans() -> None:
        # Parent-side span timings (checkpoint flushes, the inline
        # chunk loop) fold into the same registry as worker timings.
        registry.merge_snapshot({"timing": timing_snapshot(reset=True)})

    def absorb_obs(snapshot: dict) -> None:
        # Trace rows ride in the obs payload (same message as the
        # chunk's results); strip them before the metrics merge.
        for row in snapshot.pop("traces", None) or ():
            trace_rows[int(row["index"])] = row
            if trace_writer is not None:
                trace_writer.add_row(row)
        registry.merge_snapshot(snapshot)

    def absorb(index: int, value: object) -> None:
        nonlocal n_errors, n_skips, since_flush, last_progress
        if isinstance(value, TrialFailure):
            # The supervised pool already emitted the quarantine event.
            value = TrialError(
                index=index, reason=value.reason, exc_type=value.exc_type,
                message=value.message, attempts=value.attempts,
            )
        elif isinstance(value, TrialError):
            recorder.emit("quarantine", index=index, reason=value.reason,
                          exc_type=value.exc_type)
        done[index] = value
        if isinstance(value, TrialError):
            n_errors += 1
        elif isinstance(value, TrialSkip):
            n_skips += 1
        if writer is not None:
            if isinstance(value, TrialError):
                writer.add_error(index, value)
            elif isinstance(value, TrialSkip):
                writer.add_skip(index, value)
            else:
                writer.add_record(index, value)
            since_flush += 1
            if since_flush >= checkpoint_every:
                # Trace rows received so far go to disk first; any trial
                # the checkpoint holds without a trace row (a kill can
                # always land between result and obs arrival) is re-run
                # on resume purely for its trace, so no flush ordering
                # can leave a permanent hole.
                if trace_writer is not None:
                    trace_writer.flush()
                with span("checkpoint_flush"):
                    writer.flush()
                since_flush = 0
                recorder.emit("checkpoint", completed=len(done))
        if progress_every > 0:
            now = time.perf_counter()
            if now - last_progress >= progress_every:
                last_progress = now
                emit_progress()
        if n_errors > error_budget:
            if trace_writer is not None:
                trace_writer.flush()
            if writer is not None:
                writer.flush()
                since_flush = 0
            recorder.emit("abort", errors=n_errors, completed=len(done))
            raise CampaignAbortedError(
                f"{n_errors} quarantined trials exceed max_error_frac="
                f"{max_error_frac} of {spec.n_trials} trials",
                n_errors=n_errors,
                n_completed=len(done),
                checkpoint=Path(checkpoint) if checkpoint is not None else None,
            )

    descriptor = None
    shm_handle = None
    try:
        try:
            if remaining:
                if use_shm:
                    from repro.core.sharedgolden import publish_golden_state

                    # The parent pays for golden inference / detector
                    # learning exactly once; workers attach read-only.
                    with span("shm_publish"):
                        proto = _CampaignTask(spec)
                        descriptor, shm_handle = publish_golden_state(proto)
                    recorder.emit(
                        "shm_publish",
                        segment=descriptor.segment,
                        nbytes=descriptor.nbytes,
                    )
                # functools.partial (not a lambda) so the factory pickles
                # into workers.
                map_trials(
                    partial(_SafeTrialTask, spec, spans, batch, descriptor),
                    n_trials=0,
                    jobs=jobs,
                    chunk=chunk,
                    indices=remaining,
                    plan=planner,
                    timeout=trial_timeout,
                    timeout_grace=timeout_grace,
                    max_retries=max_retries,
                    backoff_base=backoff_base,
                    backoff_cap=backoff_cap,
                    on_event=recorder.emit,
                    on_result=absorb,
                    on_obs=absorb_obs,
                )
            elif planner is not None:
                # Fully-resumed early-stopping run: no trials to execute,
                # but the stop boundary must still be replayed from the
                # checkpointed prefix so ``stopped_at`` is reproduced.
                while planner() is not None:
                    pass
        finally:
            if shm_handle is not None:
                from repro.core.sharedgolden import release_segment

                release_segment(shm_handle)
                recorder.emit("shm_unlink", segment=descriptor.segment)
            if trace_writer is not None:
                # The last obs payload can arrive after the last
                # cadence flush; publish whatever rows are staged.
                trace_writer.flush()
            if writer is not None and since_flush:
                with span("checkpoint_flush"):
                    writer.flush()
    except BaseException as exc:
        if observer is not None:
            drain_spans()
            status = "aborted" if isinstance(exc, CampaignAbortedError) else "failed"
            observer.finish(
                status=status,
                stats=_stats_dict(build_stats()),
                metrics=registry.snapshot(),
                events=recorder.counts,
                event_tail=_encode_events(recorder.tail()),
            )
        raise

    if remaining:
        emit_progress(final=True)
    drain_spans()
    records = [v for _, v in sorted(done.items()) if isinstance(v, TrialRecord)]
    errors = [v for _, v in sorted(done.items()) if isinstance(v, TrialError)]
    skips = [v for _, v in sorted(done.items()) if isinstance(v, TrialSkip)]
    stats = build_stats()
    result = CampaignResult(
        spec=spec, records=records, errors=errors, stats=stats,
        metrics=registry.snapshot(), skips=skips,
        stopped_at=planner.stopped_at if planner is not None else None,
        traces={index: trace_rows[index] for index in sorted(trace_rows)},
    )
    if observer is not None:
        summary = {
            "n_records": len(records),
            "n_errors": len(errors),
            "masked_fraction": result.masked_fraction,
            "sdc": {cls: result.sdc_rate(cls).p for cls in SDC_CLASSES},
        }
        if planner is not None:
            # Deterministic: skip decisions are a pure function of the
            # spec and trial indices, so these agree across serial /
            # parallel / shared-mem / resumed executions.
            summary["early_stop"] = {
                "n_skips": len(skips),
                "stopped_at": result.stopped_at,
            }
        if tracing:
            # Deterministic: the traced subset is selected by trial
            # index, so the row count agrees across execution shapes.
            summary["trace"] = {
                "mode": spec.trace_mode,
                "every": spec.trace_every,
                "rows": len(result.traces),
            }
        observer.finish(
            status="completed",
            stats=_stats_dict(stats),
            metrics=result.metrics,
            events=recorder.counts,
            event_tail=_encode_events(recorder.tail()),
            summary=summary,
        )
    return result


def _stats_dict(stats: ExecutionStats) -> dict:
    """JSON-safe form of :class:`ExecutionStats` for the manifest."""
    import dataclasses

    return dataclasses.asdict(stats)


def _encode_events(events: list) -> list[dict]:
    """JSON-safe form of a :class:`CampaignEvent` tail for the manifest."""
    from repro.core.serialize import to_jsonable

    return [
        {"seq": e.seq, "event": e.kind, "detail": to_jsonable(e.detail)}
        for e in events
    ]
