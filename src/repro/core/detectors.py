"""Symptom-based Error Detectors (SED) — paper section 6.2.

The detector exploits the paper's key observation (section 5.1.3): faults
that cause SDCs push ACT values far outside the layer's fault-free range,
while benign faults stay near the cluster around zero.

**Learning phase**: profile fault-free per-layer value ranges on
representative inputs and widen them by a 10% cushion.

**Deployment phase**: at the end of each layer, while the layer's ofmap
sits in the global buffer as the next layer's input, the host checks the
values against the learned bounds asynchronously.  A value outside the
bounds (or a non-finite value) raises a detection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import Network
from repro.nn.profiling import BlockRange, RangeProfile, profile_ranges

__all__ = ["SymptomDetector", "DetectorQuality", "learn_detector"]


@dataclass(frozen=True)
class DetectorQuality:
    """Precision/recall of a detector over a campaign (Figure 8).

    The paper's definitions (section 6.2):

    - precision = 1 - (benign faults flagged as SDC) / (faults injected)
    - recall    = (SDC-causing faults detected) / (total SDC-causing faults)

    ``standard_precision`` additionally reports the conventional
    TP / (TP + FP) definition.
    """

    true_positives: int
    false_positives: int
    total_sdc: int
    total_injected: int

    @property
    def precision(self) -> float:
        """Paper-style precision."""
        if self.total_injected == 0:
            return 1.0
        return 1.0 - self.false_positives / self.total_injected

    @property
    def recall(self) -> float:
        if self.total_sdc == 0:
            return 1.0
        return self.true_positives / self.total_sdc

    @property
    def standard_precision(self) -> float:
        """Conventional precision TP / (TP + FP)."""
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 1.0


class SymptomDetector:
    """Per-layer value-range detector for one network.

    Args:
        profile: Fault-free range profile (the learning-phase output).
        cushion: Fractional widening of the learned ranges (paper: 0.10).
    """

    def __init__(self, profile: RangeProfile, cushion: float = 0.10):
        if cushion < 0:
            raise ValueError(f"cushion must be non-negative, got {cushion}")
        self.network_name = profile.network
        self.cushion = cushion
        self._bounds = {b: r.with_cushion(cushion) for b, r in profile.ranges.items()}

    def bounds(self, block: int) -> BlockRange:
        """Detection bounds of one block (cushioned)."""
        return self._bounds[block]

    def check(self, block: int, values: np.ndarray) -> bool:
        """True when ``values`` violate the block's bounds (detection)."""
        bound = self._bounds.get(block)
        if bound is None:
            return False
        return not bool(bound.contains(values).all())

    def checkpoints(self, network: Network) -> dict[int, int]:
        """Map layer index -> block for every detector checkpoint.

        Checkpoints sit at block outputs (the fmap handed to the global
        buffer); a terminal softmax is excluded (host-side).
        """
        last_of_block: dict[int, int] = {}
        for i, layer in enumerate(network.layers):
            if layer.block is not None and layer.kind != "softmax":
                last_of_block[layer.block] = i
        return {li: b for b, li in last_of_block.items()}

    def scan(
        self,
        network: Network,
        activations: list[np.ndarray],
        start_layer: int,
    ) -> bool:
        """Scan a run's activations for any bound violation.

        Args:
            network: The network the activations came from.
            activations: ``activations[0]`` is the input of layer
                ``start_layer``; ``activations[j]`` the output of layer
                ``start_layer + j - 1`` (the injector's resumed segment).
            start_layer: First re-executed layer.

        Returns:
            True when any checkpoint at or after ``start_layer`` fires.
        """
        points = self.checkpoints(network)
        for j in range(1, len(activations)):
            li = start_layer + j - 1
            block = points.get(li)
            if block is not None and self.check(block, activations[j]):
                return True
        return False


def learn_detector(
    network: Network,
    inputs: np.ndarray,
    dtype=None,
    cushion: float = 0.10,
    scope: str = "output",
) -> SymptomDetector:
    """Run the SED learning phase.

    Args:
        network: Network to protect.
        inputs: Representative fault-free inputs (the paper's "test
            inputs"), shape ``(n, *input_shape)``.
        dtype: Numeric format used during profiling (match deployment).
        cushion: Range cushion (paper: 10%).
        scope: Profiling scope; ``"output"`` profiles exactly what the
            deployed detector checks (block outputs).
    """
    profile = profile_ranges(network, inputs, dtype=dtype, scope=scope)
    return SymptomDetector(profile, cushion=cushion)
