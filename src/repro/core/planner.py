"""Protection planning: meet a FIT budget at minimum cost.

Section 6 of the paper presents three mitigation mechanisms — SED
(software symptom detectors), SLH (selective latch hardening) and ECC on
buffers — and argues each trades coverage against a different cost
(detector recall vs. nothing, latch area, buffer area).  This module
turns that discussion into a solver: given the measured SDC
probabilities and detector recall of a configuration, enumerate the
protection combinations, cost each one, and return the cheapest plan
that meets the accelerator's FIT allowance.

Cost model:

- **SED** is software: zero silicon area.  Its runtime cost is the
  asynchronous host-side range scan — one comparison per ACT written to
  the global buffer — reported as a fraction of the inference's MAC
  work.
- **SLH** costs latch area on the datapath, taken from the
  :mod:`repro.core.hardening` optimizer for the requested reduction.
- **ECC** costs check bits per protected buffer word.  The paper notes
  small read granularities make ECC expensive on the little per-PE
  scratchpads: the overhead is ``checkbits(word)/word`` with SEC-DED
  check-bit counts (6 for 16-bit words, 8 for 64-bit words), applied
  per component at its natural word size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.accel.eyeriss import EyerissConfig
from repro.core.fit import eyeriss_total_fit
from repro.core.hardening import HARDENING_TECHNIQUES, optimize_hardening

__all__ = ["ProtectionPlan", "PlannerInputs", "plan_protection", "sec_ded_overhead"]

#: SLH reduction targets the planner may choose from.
SLH_TARGET_OPTIONS = (1.0, 6.3, 37.0, 100.0)
#: Residual FIT fraction for an ECC-protected buffer (uncorrected
#: multi-bit patterns).
ECC_RESIDUAL = 0.01

#: Natural read-word width per Eyeriss buffer component.
COMPONENT_WORD_BITS = {
    "Global Buffer": 64,
    "Filter SRAM": 16,
    "Img REG": 16,
    "PSum REG": 16,
}


def sec_ded_overhead(word_bits: int) -> float:
    """SEC-DED check-bit overhead for one data word.

    A single-error-correct / double-error-detect Hamming code over k
    data bits needs the smallest r with ``2**r >= k + r + 1``, plus one
    parity bit.
    """
    if word_bits < 1:
        raise ValueError("word_bits must be positive")
    r = 1
    while (1 << r) < word_bits + r + 1:
        r += 1
    return (r + 1) / word_bits


@dataclass(frozen=True)
class PlannerInputs:
    """Measured reliability characteristics of one configuration.

    Attributes:
        config: Accelerator instance (sizes drive both FIT and cost).
        datapath_sdc: SDC probability of datapath-latch faults.
        buffer_sdc: SDC probability per buffer component name.
        sed_recall: Fraction of SDC-causing faults the symptom detector
            catches (0 disables SED as an option).
        per_bit_fit: Per-bit datapath FIT shares for the SLH optimizer
            (relative values suffice).
        act_elements_per_inference: ACT values written to the global
            buffer per inference (the SED scan work).
        macs_per_inference: MAC operations per inference.
    """

    config: EyerissConfig
    datapath_sdc: float
    buffer_sdc: dict[str, float]
    sed_recall: float
    per_bit_fit: np.ndarray
    act_elements_per_inference: int
    macs_per_inference: int


@dataclass
class ProtectionPlan:
    """One costed protection combination."""

    use_sed: bool
    slh_target: float
    ecc_components: tuple[str, ...]
    total_fit: float
    area_overhead: float  # fraction of protected-structure area added
    runtime_overhead: float  # SED scan work / inference MAC work
    components: dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        parts = []
        if self.use_sed:
            parts.append("SED")
        if self.slh_target > 1.0:
            parts.append(f"SLH({self.slh_target:g}x)")
        if self.ecc_components:
            parts.append(f"ECC({', '.join(self.ecc_components)})")
        stack = " + ".join(parts) if parts else "unprotected"
        return (
            f"{stack}: {self.total_fit:.4g} FIT, "
            f"area +{100 * self.area_overhead:.1f}%, "
            f"runtime +{100 * self.runtime_overhead:.2f}%"
        )


def _area_overhead(
    inputs: PlannerInputs, slh_target: float, ecc: tuple[str, ...]
) -> float:
    """Added silicon area as a fraction of the protected structures."""
    cfg = inputs.config
    datapath_bits = cfg.datapath.total_latch_bits
    buffer_bits = {spec.name: spec.total_bits for spec in cfg.buffers()}
    total_bits = datapath_bits + sum(buffer_bits.values())

    added = 0.0
    if slh_target > 1.0:
        plan = optimize_hardening(inputs.per_bit_fit, slh_target, HARDENING_TECHNIQUES)
        added += plan.area_overhead * datapath_bits
    for name in ecc:
        added += sec_ded_overhead(COMPONENT_WORD_BITS[name]) * buffer_bits[name]
    return added / total_bits


def plan_protection(
    inputs: PlannerInputs,
    fit_budget: float,
    area_weight: float = 1.0,
    runtime_weight: float = 1.0,
) -> list[ProtectionPlan]:
    """Enumerate protection stacks and rank the budget-compliant ones.

    Args:
        inputs: Measured characteristics (see :class:`PlannerInputs`).
        fit_budget: The accelerator's FIT allowance.
        area_weight, runtime_weight: Relative cost weights for ranking.

    Returns:
        All enumerated plans, compliant ones first, each group sorted by
        weighted cost; ``plans[0]`` is the recommendation (it may still
        exceed the budget if no stack can meet it).
    """
    if fit_budget <= 0:
        raise ValueError("fit_budget must be positive")
    cfg = inputs.config
    component_names = tuple(spec.name for spec in cfg.buffers())
    sed_runtime = (
        inputs.act_elements_per_inference / inputs.macs_per_inference
        if inputs.macs_per_inference
        else 0.0
    )

    # ECC choices: none, the two big structures, or everything — the
    # paper's observation that small scratchpads are poor ECC targets is
    # reflected in their higher per-word overhead, so the solver decides.
    ecc_choices: list[tuple[str, ...]] = [
        (),
        ("Global Buffer",),
        ("Global Buffer", "Filter SRAM"),
        component_names,
    ]

    plans: list[ProtectionPlan] = []
    for use_sed, slh_target, ecc in product((False, True), SLH_TARGET_OPTIONS, ecc_choices):
        recall = inputs.sed_recall if use_sed else 0.0
        fit = eyeriss_total_fit(
            cfg, {"datapath": inputs.datapath_sdc}, inputs.buffer_sdc, detector_recall=recall
        )
        fit["datapath"] /= slh_target
        for name in ecc:
            fit[name] *= ECC_RESIDUAL
        total = sum(v for k, v in fit.items() if k != "total")
        plans.append(
            ProtectionPlan(
                use_sed=use_sed,
                slh_target=slh_target,
                ecc_components=ecc,
                total_fit=total,
                area_overhead=_area_overhead(inputs, slh_target, ecc),
                runtime_overhead=sed_runtime if use_sed else 0.0,
                components={k: v for k, v in fit.items() if k != "total"},
            )
        )

    def cost(plan: ProtectionPlan) -> float:
        return area_weight * plan.area_overhead + runtime_weight * plan.runtime_overhead

    compliant = sorted((p for p in plans if p.total_fit <= fit_budget), key=cost)
    over = sorted((p for p in plans if p.total_fit > fit_budget), key=lambda p: p.total_fit)
    return compliant + over
