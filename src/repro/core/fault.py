"""Fault-site descriptors and random fault sampling.

The paper's fault model (section 4.3): transient single-event upsets —
one bit flip per inference run — in either the datapath latches of a PE
or a buffer entry.  Combinational logic, control logic and host/CPU/DRAM
faults are out of scope.

Sampling follows the paper's methodology: the fault lands on a random bit
of a random latch/buffer entry at a random point of the execution, which
translates to: MAC layer chosen proportionally to its share of MAC
operations (for datapath and psum faults) or of resident data (for
buffer faults), victim element uniform within the layer, MAC step
uniform along the accumulation chain, bit uniform across the data width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.buffers import FAULT_SCOPES
from repro.accel.occupancy import OccupancyModel
from repro.dtypes.base import DataType
from repro.nn.layers import Conv2D
from repro.nn.network import Network

__all__ = [
    "DatapathFault",
    "BufferFault",
    "DATAPATH_LATCHES",
    "sample_datapath_fault",
    "sample_buffer_fault",
]

#: Latch classes of the canonical ALU (must match repro.accel.datapath).
DATAPATH_LATCHES = ("weight_operand", "input_operand", "product", "psum", "accumulator")


@dataclass(frozen=True)
class DatapathFault:
    """A single-bit upset in one PE latch, read by exactly one MAC step.

    Attributes:
        layer_index: Index of the victim MAC layer in ``network.layers``.
        out_index: Coordinate of the output element whose chain is hit.
        step: MAC step (0-based) at which the corrupted latch is read.
        latch: Latch class (one of :data:`DATAPATH_LATCHES`).
        bit: Lowest flipped bit position in the data word.
        burst: Number of adjacent bits flipped (1 = single-event upset,
            the paper's model; >1 models multi-cell upsets).
    """

    layer_index: int
    out_index: tuple[int, ...]
    step: int
    latch: str
    bit: int
    burst: int = 1

    def __post_init__(self) -> None:
        if self.latch not in DATAPATH_LATCHES:
            raise ValueError(f"unknown latch {self.latch!r}")
        if self.step < 0 or self.bit < 0:
            raise ValueError("step and bit must be non-negative")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


@dataclass(frozen=True)
class BufferFault:
    """A single-bit upset in a buffer entry, spread through data reuse.

    Attributes:
        scope: Fault-spread scope (see :mod:`repro.accel.buffers`):
            ``layer_weight`` / ``row_activation`` / ``next_layer`` /
            ``single_read``.
        layer_index: Consumer MAC layer index in ``network.layers``.
        victim: Scope-dependent victim coordinate —
            ``layer_weight``: index into the layer's weight tensor;
            ``row_activation`` / ``next_layer``: index into the layer's
            input fmap; ``single_read``: ``(out_index..., step)`` like a
            datapath psum fault.
        bit: Lowest flipped bit position in the data word.
        burst: Number of adjacent bits flipped (1 = single-event upset).
        residency_row: For ``row_activation``: the output row during
            whose computation the corrupted register is live.
    """

    scope: str
    layer_index: int
    victim: tuple[int, ...]
    bit: int
    burst: int = 1
    residency_row: int = -1

    def __post_init__(self) -> None:
        if self.scope not in FAULT_SCOPES:
            raise ValueError(f"unknown buffer fault scope {self.scope!r}")
        if self.bit < 0:
            raise ValueError("bit must be non-negative")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


def _choose_weighted(rng: np.random.Generator, items: list[int], weights: list[int]) -> int:
    w = np.asarray(weights, dtype=np.float64)
    return int(rng.choice(items, p=w / w.sum()))


def sample_datapath_fault(
    network: Network,
    dtype: DataType,
    rng: np.random.Generator,
    latch: str | None = None,
    bit: int | None = None,
    layer_index: int | None = None,
    burst: int = 1,
) -> DatapathFault:
    """Sample a random datapath fault site.

    Args:
        network: Target network.
        dtype: Numeric format (bounds the bit position).
        rng: Random stream.
        latch: Pin the latch class (None = uniform over classes).
        bit: Pin the bit position (None = uniform over the word).
        layer_index: Pin the victim MAC layer (None = MAC-weighted).
    """
    mac_counts = network.mac_counts()
    if layer_index is None:
        layer_index = _choose_weighted(rng, list(mac_counts), list(mac_counts.values()))
    elif layer_index not in mac_counts:
        raise ValueError(f"layer {layer_index} is not a MAC layer")
    layer = network.layers[layer_index]
    in_shape = network.shapes[layer_index]
    flat = int(rng.integers(layer.output_elements(in_shape)))
    out_index = layer.unravel_output(flat, in_shape)
    step = int(rng.integers(layer.chain_length(in_shape)))
    chosen_latch = latch if latch is not None else str(rng.choice(DATAPATH_LATCHES))
    chosen_bit = int(rng.integers(dtype.width)) if bit is None else bit
    return DatapathFault(layer_index, out_index, step, chosen_latch, chosen_bit, burst)


#: Buffer scope -> Eyeriss component whose occupancy weights apply.
SCOPE_COMPONENT = {
    "layer_weight": "Filter SRAM",
    "row_activation": "Img REG",
    "next_layer": "Global Buffer",
    "single_read": "PSum REG",
}


def _occupancy_layer(
    occupancy: OccupancyModel,
    scope: str,
    candidates: list[int],
    rng: np.random.Generator,
) -> int | None:
    """Draw a victim layer from the schedule's exposure weights."""
    weights = occupancy.layer_weights(SCOPE_COMPONENT[scope])
    usable = {li: w for li, w in weights.items() if li in candidates}
    if not usable:
        return None
    items = list(usable)
    probs = np.array([usable[i] for i in items])
    return int(rng.choice(items, p=probs / probs.sum()))


def sample_buffer_fault(
    network: Network,
    scope: str,
    dtype: DataType,
    rng: np.random.Generator,
    bit: int | None = None,
    burst: int = 1,
    occupancy: OccupancyModel | None = None,
) -> BufferFault:
    """Sample a random buffer fault site for a given spread scope.

    Victim layers are weighted by the amount of data of the relevant kind
    resident for them (weights for ``layer_weight``, ifmap elements for
    activation scopes, MACs for ``single_read``), mirroring a uniformly
    random strike on buffer bits over time.  When an
    :class:`~repro.accel.occupancy.OccupancyModel` is supplied, the layer
    is drawn from the schedule's bit-cycle exposures instead — a strike
    uniform in space *and time* on the mapped accelerator.
    """
    mac_idx = network.mac_layer_indices()
    chosen_bit = int(rng.integers(dtype.width)) if bit is None else bit

    if scope == "layer_weight":
        li = _occupancy_layer(occupancy, scope, mac_idx, rng) if occupancy else None
        if li is None:
            weights = [int(network.layers[i].params()["weight"].size) for i in mac_idx]
            li = _choose_weighted(rng, mac_idx, weights)
        wshape = network.layers[li].params()["weight"].shape
        victim = tuple(int(v) for v in np.unravel_index(int(rng.integers(int(np.prod(wshape)))), wshape))
        return BufferFault(scope, li, victim, chosen_bit, burst)

    if scope in ("row_activation", "next_layer"):
        if scope == "row_activation":
            candidates = [
                i for i in mac_idx if isinstance(network.layers[i], Conv2D)
            ]  # Img REG serves the sliding-window convolutions
        else:
            candidates = mac_idx
        li = _occupancy_layer(occupancy, scope, candidates, rng) if occupancy else None
        if li is None:
            sizes = [int(np.prod(network.shapes[i])) for i in candidates]
            li = _choose_weighted(rng, candidates, sizes)
        in_shape = network.shapes[li]
        victim = tuple(int(v) for v in np.unravel_index(int(rng.integers(int(np.prod(in_shape)))), in_shape))
        residency_row = -1
        if scope == "row_activation":
            layer = network.layers[li]
            _, oh, _ = layer.out_shape(in_shape)
            y = victim[1]
            # Output rows whose windows cover input row y.
            rows = [
                oy
                for oy in range(oh)
                if oy * layer.stride - layer.pad <= y <= oy * layer.stride - layer.pad + layer.kernel - 1
            ]
            residency_row = int(rng.choice(rows)) if rows else 0
        return BufferFault(scope, li, victim, chosen_bit, burst, residency_row)

    if scope == "single_read":
        dp = sample_datapath_fault(network, dtype, rng, latch="psum", bit=chosen_bit)
        victim = (*dp.out_index, dp.step)
        return BufferFault(scope, dp.layer_index, victim, chosen_bit, burst)

    raise ValueError(f"unknown buffer fault scope {scope!r}")
