"""Ad-hoc campaign CLI: ``repro-campaign --network AlexNet --dtype FLOAT16``.

Runs one fault-injection campaign with full control over the fault model
(target, latch class, bit, burst, storage format, detector) and prints
the paper-style aggregations; ``--out`` additionally writes the JSON
summary for downstream analysis.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.campaign import TARGETS, CampaignSpec, run_campaign
from repro.core.fault import DATAPATH_LATCHES
from repro.core.serialize import campaign_summary, save_json
from repro.dtypes.registry import DTYPES
from repro.utils.tables import format_table
from repro.zoo.registry import NETWORKS

__all__ = ["main", "build_spec"]


def build_spec(args: argparse.Namespace) -> CampaignSpec:
    """Translate parsed CLI arguments into a campaign spec."""
    return CampaignSpec(
        network=args.network,
        dtype=args.dtype,
        target=args.target,
        n_trials=args.trials,
        scale=args.scale,
        n_inputs=args.inputs,
        seed=args.seed,
        latch=args.latch,
        bit=args.bit,
        burst=args.burst,
        layer_index=args.layer,
        with_detection=args.detect != "off",
        detector_kind=args.detect if args.detect != "off" else "sed",
        record_propagation=args.propagation,
        storage_dtype=args.storage_dtype,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run one fault-injection campaign (Li et al., SC'17 fault model).",
    )
    parser.add_argument("--network", choices=sorted(NETWORKS), default="AlexNet")
    parser.add_argument("--dtype", choices=sorted(DTYPES), default="FLOAT16")
    parser.add_argument("--target", choices=TARGETS, default="datapath")
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--scale", choices=("reduced", "full"), default="reduced")
    parser.add_argument("--inputs", type=int, default=3, help="golden inputs rotated")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--latch", choices=DATAPATH_LATCHES, default=None)
    parser.add_argument("--bit", type=int, default=None)
    parser.add_argument("--burst", type=int, default=1, help="adjacent bits per flip")
    parser.add_argument("--layer", type=int, default=None, help="pin a MAC layer index")
    parser.add_argument("--detect", choices=("off", "sed", "dmr"), default="off")
    parser.add_argument("--propagation", action="store_true",
                        help="track survival to the final fmap (Table 5)")
    parser.add_argument("--storage-dtype", choices=sorted(DTYPES), default=None,
                        help="Proteus-style reduced-precision buffer storage")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", default=None, help="write the JSON summary here")
    args = parser.parse_args(argv)

    try:
        spec = build_spec(args)
    except (ValueError, KeyError) as exc:
        print(f"invalid campaign: {exc}", file=sys.stderr)
        return 2

    result = run_campaign(spec, jobs=args.jobs)
    rows = []
    labels = {"sdc1": "SDC-1", "sdc5": "SDC-5", "sdc10": "SDC-10%", "sdc20": "SDC-20%"}
    for cls, rate in result.sdc_rates().items():
        rows.append([labels[cls], str(rate) if rate.n else "n/a"])
    title = f"{spec.network} / {spec.dtype} / {spec.target} ({spec.n_trials} injections)"
    print(format_table(["outcome", "probability (95% CI)"], rows, title=title))
    print(f"masked before output: {result.masked_fraction:.1%}")
    by_site = result.rate_by_site()
    if len(by_site) > 1:
        site_rows = [[s, str(r)] for s, r in by_site.items()]
        print()
        print(format_table(["site", "SDC-1"], site_rows))
    if spec.with_detection:
        q = result.detection_quality()
        print(f"detection ({spec.detector_kind}): precision {q.precision:.2%}, "
              f"recall {q.recall:.2%} over {q.total_sdc} SDCs")
    if args.out:
        path = save_json(campaign_summary(result), args.out)
        print(f"summary written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
